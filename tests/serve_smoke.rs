//! Serving-stack smoke tests: the dynamic-batching service in
//! `tfe::serve` must be invisible to callers — every response is
//! bit-identical to a direct `FunctionalNetwork::run` on the same input,
//! no matter how requests were coalesced into micro-batches — while the
//! bounded queue rejects overload with a typed error and shutdown drains
//! everything already admitted.

use proptest::prelude::*;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use tfe::serve::demo::{demo_images, demo_network};
use tfe::serve::protocol::{roundtrip, WireRequest, WireResponse};
use tfe::serve::{Rejected, ServeConfig, Service, TcpServer};
use tfe::sim::batch::{run_batch, BatchOptions};
use tfe::sim::counters::Counters;
use tfe::sim::network::FunctionalNetwork;
use tfe::transfer::analysis::ReuseConfig;

/// Direct (unbatched, unserved) reference results for a set of images.
fn reference_outputs(
    net: &FunctionalNetwork,
    images: &[tfe::tensor::tensor::Tensor4<tfe::tensor::fixed::Fx16>],
) -> Vec<tfe::sim::network::NetworkOutput> {
    images
        .iter()
        .map(|image| net.run(image, ReuseConfig::FULL).expect("reference run"))
        .collect()
}

/// Concurrent TCP clients get bit-identical activations and counters,
/// and the stats endpoint sees every completion.
#[test]
fn tcp_concurrent_requests_are_bit_identical() {
    let net = demo_network(11);
    let images = demo_images(6, 0xbeef);
    let expected = Arc::new(reference_outputs(&net, &images));
    let images = Arc::new(images);

    let service = Service::start(net, ServeConfig::default()).unwrap();
    let server = TcpServer::bind("127.0.0.1:0", service.client()).unwrap();
    let addr = server.local_addr();

    let mut workers = Vec::new();
    for worker in 0..3 {
        let images = Arc::clone(&images);
        let expected = Arc::clone(&expected);
        workers.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            for round in 0..4 {
                let idx = (worker * 4 + round) % images.len();
                let request = WireRequest::Infer {
                    input: images[idx].clone(),
                    deadline_ms: None,
                    model_id: None,
                };
                match roundtrip(&mut stream, &request).expect("roundtrip") {
                    WireResponse::Ok {
                        activations,
                        counters,
                        ..
                    } => {
                        assert_eq!(activations, expected[idx].activations);
                        assert_eq!(counters, expected[idx].counters);
                    }
                    other => panic!("expected Ok, got {other:?}"),
                }
            }
        }));
    }
    for worker in workers {
        worker.join().expect("tcp worker");
    }

    // The same connection path also serves metrics and per-layer
    // telemetry: one entry per compiled stage, each exercised by every
    // request, with per-layer counters summing to the network total.
    let mut stream = TcpStream::connect(addr).expect("connect for stats");
    match roundtrip(&mut stream, &WireRequest::Stats).expect("stats roundtrip") {
        WireResponse::Stats {
            metrics,
            telemetry,
            models,
        } => {
            assert_eq!(metrics.completed, 12);
            assert_eq!(metrics.rejected, 0);
            assert!(metrics.batches >= 1);
            assert_eq!(models, None, "single-model endpoints report no fleet rows");

            assert_eq!(
                telemetry.layers.len(),
                2,
                "demo network compiles to two stages"
            );
            let mut layer_sum = Counters::default();
            for layer in &telemetry.layers {
                // Executors pack micro-batches into single batched runs:
                // one sample per stage per *run*, but every request's
                // image flows through every stage.
                assert_eq!(layer.images, 12, "every image runs every stage");
                assert!(
                    (1..=12).contains(&layer.runs),
                    "batched runs collapse at most 12 requests, got {}",
                    layer.runs
                );
                assert!(layer.counters.multiplies > 0);
                assert!(layer.p50_us <= layer.p95_us && layer.p95_us <= layer.max_us);
                layer_sum.merge(&layer.counters);
            }
            assert_eq!(layer_sum, telemetry.total);
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    drop(stream);

    server.shutdown();
    let snapshot = service.shutdown();
    assert_eq!(snapshot.completed, 12);
    assert_eq!(snapshot.failed, 0);
}

/// A tiny queue with a slow drain (single executor, batch size 1) must
/// shed load with `Rejected::QueueFull`, and every accepted request must
/// still come back bit-identical.
#[test]
fn tiny_queue_rejects_overload_with_typed_error() {
    let net = demo_network(5);
    let images = demo_images(4, 0xcafe);
    let expected = reference_outputs(&net, &images);

    let service = Service::start(
        net,
        ServeConfig {
            queue_capacity: 2,
            max_batch_size: 1,
            executors: 1,
            max_batch_delay: Duration::ZERO,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = service.client();

    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for i in 0..64 {
        let idx = i % images.len();
        match client.submit(images[idx].clone()) {
            Ok(ticket) => accepted.push((idx, ticket)),
            Err(Rejected::QueueFull { capacity }) => {
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert!(
        rejected > 0,
        "64 tight-loop submissions into a 2-slot queue with one executor \
         must overflow at least once"
    );

    for (idx, ticket) in accepted {
        let reply = ticket.wait().expect("accepted requests complete");
        assert_eq!(reply.activations, expected[idx].activations);
        assert_eq!(reply.counters, expected[idx].counters);
    }

    let snapshot = service.shutdown();
    assert_eq!(snapshot.rejected, rejected);
    assert_eq!(snapshot.completed + snapshot.rejected, 64);
}

/// Already-expired deadlines are shed at batch formation without
/// touching the simulator; later healthy requests still run.
#[test]
fn expired_deadlines_are_dropped_before_execution() {
    let service = Service::start(
        demo_network(3),
        ServeConfig {
            max_batch_delay: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = service.client();
    let images = demo_images(3, 0xd00d);

    let doomed: Vec<_> = images
        .iter()
        .map(|image| {
            client
                .submit_with_deadline(image.clone(), Some(Duration::ZERO))
                .expect("admission succeeds; expiry happens at batching")
        })
        .collect();
    for ticket in doomed {
        match ticket.wait() {
            Err(Rejected::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    let reply = client.infer(images[0].clone()).expect("healthy request");
    assert!(reply.counters.multiplies > 0);

    let snapshot = service.shutdown();
    assert_eq!(snapshot.expired, 3);
    assert_eq!(snapshot.completed, 1);
}

/// Shutdown drains in-flight work: everything admitted before the call
/// resolves `Ok`, and submissions after it are refused.
#[test]
fn shutdown_drains_admitted_requests() {
    let net = demo_network(9);
    let images = demo_images(6, 0xfeed);
    let expected = reference_outputs(&net, &images);

    let service = Service::start(
        net,
        ServeConfig {
            // A long flush delay: the requests sit in the batcher when
            // shutdown arrives, so the drain path is what completes them.
            max_batch_delay: Duration::from_millis(500),
            max_batch_size: 64,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = service.client();

    let tickets: Vec<_> = images
        .iter()
        .map(|image| client.submit(image.clone()).expect("submit"))
        .collect();

    let snapshot = service.shutdown();
    assert_eq!(snapshot.completed, 6);
    assert_eq!(snapshot.failed, 0);

    for (idx, ticket) in tickets.into_iter().enumerate() {
        let reply = ticket.wait().expect("drained request completes");
        assert_eq!(reply.activations, expected[idx].activations);
        assert_eq!(reply.counters, expected[idx].counters);
    }

    match client.submit(images[0].clone()) {
        Err(Rejected::ShuttingDown) => {}
        other => panic!("expected ShuttingDown after shutdown, got {other:?}"),
    }
}

/// A geometry mismatch is rejected at admission (typed error) instead of
/// poisoning a whole micro-batch.
#[test]
fn wrong_geometry_is_rejected_at_admission() {
    let service = Service::start(demo_network(2), ServeConfig::default()).unwrap();
    let client = service.client();

    let bad = tfe::tensor::tensor::Tensor4::filled(
        [1, 5, 12, 12],
        tfe::tensor::fixed::Fx16::from_f32(0.25),
    );
    match client.submit(bad) {
        Err(Rejected::Failed(_)) => {}
        other => panic!("expected a typed sim error, got {other:?}"),
    }

    let snapshot = service.shutdown();
    assert_eq!(snapshot.failed, 1);
    assert_eq!(snapshot.completed, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any split of a request stream into micro-batches yields outputs
    /// and summed counters bit-identical to one-image-at-a-time
    /// execution — the invariant the whole serving stack rests on.
    #[test]
    fn any_microbatch_split_is_bit_identical(
        count in 1usize..9,
        splits in prop::collection::vec(1usize..5, 8),
        seed in 0u32..500,
    ) {
        let net = demo_network(seed);
        let images = demo_images(count, seed ^ 0x51ab);
        let expected = reference_outputs(&net, &images);

        let mut outputs = Vec::new();
        let mut merged = Counters::default();
        let mut start = 0;
        for (round, &size) in splits.iter().cycle().enumerate() {
            if start >= count {
                break;
            }
            prop_assert!(round < count, "splits of >=1 always advance");
            let stop = (start + size).min(count);
            let batch = run_batch(
                &net,
                &images[start..stop],
                ReuseConfig::FULL,
                BatchOptions::default(),
            )
            .expect("batched run");
            outputs.extend(batch.outputs);
            merged.merge(&batch.counters);
            start = stop;
        }

        prop_assert_eq!(outputs.len(), count);
        let mut expected_total = Counters::default();
        for (got, want) in outputs.iter().zip(&expected) {
            prop_assert_eq!(&got.activations, &want.activations);
            prop_assert_eq!(&got.counters, &want.counters);
            expected_total.merge(&want.counters);
        }
        prop_assert_eq!(merged, expected_total);
    }
}
