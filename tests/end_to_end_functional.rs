//! End-to-end functional correctness: for randomized layers under every
//! scheme and every reuse configuration, the TFE datapath (PPSR + ERRR +
//! SAFM accumulation) must produce bit-exactly the ofmaps of a reference
//! convolution with the expanded transferred filters.

use tfe::sim::functional::run_layer;
use tfe::tensor::conv::conv2d_fx;
use tfe::tensor::fixed::Fx16;
use tfe::tensor::shape::LayerShape;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::ReuseConfig;
use tfe::transfer::layer::TransferredLayer;
use tfe::transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    (((*seed >> 20) & 0xf) as f32 - 7.5) / 4.0
}

fn check(shape: &LayerShape, scheme: TransferScheme, seed: u32) {
    let mut wseed = seed;
    let layer = TransferredLayer::random(shape, scheme, || det(&mut wseed))
        .expect("layer construction succeeds");
    let mut iseed = seed.wrapping_mul(31) + 7;
    let input = Tensor4::from_fn([1, shape.n(), shape.h(), shape.w()], |_| {
        Fx16::from_f32(det(&mut iseed))
    });
    let dense = layer
        .expand_to_dense()
        .expect("expansion succeeds")
        .map(Fx16::from_f32);
    let oracle = conv2d_fx(&input, &dense, shape).expect("reference conv succeeds");
    for reuse in [
        ReuseConfig::FULL,
        ReuseConfig::PPSR_ONLY,
        ReuseConfig::ERRR_ONLY,
        ReuseConfig::NONE,
    ] {
        let got = run_layer(&input, &layer, shape, reuse).expect("functional sim succeeds");
        assert_eq!(
            got.output,
            oracle,
            "{shape} under {} with {reuse:?}",
            scheme.label()
        );
        // Reuse must never *increase* work.
        assert!(got.counters.multiplies <= got.counters.dense_macs * 2);
    }
}

#[test]
fn dcnn4_sweep_over_shapes() {
    for (n, m, hw, pad, seed) in [
        (1, 4, 6, 0, 11),
        (2, 8, 9, 1, 13),
        (3, 12, 7, 1, 17),
        (1, 16, 11, 0, 19),
    ] {
        let shape = LayerShape::conv("t", n, m, hw, hw, 3, 1, pad).unwrap();
        check(&shape, TransferScheme::DCNN4, seed);
    }
}

#[test]
fn dcnn6_sweep_over_shapes() {
    for (n, m, hw, pad, seed) in [(1, 16, 8, 1, 23), (2, 16, 10, 0, 29), (2, 20, 9, 1, 31)] {
        let shape = LayerShape::conv("t", n, m, hw, hw, 3, 1, pad).unwrap();
        check(&shape, TransferScheme::DCNN6, seed);
    }
}

#[test]
fn scnn_sweep_over_shapes_and_filter_sizes() {
    for (n, m, hw, k, pad, seed) in [
        (1, 8, 6, 3, 1, 37),
        (2, 16, 8, 3, 0, 41),
        (1, 8, 11, 5, 2, 43),
        (2, 9, 7, 3, 1, 47), // partial orbit
    ] {
        let shape = LayerShape::conv("t", n, m, hw, hw, k, 1, pad).unwrap();
        check(&shape, TransferScheme::Scnn, seed);
    }
}

#[test]
fn heterogeneous_meta_5x5_matches_oracle() {
    // GoogLeNet-style 5x5 layer under DCNN uses the 6x6 meta filter.
    let shape = LayerShape::conv("inc5", 2, 8, 10, 10, 5, 1, 2).unwrap();
    check(&shape, TransferScheme::DCNN4, 53);
}

#[test]
fn fitted_layer_runs_end_to_end() {
    // fit -> expand -> functional sim: the full compression pipeline.
    use tfe::transfer::fit::fit_layer;
    let shape = LayerShape::conv("fit", 2, 8, 8, 8, 3, 1, 1).unwrap();
    let mut seed = 61;
    let dense = Tensor4::from_fn([8, 2, 3, 3], |_| det(&mut seed));
    let fitted = fit_layer(&dense, &shape, TransferScheme::Scnn).unwrap();
    let input = Tensor4::from_fn([1, 2, 8, 8], |_| Fx16::from_f32(det(&mut seed)));
    let result = run_layer(&input, &fitted, &shape, ReuseConfig::FULL).unwrap();
    let oracle = conv2d_fx(
        &input,
        &fitted.expand_to_dense().unwrap().map(Fx16::from_f32),
        &shape,
    )
    .unwrap();
    assert_eq!(result.output, oracle);
    assert!(result.counters.mac_reduction() > 2.5);
}

/// Cross-architecture agreement: the TFE datapath and the Eyeriss
/// row-stationary dataflow compute identical ofmaps from identical data,
/// and the TFE does it with roughly `group/stored` fewer multiplies.
#[test]
fn tfe_and_eyeriss_dataflows_agree_bit_exactly() {
    use tfe::eyeriss::rs_dataflow::run_layer_rs;
    use tfe::sim::functional::run_layer;

    let shape = LayerShape::conv("x", 2, 16, 10, 10, 3, 1, 1).unwrap();
    let mut seed = 101;
    let layer = TransferredLayer::random(&shape, TransferScheme::DCNN6, || det(&mut seed)).unwrap();
    let input = Tensor4::from_fn([1, 2, 10, 10], |_| Fx16::from_f32(det(&mut seed)));
    let dense = layer.expand_to_dense().unwrap().map(Fx16::from_f32);

    let (rs_out, rs_counters) = run_layer_rs(&input, &dense, &shape).unwrap();
    let tfe = run_layer(&input, &layer, &shape, ReuseConfig::FULL).unwrap();
    assert_eq!(tfe.output, rs_out);
    // DCNN6x6 ideal is 4x, shaved by padded-row edges on a 10x10 map;
    // RS additionally pays pad-tap MACs.
    let factor = rs_counters.macs as f64 / tfe.counters.multiplies as f64;
    assert!(factor > 2.6, "factor {factor}");
    // RS register pressure: 4 spad accesses per MAC by construction.
    assert_eq!(rs_counters.accesses_per_mac(), 4.0);
}

/// The whole-network functional pipeline (conv -> ReLU -> pool chained
/// across stages) runs under every scheme with consistent geometry.
#[test]
fn functional_network_runs_under_every_scheme() {
    use tfe::sim::network::FunctionalNetwork;

    for (scheme, m1) in [
        (TransferScheme::DCNN4, 8usize),
        (TransferScheme::DCNN6, 16),
        (TransferScheme::Scnn, 8),
    ] {
        let shapes = vec![
            (
                LayerShape::conv("s1", 1, m1, 16, 16, 3, 1, 1).unwrap(),
                true,
            ),
            (LayerShape::conv("s2", m1, m1, 8, 8, 3, 1, 1).unwrap(), true),
        ];
        let mut seed = 31;
        let net = FunctionalNetwork::random(&shapes, scheme, || det(&mut seed)).unwrap();
        let input = Tensor4::from_fn([1, 1, 16, 16], |_| Fx16::from_f32(det(&mut seed)));
        let out = net.run(&input, ReuseConfig::FULL).unwrap();
        assert_eq!(out.activations.dims(), [1, m1, 4, 4], "{}", scheme.label());
        // Ideal 2.25x-4x per scheme; tiny 12x12/6x6 maps pay heavy edge
        // overhead, so require a conservative floor.
        assert!(
            out.counters.mac_reduction() > 1.4,
            "{}: {}",
            scheme.label(),
            out.counters.mac_reduction()
        );
    }
}
