//! Filter-stationary batched execution parity: `Engine::run_batched`
//! must be **bit-identical**, image by image, to sequential
//! [`Engine::run`] calls — activations, per-image counters, and
//! per-layer telemetry sums — at every scheme, reuse ablation, stride,
//! batch size, and intra-run worker count (including more workers than
//! images).
//!
//! The batched sweep reorders work only **across** images (each
//! quantized filter row sweeps the whole batch before the next row
//! loads), never within one image, so every image sees the exact
//! saturating-addition order of a single-image run. Both dense kernel
//! paths are pinned: the wrapping fast path (the conservative
//! `N·K·max|w|·max|input|` bound proves no intermediate can clamp) and
//! the saturating fallback on data that genuinely clamps.
//!
//! Also pinned here: the [`Scratch`] high-water shrink window — a
//! one-off large batch keeps its arenas warm for `PEAK_WINDOW` further
//! runs, then the excess capacity is released.

use proptest::prelude::*;
use tfe::sim::counters::Counters;
use tfe::sim::engine::{BatchedRun, Engine, Scratch};
use tfe::sim::network::{FunctionalNetwork, FunctionalStage};
use tfe::sim::output::OutputConfig;
use tfe::tensor::fixed::Fx16;
use tfe::tensor::shape::LayerShape;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::ReuseConfig;
use tfe::transfer::layer::TransferredLayer;
use tfe::transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

const ALL_SCHEMES: [TransferScheme; 3] = [
    TransferScheme::DCNN4,
    TransferScheme::DCNN6,
    TransferScheme::Scnn,
];

const ALL_REUSE: [ReuseConfig; 4] = [
    ReuseConfig::NONE,
    ReuseConfig::PPSR_ONLY,
    ReuseConfig::ERRR_ONLY,
    ReuseConfig::FULL,
];

/// The batch sizes the parity sweep covers: singleton, even, odd (so
/// batch-chunk partitions are unequal), and the bench's headline size.
const BATCHES: [usize; 4] = [1, 2, 5, 8];

/// A small two-stage network (conv → conv+pool) compatible with every
/// scheme; `strided` swaps in a stride-2 first stage so the sweep also
/// covers the subsampled window path.
fn scheme_net(scheme: TransferScheme, strided: bool, seed: u32) -> FunctionalNetwork {
    let m = match scheme {
        TransferScheme::Dcnn { z: 6 } => 16,
        _ => 8,
    };
    let shapes = if strided {
        vec![
            (
                LayerShape::conv("t1", 3, m, 13, 13, 3, 2, 1).unwrap(),
                false,
            ),
            (LayerShape::conv("t2", m, m, 7, 7, 3, 1, 1).unwrap(), false),
        ]
    } else {
        vec![
            (
                LayerShape::conv("p1", 3, m, 12, 12, 3, 1, 1).unwrap(),
                false,
            ),
            (LayerShape::conv("p2", m, m, 12, 12, 3, 1, 1).unwrap(), true),
        ]
    };
    let mut s = seed;
    FunctionalNetwork::random(&shapes, scheme, || det(&mut s)).unwrap()
}

/// A single dense (non-transferred) stage — the batch-interleaved sweep
/// path — with weights scaled by `amp` so tests can choose the wrapping
/// fast path (small `amp`) or force genuine saturation (large `amp`).
fn dense_net(n: usize, m: usize, hw: usize, k: usize, amp: f32, seed: u32) -> FunctionalNetwork {
    let mut s = seed;
    let shape = LayerShape::conv("d", n, m, hw, hw, k, 1, 1).unwrap();
    let weights = TransferredLayer::Dense {
        weights: Tensor4::from_fn([m, n, k, k], |_| amp * det(&mut s)),
    };
    FunctionalNetwork::new(vec![FunctionalStage {
        shape,
        weights,
        bias: vec![0.1; m],
        output: OutputConfig::RELU_ONLY,
    }])
    .unwrap()
}

/// A four-stage chained network covering every generalized-geometry arm
/// at once: a transferred SCNN stem, a depthwise stage, a dilated stage,
/// and a grouped stage with pooling.
fn geometry_net(seed: u32) -> FunctionalNetwork {
    let shapes = vec![
        (
            LayerShape::conv("g1", 3, 8, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (
            LayerShape::depthwise("g2", 8, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (
            LayerShape::conv("g3", 8, 8, 12, 12, 3, 1, 1)
                .unwrap()
                .with_dilation(2)
                .unwrap(),
            false,
        ),
        (
            LayerShape::conv("g4", 8, 8, 10, 10, 3, 1, 1)
                .unwrap()
                .with_groups(2)
                .unwrap(),
            true,
        ),
    ];
    let mut s = seed;
    FunctionalNetwork::random(&shapes, TransferScheme::Scnn, || det(&mut s)).unwrap()
}

fn stacked(batch: usize, c: usize, side: usize, amp: f32, seed: u32) -> Tensor4<Fx16> {
    let mut s = seed;
    Tensor4::from_fn([batch, c, side, side], |_| {
        Fx16::from_f32(amp * det(&mut s))
    })
}

fn singles(input: &Tensor4<Fx16>) -> Vec<Tensor4<Fx16>> {
    let [batch, c, h, w] = input.dims();
    (0..batch)
        .map(|b| Tensor4::from_fn([1, c, h, w], |[_, ci, y, x]| input.get([b, ci, y, x])))
        .collect()
}

/// The parity oracle: `batched` must decompose into exactly the
/// sequential per-image runs — activations element-wise, counters per
/// image, and the merged total in batch order.
fn assert_batched_matches_sequential(
    engine: &Engine,
    input: &Tensor4<Fx16>,
    batched: &BatchedRun,
    label: &str,
) {
    let images = singles(input);
    assert_eq!(batched.per_image.len(), images.len(), "{label}");
    let mut scratch = Scratch::new();
    let mut total = Counters::new();
    for (b, single) in images.iter().enumerate() {
        let want = engine.run(single, &mut scratch).unwrap();
        assert_eq!(
            want.counters, batched.per_image[b],
            "{label}: per-image counters diverge at image {b}"
        );
        total.merge(&want.counters);
        let [_, c, h, w] = want.activations.dims();
        assert_eq!(batched.activations.dims(), [images.len(), c, h, w]);
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    assert_eq!(
                        want.activations.get([0, ci, y, x]),
                        batched.activations.get([b, ci, y, x]),
                        "{label}: activations diverge at image {b} plane {ci} ({y},{x})"
                    );
                }
            }
        }
    }
    assert_eq!(total, batched.counters, "{label}: merged counters");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full sweep: scheme × reuse ablation × stride × batch size ×
    /// worker count (1..=9, so every batch size also runs with more
    /// workers than images — the per-image unit-group partition path).
    #[test]
    fn batched_run_is_bit_identical_to_sequential(
        scheme_idx in 0usize..3,
        reuse_idx in 0usize..4,
        strided in any::<bool>(),
        batch_idx in 0usize..4,
        workers in 1usize..10,
        seed in 0u32..10_000,
    ) {
        let scheme = ALL_SCHEMES[scheme_idx];
        let net = scheme_net(scheme, strided, seed);
        let side = if strided { 13 } else { 12 };
        let batch = BATCHES[batch_idx];
        let input = stacked(batch, 3, side, 1.0, seed ^ 0xbead);

        let engine = Engine::compile(&net, ALL_REUSE[reuse_idx]).unwrap();
        let mut scratch = Scratch::new();
        let batched = engine.run_batched(&input, &mut scratch, workers).unwrap();
        let label = format!(
            "{scheme:?} reuse={reuse_idx} strided={strided} batch={batch} workers={workers}"
        );
        assert_batched_matches_sequential(&engine, &input, &batched, &label);
        prop_assert_eq!(scratch.run_quantized_rows(), 0);
    }
}

/// Both dense kernel paths, deterministically: small weights keep every
/// intermediate provably inside `i32` (the wrapping fast path), large
/// weights and inputs push sums past the clamp (the saturating
/// fallback) — parity must hold bit-exactly on both, at every batch
/// size and worker count.
#[test]
fn dense_wrapping_and_saturating_paths_match_sequential() {
    for (label, amp) in [("wrapping", 1.0f32), ("saturating", 100.0)] {
        let net = dense_net(48, 16, 12, 3, amp, 0x5eed);
        let engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
        let mut scratch = Scratch::new();
        for &batch in &BATCHES {
            let input = stacked(batch, 48, 12, amp, 0xace ^ batch as u32);
            for workers in [1usize, 3, 9] {
                let batched = engine.run_batched(&input, &mut scratch, workers).unwrap();
                assert_batched_matches_sequential(
                    &engine,
                    &input,
                    &batched,
                    &format!("dense/{label} batch={batch} workers={workers}"),
                );
            }
        }
    }
}

/// A k=5 dense stage exercises the widest monomorphized row kernel and
/// the largest inter-image junk gap of the interleaved layout.
#[test]
fn dense_k5_batched_matches_sequential() {
    let net = dense_net(32, 8, 10, 5, 1.0, 0xfade);
    let engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
    let mut scratch = Scratch::new();
    let input = stacked(5, 32, 10, 1.0, 0xd00d);
    let batched = engine.run_batched(&input, &mut scratch, 2).unwrap();
    assert_batched_matches_sequential(&engine, &input, &batched, "dense k5");
}

/// Depthwise, dilated, and grouped stages through the filter-stationary
/// batched sweep: parity with sequential runs must hold bit-exactly on
/// the generalized geometry, at several batch sizes and worker counts,
/// with and without reuse.
#[test]
fn geometry_net_batched_matches_sequential() {
    let net = geometry_net(0x6e0);
    for reuse in [ReuseConfig::FULL, ReuseConfig::NONE] {
        let engine = Engine::compile(&net, reuse).unwrap();
        let mut scratch = Scratch::new();
        for batch in [1usize, 5] {
            let input = stacked(batch, 3, 12, 1.0, 0x617 ^ batch as u32);
            for workers in [1usize, 3, 9] {
                let batched = engine.run_batched(&input, &mut scratch, workers).unwrap();
                assert_batched_matches_sequential(
                    &engine,
                    &input,
                    &batched,
                    &format!("geometry reuse={reuse:?} batch={batch} workers={workers}"),
                );
            }
        }
    }
}

/// The depthwise-separable zoo trunk (`mobilenet-mini`'s conv stem plus
/// dw/pw blocks) compiles into one engine — the stem transfers, the
/// depthwise and pointwise stages run conventionally — and batched
/// multi-worker execution stays bit-identical to sequential runs.
#[test]
fn mobilenet_mini_trunk_batched_matches_sequential() {
    use tfe::nets::TransferMode;
    let zoo = tfe::nets::zoo::mobilenet_mini();
    let shapes: Vec<(LayerShape, bool)> = zoo
        .conv_layers()
        .map(|l| (l.shape().clone(), false))
        .collect();
    assert!(shapes.iter().any(|(s, _)| s.groups() > 1));
    let mut s = 0x30b1u32;
    let net = FunctionalNetwork::random(&shapes, TransferScheme::Scnn, || det(&mut s)).unwrap();

    let engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
    let modes = engine.stage_modes();
    assert_eq!(modes[0], TransferMode::Scnn, "stem transfers");
    for (mode, (shape, _)) in modes.iter().zip(&shapes).skip(1) {
        assert_eq!(
            *mode,
            TransferMode::Conventional,
            "{}: dw/pw stages run conventionally",
            shape.name()
        );
    }

    let input = stacked(3, 3, 32, 1.0, 0x32);
    let mut scratch = Scratch::new();
    for workers in [1usize, 4] {
        let batched = engine.run_batched(&input, &mut scratch, workers).unwrap();
        assert_batched_matches_sequential(
            &engine,
            &input,
            &batched,
            &format!("mobilenet-mini workers={workers}"),
        );
    }
    assert_eq!(scratch.run_quantized_rows(), 0);
}

/// Telemetry under batching: one batched run records **one** sample per
/// stage carrying the whole batch's exact counter deltas and image
/// count, and the per-layer sums equal a sequential engine's — so
/// per-layer accounting is execution-strategy invariant.
#[test]
fn per_layer_telemetry_sums_match_sequential_engine() {
    for scheme in ALL_SCHEMES {
        let net = scheme_net(scheme, false, 77);
        let batch = 5usize;
        let input = stacked(batch, 3, 12, 1.0, 0x7007);

        let mut loud_batched = Engine::compile(&net, ReuseConfig::FULL).unwrap();
        loud_batched.enable_telemetry(64);
        let mut scratch = Scratch::new();
        loud_batched.run_batched(&input, &mut scratch, 2).unwrap();

        let mut loud_seq = Engine::compile(&net, ReuseConfig::FULL).unwrap();
        loud_seq.enable_telemetry(64);
        for single in &singles(&input) {
            loud_seq.run(single, &mut scratch).unwrap();
        }

        let reg_b = loud_batched.telemetry();
        let reg_s = loud_seq.telemetry();
        assert_eq!(reg_b.layers().len(), reg_s.layers().len());
        for (lb, ls) in reg_b.layers().iter().zip(reg_s.layers()) {
            assert_eq!(lb.runs, 1, "{scheme:?}: one sample per stage per run");
            assert_eq!(ls.runs, batch as u64);
            assert_eq!(lb.images, batch as u64, "{scheme:?}: batch size recorded");
            assert_eq!(ls.images, batch as u64);
            assert_eq!(
                lb.counters, ls.counters,
                "{scheme:?} layer {}: per-layer counter sums diverge",
                lb.layer
            );
        }
        assert_eq!(reg_b.total(), reg_s.total(), "{scheme:?} network totals");
    }
}

/// The bounded high-water shrink: a one-off batch-8 run grows the
/// batch-scaled arenas; they stay warm while the peak is inside the
/// shrink window, and are released once `PEAK_WINDOW` (8) smaller runs
/// age it out.
#[test]
fn scratch_arenas_shrink_after_peak_ages_out() {
    let net = dense_net(8, 8, 12, 3, 1.0, 0x91);
    let engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
    let mut scratch = Scratch::new();

    let big = stacked(8, 8, 12, 1.0, 0xb16);
    let small = stacked(1, 8, 12, 1.0, 0x5a11);
    engine.run_batched(&big, &mut scratch, 1).unwrap();
    let peak_caps = scratch.arena_capacities();

    // Inside the window the batch-8 peak still bounds every arena: the
    // next small run must not release the warm capacity.
    engine.run_batched(&small, &mut scratch, 1).unwrap();
    assert_eq!(
        scratch.arena_capacities(),
        peak_caps,
        "peak still inside the shrink window must keep arenas warm"
    );

    // Seven more small runs overwrite the last window slot holding the
    // batch-8 peak; retiring the eighth shrinks to the small geometry.
    for _ in 0..7 {
        engine.run_batched(&small, &mut scratch, 1).unwrap();
    }
    let shrunk = scratch.arena_capacities();
    for (i, (&after, &before)) in shrunk.iter().zip(&peak_caps).enumerate() {
        assert!(
            after < before,
            "arena {i}: capacity {after} must shrink below the batch-8 peak {before}"
        );
    }

    // And the shrunk arenas still produce exact results.
    let batched = engine.run_batched(&big, &mut scratch, 1).unwrap();
    assert_batched_matches_sequential(&engine, &big, &batched, "post-shrink");
}
