//! Execution-mode parity: the weight plan's alternate executors — the
//! compressed-sparse path (`engine/sparse.rs`) and the UCNN-style
//! factorized path (`engine/repeat.rs`) — must be **bit-identical** to
//! the dense sweep in activations, per-image counter streams, and
//! per-layer telemetry sums, across scheme × stride × dilation × batch,
//! through both [`Engine::run`] and [`Engine::run_batched`].
//!
//! The [`ModePolicy`] force constants make this pinnable: compiling the
//! same network under [`ModePolicy::DENSE_ONLY`],
//! [`ModePolicy::FORCE_SPARSE`], and [`ModePolicy::FORCE_FACTORIZED`]
//! yields three engines that must agree bit-exactly on everything
//! except *how* dense stages execute. Also pinned: the default policy's
//! natural thresholds (pruned weights select `Sparse`, small-palette
//! weights select `Factorized`), and the factorized saturation
//! fallback (weights that break the window-level no-clamp bound
//! downgrade to the dense sweep per run, preserving bit-identity).

use proptest::prelude::*;
use tfe::sim::counters::Counters;
use tfe::sim::engine::{BatchedRun, Engine, Scratch};
use tfe::sim::network::{FunctionalNetwork, FunctionalStage};
use tfe::sim::output::OutputConfig;
use tfe::tensor::fixed::Fx16;
use tfe::tensor::shape::LayerShape;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::ReuseConfig;
use tfe::transfer::layer::TransferredLayer;
use tfe::transfer::mode::{ExecMode, ModePolicy};
use tfe::transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    // Quarter-unit steps are exactly representable in Q8.8, so every
    // engine quantizes to identical weight bits.
    (((*seed >> 20) & 0xf) as f32 - 7.5) / 4.0
}

const ALL_SCHEMES: [TransferScheme; 3] = [
    TransferScheme::DCNN4,
    TransferScheme::DCNN6,
    TransferScheme::Scnn,
];

const STRIDES: [usize; 2] = [1, 2];
const DILATIONS: [usize; 2] = [1, 2];
const BATCHES: [usize; 3] = [1, 3, 5];

/// The three policies under comparison; `DENSE_ONLY` is the oracle.
const POLICIES: [(&str, ModePolicy, ExecMode); 3] = [
    ("dense", ModePolicy::DENSE_ONLY, ExecMode::Dense),
    ("sparse", ModePolicy::FORCE_SPARSE, ExecMode::Sparse),
    (
        "factorized",
        ModePolicy::FORCE_FACTORIZED,
        ExecMode::Factorized,
    ),
];

/// A transferred stem (per scheme) feeding a dense stage at the given
/// stride/dilation, with a deterministic fraction of the dense weights
/// zeroed — so forced policies exercise sparse tables with real holes
/// while the stem pins that transferred stages ignore the policy.
fn mixed_net(
    scheme: TransferScheme,
    stride: usize,
    dilation: usize,
    sparsity_steps: u32,
    seed: u32,
) -> FunctionalNetwork {
    let m = match scheme {
        TransferScheme::Dcnn { z: 6 } => 16,
        _ => 8,
    };
    let stem = LayerShape::conv("stem", 3, m, 13, 13, 3, 1, 1).unwrap();
    let mut s = seed;
    let stem_weights = TransferredLayer::random(&stem, scheme, || det(&mut s)).unwrap();
    let body = LayerShape::conv("body", m, 8, 13, 13, 3, stride, 1)
        .unwrap()
        .with_dilation(dilation)
        .unwrap();
    let body_weights = TransferredLayer::Dense {
        weights: Tensor4::from_fn([8, m, 3, 3], |_| {
            let v = det(&mut s);
            // `sparsity_steps`/8 of the taps become exact zeros.
            if (s >> 8) & 0x7 < sparsity_steps {
                0.0
            } else {
                v
            }
        }),
    };
    FunctionalNetwork::new(vec![
        FunctionalStage {
            shape: stem,
            weights: stem_weights,
            bias: vec![0.0; m],
            output: OutputConfig::RELU_ONLY,
        },
        FunctionalStage {
            shape: body,
            weights: body_weights,
            bias: vec![0.1; 8],
            output: OutputConfig::RELU_ONLY,
        },
    ])
    .unwrap()
}

fn stacked(batch: usize, c: usize, side: usize, amp: f32, seed: u32) -> Tensor4<Fx16> {
    let mut s = seed;
    Tensor4::from_fn([batch, c, side, side], |_| {
        Fx16::from_f32(amp * det(&mut s))
    })
}

/// Flattens a tensor in `[b, c, y, x]` order for whole-volume equality
/// assertions.
fn flat<T: Copy>(t: &Tensor4<T>) -> Vec<T> {
    let [b, c, h, w] = t.dims();
    let mut out = Vec::with_capacity(b * c * h * w);
    for bi in 0..b {
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    out.push(t.get([bi, ci, y, x]));
                }
            }
        }
    }
    out
}

/// Compiles `net` under each policy, runs single-image and batched
/// execution on the same inputs, and asserts everything observable —
/// activations, per-image counter streams, merged totals, per-layer
/// telemetry sums — is bit-identical to the `DENSE_ONLY` engine.
fn assert_mode_parity(
    net: &FunctionalNetwork,
    reuse: ReuseConfig,
    input: &Tensor4<Fx16>,
    workers: usize,
    label: &str,
) {
    let mut scratch = Scratch::new();
    let mut oracle: Option<(BatchedRun, Vec<Counters>)> = None;
    for (name, policy, forced) in POLICIES {
        let mut engine = Engine::compile_with_policy(net, reuse, &policy).unwrap();
        engine.enable_telemetry(64);
        // Transferred stages ignore the policy; dense stages take the
        // forced mode. The compile-time stats echo the same plan.
        let modes = engine.exec_modes();
        assert_eq!(modes, engine.stats().modes, "{label}/{name}: stats.modes");
        for (i, mode) in modes.iter().enumerate() {
            let expect = if matches!(net.stages()[i].weights, TransferredLayer::Dense { .. }) {
                forced
            } else {
                ExecMode::Transferred
            };
            assert_eq!(*mode, expect, "{label}/{name}: stage {i} mode");
        }

        let batched = engine.run_batched(input, &mut scratch, workers).unwrap();
        let batched_flat = flat(&batched.activations);
        let [batch, c, h, w] = input.dims();
        let per_image: Vec<Counters> = (0..batch)
            .map(|b| {
                let single =
                    Tensor4::from_fn([1, c, h, w], |[_, ci, y, x]| input.get([b, ci, y, x]));
                let run = engine.run(&single, &mut scratch).unwrap();
                let single_flat = flat(&run.activations);
                assert_eq!(
                    single_flat,
                    batched_flat[b * single_flat.len()..][..single_flat.len()],
                    "{label}/{name}: single vs batched image {b}"
                );
                run.counters
            })
            .collect();

        match &oracle {
            None => oracle = Some((batched, per_image)),
            Some((dense_run, dense_per_image)) => {
                assert_eq!(
                    batched_flat,
                    flat(&dense_run.activations),
                    "{label}/{name}: activations diverge from dense"
                );
                assert_eq!(
                    batched.per_image, dense_run.per_image,
                    "{label}/{name}: batched per-image counters diverge from dense"
                );
                assert_eq!(
                    batched.counters, dense_run.counters,
                    "{label}/{name}: merged counters diverge from dense"
                );
                assert_eq!(
                    &per_image, dense_per_image,
                    "{label}/{name}: sequential counter stream diverges from dense"
                );
            }
        }

        // Telemetry per-layer sums are execution-mode invariant, and
        // each layer reports the mode it compiled to.
        let reg = engine.telemetry();
        for (i, layer) in reg.layers().iter().enumerate() {
            assert_eq!(
                layer.mode,
                modes[i].as_str(),
                "{label}/{name}: telemetry mode for stage {i}"
            );
        }
        let dense_reg = Engine::compile_with_policy(net, reuse, &ModePolicy::DENSE_ONLY)
            .map(|mut e| {
                e.enable_telemetry(64);
                e.run_batched(input, &mut scratch, workers).unwrap();
                for single_b in 0..batch {
                    let single = Tensor4::from_fn([1, c, h, w], |[_, ci, y, x]| {
                        input.get([single_b, ci, y, x])
                    });
                    e.run(&single, &mut scratch).unwrap();
                }
                e.telemetry()
            })
            .unwrap();
        assert_eq!(reg.layers().len(), dense_reg.layers().len());
        for (got, want) in reg.layers().iter().zip(dense_reg.layers()) {
            assert_eq!(
                got.counters, want.counters,
                "{label}/{name} layer {}: per-layer telemetry sums diverge",
                got.layer
            );
            assert_eq!(got.runs, want.runs);
            assert_eq!(got.images, want.images);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full grid: scheme × stride × dilation × batch × worker count
    /// × weight sparsity, each cell comparing the three policy engines
    /// bit-for-bit through `run` and `run_batched`.
    #[test]
    fn forced_modes_are_bit_identical_across_the_grid(
        scheme_idx in 0usize..3,
        stride_idx in 0usize..2,
        dil_idx in 0usize..2,
        batch_idx in 0usize..3,
        workers in 1usize..5,
        sparsity_steps in 0u32..8,
        seed in 0u32..100_000,
    ) {
        let scheme = ALL_SCHEMES[scheme_idx];
        let net = mixed_net(
            scheme,
            STRIDES[stride_idx],
            DILATIONS[dil_idx],
            sparsity_steps,
            seed,
        );
        let input = stacked(BATCHES[batch_idx], 3, 13, 1.0, seed ^ 0xbead);
        let label = format!(
            "{scheme:?} stride={} dil={} batch={} workers={workers} zeros={sparsity_steps}/8",
            STRIDES[stride_idx], DILATIONS[dil_idx], BATCHES[batch_idx]
        );
        assert_mode_parity(&net, ReuseConfig::FULL, &input, workers, &label);
    }
}

/// A dense-only deep chain (no transferred stem) under every reuse
/// ablation: the policy grid must stay bit-identical when ERRR/PPSR
/// reuse is on, off, and mixed — alternate executors charge the same
/// counters the dense sweep does regardless of the reuse config.
#[test]
fn reuse_ablations_stay_bit_identical_under_forced_modes() {
    let mut s = 0x5eedu32;
    // 13×13 → (stride 2) 7×7 → (dilation 2, effective k=5) 5×5.
    let stages = [
        ("r1", 13usize, 1usize, 1usize),
        ("r2", 13, 2, 1),
        ("r3", 7, 1, 2),
    ]
    .into_iter()
    .map(|(name, side, stride, dilation)| {
        let shape = LayerShape::conv(name, 8, 8, side, side, 3, stride, 1)
            .unwrap()
            .with_dilation(dilation)
            .unwrap();
        FunctionalStage {
            shape,
            weights: TransferredLayer::Dense {
                weights: Tensor4::from_fn([8, 8, 3, 3], |_| {
                    let v = det(&mut s);
                    if (s >> 8) & 0x7 < 4 {
                        0.0
                    } else {
                        v
                    }
                }),
            },
            bias: vec![0.05; 8],
            output: OutputConfig::RELU_ONLY,
        }
    })
    .collect();
    let net = FunctionalNetwork::new(stages).unwrap();
    for reuse in [
        ReuseConfig::NONE,
        ReuseConfig::PPSR_ONLY,
        ReuseConfig::ERRR_ONLY,
        ReuseConfig::FULL,
    ] {
        let input = stacked(3, 8, 13, 1.0, 0xace);
        assert_mode_parity(&net, reuse, &input, 2, &format!("reuse={reuse:?}"));
    }
}

/// The default policy's natural thresholds: a 90 %-pruned dense stage
/// crosses the sparsity threshold and compiles to `Sparse`; a stage
/// whose weights come from a four-value palette crosses the repetition
/// threshold and compiles to `Factorized` — and both run bit-identical
/// to a `DENSE_ONLY` compile of the same network.
#[test]
fn default_policy_thresholds_choose_modes_naturally() {
    let shape = || LayerShape::conv("nat", 6, 8, 12, 12, 3, 1, 1).unwrap();
    let mut s = 0x1234u32;
    let pruned = FunctionalNetwork::new(vec![FunctionalStage {
        shape: shape(),
        weights: TransferredLayer::Dense {
            weights: Tensor4::from_fn([8, 6, 3, 3], |_| {
                let v = det(&mut s);
                // ~90 % of taps zeroed: well past the 0.4 threshold.
                if (s >> 7) % 10 < 9 {
                    0.0
                } else {
                    v
                }
            }),
        },
        bias: vec![0.0; 8],
        output: OutputConfig::RELU_ONLY,
    }])
    .unwrap();
    let palette = FunctionalNetwork::new(vec![FunctionalStage {
        shape: shape(),
        weights: TransferredLayer::Dense {
            weights: Tensor4::from_fn([8, 6, 3, 3], |_| {
                // A four-value palette: repetition = 1 - 4/432 ≈ 0.99,
                // past the 0.75 threshold; zero never occurs, so the
                // sparsity threshold cannot fire first.
                const PALETTE: [f32; 4] = [-0.5, -0.25, 0.25, 0.5];
                let v = det(&mut s);
                PALETTE[(v.abs() * 16.0) as usize % 4]
            }),
        },
        bias: vec![0.0; 8],
        output: OutputConfig::RELU_ONLY,
    }])
    .unwrap();

    for (net, expect) in [
        (&pruned, ExecMode::Sparse),
        (&palette, ExecMode::Factorized),
    ] {
        let engine = Engine::compile(net, ReuseConfig::FULL).unwrap();
        assert_eq!(engine.exec_modes(), vec![expect], "{expect:?}");
        let (sparsity, repetition) = engine.stage_weight_stats(0).unwrap();
        match expect {
            ExecMode::Sparse => assert!(sparsity > 0.4, "sparsity {sparsity}"),
            ExecMode::Factorized => {
                assert!(sparsity < 0.4, "sparsity {sparsity}");
                assert!(repetition > 0.75, "repetition {repetition}");
            }
            _ => unreachable!(),
        }
        let input = stacked(2, 6, 12, 1.0, 0x77);
        assert_mode_parity(
            net,
            ReuseConfig::FULL,
            &input,
            2,
            &format!("natural/{expect:?}"),
        );
    }
}

/// The factorized saturation fallback: weights and inputs large enough
/// to break the window-level no-clamp bound make the engine downgrade a
/// `Factorized` stage to the dense sweep *per run* — the compiled mode
/// still reports `Factorized`, and the run stays bit-identical to a
/// `DENSE_ONLY` engine (which genuinely saturates on this data).
#[test]
fn factorized_saturation_fallback_stays_bit_identical() {
    let mut s = 0xfadeu32;
    let net = FunctionalNetwork::new(vec![FunctionalStage {
        shape: LayerShape::conv("hot", 16, 8, 10, 10, 3, 1, 1).unwrap(),
        weights: TransferredLayer::Dense {
            weights: Tensor4::from_fn([8, 16, 3, 3], |_| 100.0 * det(&mut s)),
        },
        bias: vec![0.0; 8],
        output: OutputConfig::RELU_ONLY,
    }])
    .unwrap();
    let fact = Engine::compile_with_policy(&net, ReuseConfig::FULL, &ModePolicy::FORCE_FACTORIZED)
        .unwrap();
    assert_eq!(fact.exec_modes(), vec![ExecMode::Factorized]);
    let dense =
        Engine::compile_with_policy(&net, ReuseConfig::FULL, &ModePolicy::DENSE_ONLY).unwrap();

    let mut scratch = Scratch::new();
    let input = stacked(3, 16, 10, 100.0, 0xd00d);
    let a = fact.run_batched(&input, &mut scratch, 2).unwrap();
    let b = dense.run_batched(&input, &mut scratch, 2).unwrap();
    assert_eq!(flat(&a.activations), flat(&b.activations));
    assert_eq!(a.per_image, b.per_image);
    assert_eq!(a.counters, b.counters);
    // The saturating dense path really was needed: the same weights on
    // tame inputs take the factorized path, and both agree there too.
    let tame = stacked(3, 16, 10, 0.01, 0xd00d);
    let a2 = fact.run_batched(&tame, &mut scratch, 2).unwrap();
    let b2 = dense.run_batched(&tame, &mut scratch, 2).unwrap();
    assert_eq!(flat(&a2.activations), flat(&b2.activations));
    assert_eq!(a2.per_image, b2.per_image);
}

/// A fully-pruned (all-zero) dense stage: the sparse table is empty,
/// the factorized table has no groups — both must still emit the exact
/// dense result (bias + activation of zero sums) with exact counters.
#[test]
fn all_zero_weights_stay_bit_identical_in_every_mode() {
    let net = FunctionalNetwork::new(vec![FunctionalStage {
        shape: LayerShape::conv("z", 4, 4, 8, 8, 3, 1, 1).unwrap(),
        weights: TransferredLayer::Dense {
            weights: Tensor4::from_fn([4, 4, 3, 3], |_| 0.0),
        },
        bias: vec![0.25; 4],
        output: OutputConfig::RELU_ONLY,
    }])
    .unwrap();
    let input = stacked(2, 4, 8, 1.0, 0x11);
    assert_mode_parity(&net, ReuseConfig::FULL, &input, 2, "all-zero");
    let engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
    // Naturally chosen too: sparsity 1.0 ≫ threshold.
    assert_eq!(engine.exec_modes(), vec![ExecMode::Sparse]);
    assert_eq!(engine.stage_weight_stats(0).unwrap().0, 1.0);
}
