//! Parallel/batched/engine execution parity: the wrapper entry points in
//! `tfe::sim` (network `run`, `run_batch`) and a hand-driven
//! [`Engine`] must all be bit-identical — activations AND counters — at
//! every thread count, every scheme, every reuse ablation, and under
//! stride, with the merged [`Counters`] equal to the sequential totals
//! exactly.
//!
//! The guarantee rests on two properties: images are pure functions of
//! their inputs (one engine pass each), and per-image results — output
//! tensors and counters — merge in a fixed input order independent of
//! which thread produced them.

use proptest::prelude::*;
use tfe::sim::batch::{run_batch, run_engine_batch, split_batch, BatchOptions};
use tfe::sim::counters::Counters;
use tfe::sim::engine::{Engine, Scratch, ScratchPool};
use tfe::sim::functional::run_layer;
use tfe::sim::network::{FunctionalNetwork, FunctionalStage, NetworkOutput};
use tfe::sim::output::OutputConfig;
use tfe::tensor::fixed::Fx16;
use tfe::tensor::shape::LayerShape;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::ReuseConfig;
use tfe::transfer::layer::TransferredLayer;
use tfe::transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

const ALL_SCHEMES: [TransferScheme; 3] = [
    TransferScheme::DCNN4,
    TransferScheme::DCNN6,
    TransferScheme::Scnn,
];

const ALL_REUSE: [ReuseConfig; 4] = [
    ReuseConfig::NONE,
    ReuseConfig::PPSR_ONLY,
    ReuseConfig::ERRR_ONLY,
    ReuseConfig::FULL,
];

/// A small randomized two-stage network (conv → conv+pool) whose filter
/// count is compatible with every scheme (8 is a multiple of the DCNN4
/// window count 4, the DCNN6 window count 16 needs m=16, SCNN needs a
/// multiple of 8).
fn small_net(scheme: TransferScheme, seed: u32) -> FunctionalNetwork {
    let m = match scheme {
        TransferScheme::Dcnn { z: 6 } => 16,
        _ => 8,
    };
    let shapes = vec![
        (
            LayerShape::conv("p1", 3, m, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (LayerShape::conv("p2", m, m, 12, 12, 3, 1, 1).unwrap(), true),
    ];
    let mut s = seed;
    FunctionalNetwork::random(&shapes, scheme, || det(&mut s)).unwrap()
}

/// Like [`small_net`] but with a stride-2 first stage, so the parity
/// sweep also covers the subsampled window path.
fn strided_net(scheme: TransferScheme, seed: u32) -> FunctionalNetwork {
    let m = match scheme {
        TransferScheme::Dcnn { z: 6 } => 16,
        _ => 8,
    };
    let shapes = vec![
        (
            LayerShape::conv("t1", 3, m, 13, 13, 3, 2, 1).unwrap(),
            false,
        ),
        (LayerShape::conv("t2", m, m, 7, 7, 3, 1, 1).unwrap(), false),
    ];
    let mut s = seed;
    FunctionalNetwork::random(&shapes, scheme, || det(&mut s)).unwrap()
}

/// A four-stage chained network covering every generalized-geometry arm
/// (transferred stem → depthwise → dilated → grouped+pool), mirroring
/// `tests/batched_parity.rs`.
fn geometry_net(seed: u32) -> FunctionalNetwork {
    let shapes = vec![
        (
            LayerShape::conv("g1", 3, 8, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (
            LayerShape::depthwise("g2", 8, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (
            LayerShape::conv("g3", 8, 8, 12, 12, 3, 1, 1)
                .unwrap()
                .with_dilation(2)
                .unwrap(),
            false,
        ),
        (
            LayerShape::conv("g4", 8, 8, 10, 10, 3, 1, 1)
                .unwrap()
                .with_groups(2)
                .unwrap(),
            true,
        ),
    ];
    let mut s = seed;
    FunctionalNetwork::random(&shapes, TransferScheme::Scnn, || det(&mut s)).unwrap()
}

fn images(count: usize, seed: u32) -> Vec<Tensor4<Fx16>> {
    let mut s = seed;
    (0..count)
        .map(|_| Tensor4::from_fn([1, 3, 12, 12], |_| Fx16::from_f32(det(&mut s))))
        .collect()
}

/// Sequential reference: one image at a time through `net.run`, counters
/// accumulated in input order.
fn sequential(
    net: &FunctionalNetwork,
    inputs: &[Tensor4<Fx16>],
    reuse: ReuseConfig,
) -> (Vec<NetworkOutput>, Counters) {
    let mut total = Counters::new();
    let outputs: Vec<NetworkOutput> = inputs
        .iter()
        .map(|img| net.run(img, reuse).unwrap())
        .collect();
    for out in &outputs {
        total.merge(&out.counters);
    }
    (outputs, total)
}

#[test]
fn batched_parallel_is_bit_identical_to_sequential() {
    for scheme in ALL_SCHEMES {
        let net = small_net(scheme, 41);
        let inputs = images(6, 977);
        let (seq_outputs, seq_total) = sequential(&net, &inputs, ReuseConfig::FULL);

        for threads in [1usize, 2, 3, 4, 8] {
            let batch = run_batch(
                &net,
                &inputs,
                ReuseConfig::FULL,
                BatchOptions::with_threads(threads),
            )
            .unwrap();
            assert_eq!(batch.outputs.len(), seq_outputs.len());
            for (got, want) in batch.outputs.iter().zip(&seq_outputs) {
                assert_eq!(
                    got.activations, want.activations,
                    "{scheme:?} activations diverge at {threads} threads"
                );
                assert_eq!(
                    got.counters, want.counters,
                    "{scheme:?} per-image counters diverge at {threads} threads"
                );
            }
            assert_eq!(
                batch.counters, seq_total,
                "{scheme:?} merged counters diverge at {threads} threads"
            );
        }
    }
}

#[test]
fn reuse_ablations_stay_parity_under_parallelism() {
    // The counter deltas between reuse configurations are the paper's
    // headline metric, so parity must hold for every ablation cell, not
    // just the full configuration.
    let net = small_net(TransferScheme::Scnn, 7);
    let inputs = images(4, 1234);
    for reuse in ALL_REUSE {
        let (seq_outputs, seq_total) = sequential(&net, &inputs, reuse);
        let batch = run_batch(&net, &inputs, reuse, BatchOptions::with_threads(4)).unwrap();
        for (got, want) in batch.outputs.iter().zip(&seq_outputs) {
            assert_eq!(got.activations, want.activations);
        }
        assert_eq!(batch.counters, seq_total);
    }
}

#[test]
fn run_layer_is_thread_count_invariant() {
    // The single-layer entry point must be invariant to the ambient rayon
    // thread budget (each layer is one sequential engine pass).
    let shape = LayerShape::conv("inv", 4, 16, 10, 10, 3, 1, 1).unwrap();
    let mut wseed = 5;
    let layer = TransferredLayer::random(&shape, TransferScheme::Scnn, || det(&mut wseed)).unwrap();
    let input = Tensor4::from_fn([2, 4, 10, 10], |_| Fx16::from_f32(det(&mut wseed)));

    let reference = run_layer(&input, &layer, &shape, ReuseConfig::FULL).unwrap();
    for threads in [1usize, 2, 3, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let got = pool.install(|| run_layer(&input, &layer, &shape, ReuseConfig::FULL).unwrap());
        assert_eq!(got.output, reference.output, "{threads} threads");
        assert_eq!(got.counters, reference.counters, "{threads} threads");
    }
}

#[test]
fn wrapper_run_is_bit_identical_to_hand_driven_engine() {
    // FunctionalNetwork::run is a thin wrapper over the compiled engine;
    // driving Engine::compile + Engine::run by hand must agree with the
    // wrapper — activations AND counters — on every scheme and every
    // reuse ablation, while reusing one Scratch arena across all runs.
    let mut scratch = Scratch::new();
    for scheme in ALL_SCHEMES {
        let net = small_net(scheme, 41);
        let inputs = images(3, 977);
        for reuse in ALL_REUSE {
            let engine = Engine::compile(&net, reuse).unwrap();
            for (i, img) in inputs.iter().enumerate() {
                let want = net.run(img, reuse).unwrap();
                let got = engine.run(img, &mut scratch).unwrap();
                assert_eq!(
                    got.activations, want.activations,
                    "{scheme:?} {reuse:?} activations diverge on image {i}"
                );
                assert_eq!(
                    got.counters, want.counters,
                    "{scheme:?} {reuse:?} counters diverge on image {i}"
                );
            }
        }
    }
    assert_eq!(scratch.run_quantized_rows(), 0);
}

#[test]
fn wrapper_matches_engine_under_stride() {
    // Same wrapper-vs-engine sweep on a stride-2 first stage: the
    // subsampled window path must stay bit-identical too.
    let mut scratch = Scratch::new();
    for scheme in ALL_SCHEMES {
        let net = strided_net(scheme, 23);
        let mut s = 607;
        let inputs: Vec<Tensor4<Fx16>> = (0..3)
            .map(|_| Tensor4::from_fn([1, 3, 13, 13], |_| Fx16::from_f32(det(&mut s))))
            .collect();
        for reuse in ALL_REUSE {
            let engine = Engine::compile(&net, reuse).unwrap();
            for (i, img) in inputs.iter().enumerate() {
                let want = net.run(img, reuse).unwrap();
                let got = engine.run(img, &mut scratch).unwrap();
                assert_eq!(
                    got.activations, want.activations,
                    "{scheme:?} {reuse:?} strided activations diverge on image {i}"
                );
                assert_eq!(
                    got.counters, want.counters,
                    "{scheme:?} {reuse:?} strided counters diverge on image {i}"
                );
            }
        }
    }
    assert_eq!(scratch.run_quantized_rows(), 0);
}

#[test]
fn engine_handles_bias_stride_and_dense_layers() {
    // Dense (non-transferred) units, per-filter bias (including a bias
    // vector shorter than M), a ReLU-less stage, stride 2, and batch > 1
    // all go through the same compile/run split.
    let mut s = 2718;
    let s1 = LayerShape::conv("d1", 2, 3, 8, 8, 3, 1, 1).unwrap();
    let s2 = LayerShape::conv("d2", 3, 4, 8, 8, 3, 2, 1).unwrap();
    let w1 = tfe::tensor::tensor::Tensor4::from_fn([3, 2, 3, 3], |_| det(&mut s));
    let w2 = tfe::tensor::tensor::Tensor4::from_fn([4, 3, 3, 3], |_| det(&mut s));
    let net = FunctionalNetwork::new(vec![
        FunctionalStage {
            shape: s1,
            weights: TransferredLayer::Dense { weights: w1 },
            bias: vec![0.25, -0.125, 0.5],
            output: OutputConfig {
                relu: false,
                pool: None,
            },
        },
        FunctionalStage {
            shape: s2,
            weights: TransferredLayer::Dense { weights: w2 },
            bias: vec![0.375],
            output: OutputConfig {
                relu: true,
                pool: Some(2),
            },
        },
    ])
    .unwrap();
    let input = Tensor4::from_fn([2, 2, 8, 8], |_| Fx16::from_f32(det(&mut s)));

    let want = net.run(&input, ReuseConfig::FULL).unwrap();
    let engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
    let mut scratch = Scratch::new();
    // Run twice: the second pass exercises warm (recycled) buffers.
    for _ in 0..2 {
        let got = engine.run(&input, &mut scratch).unwrap();
        assert_eq!(got.activations, want.activations);
        assert_eq!(got.counters, want.counters);
    }
    assert_eq!(scratch.run_quantized_rows(), 0);
}

#[test]
fn engine_reports_the_same_shape_errors() {
    let net = small_net(TransferScheme::Scnn, 11);
    let engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
    let mut scratch = Scratch::new();
    // Wrong channel count: wrapper and engine must reject identically.
    let bad = Tensor4::from_fn([1, 2, 12, 12], |_| Fx16::ZERO);
    let want = net.run(&bad, ReuseConfig::FULL).unwrap_err();
    let got = engine.run(&bad, &mut scratch).unwrap_err();
    assert_eq!(format!("{got:?}"), format!("{want:?}"));
    // The scratch survives an errored run and still produces exact
    // results afterwards.
    let ok = images(1, 5)[0].clone();
    let want = net.run(&ok, ReuseConfig::FULL).unwrap();
    let got = engine.run(&ok, &mut scratch).unwrap();
    assert_eq!(got.activations, want.activations);
    assert_eq!(got.counters, want.counters);
}

#[test]
fn engine_batch_is_thread_count_invariant() {
    // run_engine_batch must match the sequential reference for every
    // thread count, including more threads than images, with scratch
    // arenas recycled through the pool.
    for scheme in ALL_SCHEMES {
        let net = small_net(scheme, 19);
        let inputs = images(5, 333);
        let (seq_outputs, seq_total) = sequential(&net, &inputs, ReuseConfig::FULL);
        let engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
        let scratches = ScratchPool::new();
        for threads in [1usize, 2, 4, 9] {
            let batch = run_engine_batch(
                &engine,
                &inputs,
                BatchOptions::with_threads(threads),
                &scratches,
            )
            .unwrap();
            assert_eq!(batch.outputs.len(), seq_outputs.len());
            for (got, want) in batch.outputs.iter().zip(&seq_outputs) {
                assert_eq!(
                    got.activations, want.activations,
                    "{scheme:?} activations diverge at {threads} threads"
                );
                assert_eq!(
                    got.counters, want.counters,
                    "{scheme:?} per-image counters diverge at {threads} threads"
                );
            }
            assert_eq!(
                batch.counters, seq_total,
                "{scheme:?} merged counters diverge at {threads} threads"
            );
        }
    }
}

#[test]
fn geometry_net_is_thread_count_invariant() {
    // Depthwise, dilated, and grouped stages through both batch runners:
    // per-image results and merged counters must be bit-identical to the
    // sequential reference at every thread count and reuse ablation.
    let net = geometry_net(0x9e0);
    let inputs = images(5, 271);
    for reuse in [ReuseConfig::FULL, ReuseConfig::NONE] {
        let (seq_outputs, seq_total) = sequential(&net, &inputs, reuse);
        let engine = Engine::compile(&net, reuse).unwrap();
        let scratches = ScratchPool::new();
        for threads in [1usize, 2, 4, 8] {
            for batch in [
                run_batch(&net, &inputs, reuse, BatchOptions::with_threads(threads)).unwrap(),
                run_engine_batch(
                    &engine,
                    &inputs,
                    BatchOptions::with_threads(threads),
                    &scratches,
                )
                .unwrap(),
            ] {
                assert_eq!(batch.outputs.len(), seq_outputs.len());
                for (got, want) in batch.outputs.iter().zip(&seq_outputs) {
                    assert_eq!(
                        got.activations, want.activations,
                        "{reuse:?} geometry activations diverge at {threads} threads"
                    );
                    assert_eq!(
                        got.counters, want.counters,
                        "{reuse:?} geometry counters diverge at {threads} threads"
                    );
                }
                assert_eq!(batch.counters, seq_total, "{reuse:?} at {threads} threads");
            }
        }
    }
}

#[test]
fn compile_quantizes_every_row_exactly_once() {
    let net = small_net(TransferScheme::Scnn, 3);
    let engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
    let stats = engine.stats();
    // Two SCNN stages: 3→8 and 8→8 filters, one orbit group each, eight
    // orientations per group, N rows of K=3 per orientation.
    assert_eq!(stats.scnn_orientations, 16);
    assert_eq!(stats.weight_rows, 8 * 3 * 3 + 8 * 8 * 3);
    assert_eq!(stats.weight_values, stats.weight_rows * 3);
}

#[test]
fn scratch_pool_is_bounded_and_reuses_arenas() {
    // Satellite regression: restore() used to push unconditionally, so a
    // burst of workers grew the pool without bound. The pool must cap at
    // its capacity and drop overflow arenas.
    let pool = ScratchPool::with_capacity(2);
    assert_eq!(pool.capacity(), 2);
    assert_eq!(pool.warm(), 0);
    let a = pool.checkout();
    let b = pool.checkout();
    let c = pool.checkout();
    pool.restore(a);
    pool.restore(b);
    pool.restore(c); // over capacity: dropped, not retained
    assert_eq!(pool.warm(), 2);
    let _held = pool.checkout();
    assert_eq!(pool.warm(), 1);
    // Default capacity is at least 1 so services always reuse something.
    assert!(ScratchPool::new().capacity() >= 1);
    assert_eq!(
        ScratchPool::default().capacity(),
        ScratchPool::new().capacity()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any interleaving of checkouts and restores, the pool never
    /// retains more than its capacity and never loses arenas it could
    /// have kept.
    #[test]
    fn scratch_pool_never_exceeds_cap(
        cap in 0usize..8,
        len in 1usize..64,
        ops in prop::collection::vec(any::<bool>(), 64),
    ) {
        let pool = ScratchPool::with_capacity(cap);
        let mut out: Vec<Scratch> = Vec::new();
        for &checkout in &ops[..len] {
            if checkout {
                out.push(pool.checkout());
            } else if let Some(scratch) = out.pop() {
                let before = pool.warm();
                pool.restore(scratch);
                let expected = if before < cap { before + 1 } else { before };
                prop_assert_eq!(pool.warm(), expected);
            }
            prop_assert!(pool.warm() <= cap);
        }
        for scratch in out {
            pool.restore(scratch);
            prop_assert!(pool.warm() <= cap);
        }
    }
}

#[test]
fn split_batch_then_run_batch_matches_multi_batch_tensor() {
    // Feeding a [B, C, H, W] tensor through the network directly and
    // splitting it into B singleton images for the batch runner must
    // agree on both values and counter totals.
    let net = small_net(TransferScheme::DCNN4, 99);
    let mut s = 3141;
    let stacked = Tensor4::from_fn([3, 3, 12, 12], |_| Fx16::from_f32(det(&mut s)));
    let singles = split_batch(&stacked);
    assert_eq!(singles.len(), 3);

    let whole = net.run(&stacked, ReuseConfig::FULL).unwrap();
    let batch = run_batch(&net, &singles, ReuseConfig::FULL, BatchOptions::default()).unwrap();

    let [_, c, h, w] = whole.activations.dims();
    for (b, out) in batch.outputs.iter().enumerate() {
        assert_eq!(out.activations.dims(), [1, c, h, w]);
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    assert_eq!(
                        out.activations.get([0, ci, y, x]),
                        whole.activations.get([b, ci, y, x]),
                        "image {b} plane {ci} at ({y},{x})"
                    );
                }
            }
        }
    }
    assert_eq!(batch.counters, whole.counters);
}
