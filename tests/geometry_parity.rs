//! Generalized-geometry parity: every point of the convolution geometry
//! grid — `stride ∈ {1, 2, 3}` × `dilation ∈ {1, 2}` × `groups ∈ {1,
//! C/2, C}` × scheme — must execute **bit-identically** to the reference
//! convolution [`tfe::tensor::conv::conv2d_fx`] applied to the expanded
//! weights, under every reuse ablation, with per-layer counters exactly
//! matching the analytic plan (`dense_macs` == [`LayerPlan::dense_macs`]
//! == the [`NetworkPerf`] model's figure).
//!
//! Transfer policy coherence is pinned alongside: grouped shapes resolve
//! to an explicit dense weight bank ([`Policy::Dense`]) rather than a
//! transferred representation, and pairing transferred weights with a
//! grouped shape is a typed [`SimError::UnsupportedGeometry`].

use proptest::prelude::*;
use tfe::sim::engine::{Engine, Scratch};
use tfe::sim::functional::run_layer;
use tfe::sim::network::{FunctionalNetwork, FunctionalStage};
use tfe::sim::output::OutputConfig;
use tfe::sim::perf::{NetworkPerf, PerfConfig};
use tfe::sim::SimError;
use tfe::tensor::conv::conv2d_fx;
use tfe::tensor::fixed::{Accum, Fx16};
use tfe::tensor::shape::LayerShape;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::ReuseConfig;
use tfe::transfer::layer::TransferredLayer;
use tfe::transfer::{Policy, TransferScheme};

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    // Quarter-unit steps are exactly representable in Q8.8, so the
    // engine and the oracle quantize to identical weights.
    (((*seed >> 20) & 0xf) as f32 - 7.5) / 4.0
}

const STRIDES: [usize; 3] = [1, 2, 3];
const DILATIONS: [usize; 2] = [1, 2];
/// Group counts over the C = 4 input channels: ordinary, half, depthwise
/// granularity (`groups == C`; with M > C this is the grouped — not
/// depthwise-kind — corner, which the dedicated depthwise tests cover).
const GROUPS: [usize; 3] = [1, 2, 4];

const ALL_SCHEMES: [TransferScheme; 3] = [
    TransferScheme::DCNN4,
    TransferScheme::DCNN6,
    TransferScheme::Scnn,
];

const ALL_REUSE: [ReuseConfig; 4] = [
    ReuseConfig::NONE,
    ReuseConfig::PPSR_ONLY,
    ReuseConfig::ERRR_ONLY,
    ReuseConfig::FULL,
];

/// One grid cell: a 4-channel 12×12 layer at the given geometry. M is
/// scheme-dependent (the DCNN6 meta derives 16 filters) and every M is
/// divisible by every group count in [`GROUPS`].
fn cell_shape(scheme: TransferScheme, stride: usize, dilation: usize, groups: usize) -> LayerShape {
    let m = match scheme {
        TransferScheme::Dcnn { z: 6 } => 16,
        _ => 8,
    };
    LayerShape::conv("geo", 4, m, 12, 12, 3, stride, 1)
        .unwrap()
        .with_dilation(dilation)
        .unwrap()
        .with_groups(groups)
        .unwrap()
}

fn random_input(shape: &LayerShape, seed: &mut u32) -> Tensor4<Fx16> {
    Tensor4::from_fn([1, shape.n(), shape.h(), shape.w()], |_| {
        Fx16::from_f32(det(seed))
    })
}

fn oracle(input: &Tensor4<Fx16>, layer: &TransferredLayer, shape: &LayerShape) -> Tensor4<Accum> {
    let dense = layer.expand_to_dense().unwrap().map(Fx16::from_f32);
    conv2d_fx(input, &dense, shape).unwrap()
}

/// Checks one geometry cell end to end: policy coherence, bit-identity
/// against the oracle under each requested reuse config, `dense_macs`
/// counter exactness, and agreement between the compiled engine's layer
/// plans, the analytic [`NetworkPerf`] model, and the counted run.
fn check_cell(
    shape: &LayerShape,
    scheme: TransferScheme,
    reuse_configs: &[ReuseConfig],
    seed: u32,
) {
    let mut wseed = seed;
    let layer = TransferredLayer::random(shape, scheme, || det(&mut wseed)).unwrap();

    // Policy coherence: the stored representation matches the resolved
    // policy — grouped geometry always falls back to a dense bank.
    let policy = scheme.policy_for(shape);
    assert_eq!(
        policy.transfers(),
        !matches!(layer, TransferredLayer::Dense { .. }),
        "{shape}: policy {policy:?} disagrees with stored representation"
    );
    if shape.groups() > 1 {
        assert!(matches!(policy, Policy::Dense { .. }), "{shape}");
    }

    let mut iseed = seed ^ 0x9e37_79b9;
    let input = random_input(shape, &mut iseed);
    let expected = oracle(&input, &layer, shape);
    for &reuse in reuse_configs {
        let got = run_layer(&input, &layer, shape, reuse).unwrap();
        assert_eq!(
            got.output, expected,
            "{shape} {scheme:?} {reuse:?}: engine diverges from conv2d_fx"
        );
        // The counted baseline is the layer's logical dense work — the
        // groups-aware analytic figure, independent of reuse config.
        assert_eq!(
            got.counters.dense_macs,
            shape.macs(),
            "{shape} {scheme:?} {reuse:?}: dense_macs"
        );
    }

    // Compiled-engine agreement: plan, analytic perf model, and the
    // counted run all report the same dense-MAC figure for the layer.
    let net = FunctionalNetwork::new(vec![FunctionalStage {
        shape: shape.clone(),
        weights: layer,
        bias: vec![0.0; shape.m()],
        output: OutputConfig::RELU_ONLY,
    }])
    .unwrap();
    let engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
    let plans = engine.layer_plans();
    assert_eq!(plans.len(), 1);
    assert_eq!(plans[0].dense_macs(), shape.macs(), "{shape}: plan");
    let perf = NetworkPerf::of_engine(&engine, &PerfConfig::default());
    assert_eq!(
        perf.layers()[0].counters().dense_macs,
        shape.macs(),
        "{shape}: NetworkPerf"
    );
    let run = engine.run(&input, &mut Scratch::new()).unwrap();
    assert_eq!(run.counters.dense_macs, shape.macs(), "{shape}: run");
}

/// Every cell of the geometry grid, deterministically, at full reuse:
/// 3 strides × 2 dilations × 3 group counts × 3 schemes.
#[test]
fn exhaustive_geometry_grid_matches_oracle() {
    for scheme in ALL_SCHEMES {
        for &stride in &STRIDES {
            for &dilation in &DILATIONS {
                for &groups in &GROUPS {
                    let shape = cell_shape(scheme, stride, dilation, groups);
                    let seed = (stride * 100 + dilation * 10 + groups) as u32;
                    check_cell(&shape, scheme, &[ReuseConfig::FULL], seed);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized sweep over the same grid with fresh weights and inputs
    /// per case, under **all four** reuse ablations.
    #[test]
    fn geometry_sweep_is_bit_identical_and_counter_exact(
        stride_idx in 0usize..3,
        dil_idx in 0usize..2,
        group_idx in 0usize..3,
        scheme_idx in 0usize..3,
        seed in 0u32..100_000,
    ) {
        let scheme = ALL_SCHEMES[scheme_idx];
        let shape = cell_shape(
            scheme,
            STRIDES[stride_idx],
            DILATIONS[dil_idx],
            GROUPS[group_idx],
        );
        check_cell(&shape, scheme, &ALL_REUSE, seed);
    }
}

/// The depthwise-kind corner (`groups == N == M`, one channel per
/// filter) at stride and dilation extremes, including the analytic
/// model agreement.
#[test]
fn depthwise_cells_match_oracle_and_perf_model() {
    for (stride, dilation) in [(1, 1), (2, 1), (1, 2), (2, 2)] {
        let shape = LayerShape::depthwise("dwg", 6, 13, 13, 3, stride, 1)
            .unwrap()
            .with_dilation(dilation)
            .unwrap();
        check_cell(
            &shape,
            TransferScheme::Scnn,
            &ALL_REUSE,
            0xd1 + stride as u32,
        );
    }
}

/// Transferred weights on a grouped shape are a typed compile-time
/// error naming the scheme and group count — never a silent fallback.
#[test]
fn transferred_weights_on_grouped_shape_are_typed_errors() {
    let plain = LayerShape::conv("tg", 4, 8, 12, 12, 3, 1, 1).unwrap();
    let grouped = plain.clone().with_groups(2).unwrap();
    let mut wseed = 3;
    let layer = TransferredLayer::random(&plain, TransferScheme::Scnn, || det(&mut wseed)).unwrap();
    assert!(!matches!(layer, TransferredLayer::Dense { .. }));
    let input = random_input(&grouped, &mut 55);
    match run_layer(&input, &layer, &grouped, ReuseConfig::FULL) {
        Err(SimError::UnsupportedGeometry { scheme, groups }) => {
            assert_eq!(scheme, "SCNN");
            assert_eq!(groups, 2);
        }
        other => panic!("expected UnsupportedGeometry, got {other:?}"),
    }
}
