//! Consistency between the three levels of modelling: the closed-form
//! analysis (paper Eq. 1–5), the per-layer performance model, and the
//! functional datapath's counted multiplies.
//!
//! The analysis assumes edge-free convolution (every output position
//! costs the amortized shared-row rate), while the functional datapath
//! pays for padded-row edges; the two must agree within the edge
//! fraction.

use tfe::sim::functional::run_layer;
use tfe::tensor::fixed::Fx16;
use tfe::tensor::shape::LayerShape;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::{self, ReuseConfig};
use tfe::transfer::layer::TransferredLayer;
use tfe::transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    (((*seed >> 20) & 0xf) as f32 - 7.5) / 4.0
}

/// Relative edge overhead bound for an `hw × hw` layer with extent `k`
/// and `pad`: the functional model processes `(H + 2p + k − 1)`-ish rows
/// of `(W + 2p)` elements where the analysis charges `E × F`.
fn edge_bound(shape: &LayerShape, row_len: usize) -> f64 {
    let wp = (shape.w() + 2 * shape.pad()) as f64;
    let hp = (shape.h() + 2 * shape.pad()) as f64;
    let horizontal = wp / shape.f() as f64;
    let vertical = (hp + row_len as f64) / shape.e() as f64;
    horizontal * vertical - 1.0 + 0.05
}

fn check_counts(shape: &LayerShape, scheme: TransferScheme, seed: u32) {
    let mut wseed = seed;
    let layer = TransferredLayer::random(shape, scheme, || det(&mut wseed)).unwrap();
    let mut iseed = seed + 1;
    let input = Tensor4::from_fn([1, shape.n(), shape.h(), shape.w()], |_| {
        Fx16::from_f32(det(&mut iseed))
    });
    for reuse in [
        ReuseConfig::FULL,
        ReuseConfig::PPSR_ONLY,
        ReuseConfig::ERRR_ONLY,
    ] {
        let functional = run_layer(&input, &layer, shape, reuse).unwrap();
        let analytic = analysis::scheme_macs(shape, scheme, reuse);
        let measured = functional.counters.multiplies;
        let rel = (measured as f64 - analytic as f64) / analytic as f64;
        let bound = edge_bound(shape, 8);
        assert!(
            rel.abs() <= bound,
            "{shape} {} {reuse:?}: measured {measured}, analytic {analytic}, rel {rel:.3}, bound {bound:.3}",
            scheme.label()
        );
    }
}

#[test]
fn functional_multiplies_match_analysis_dcnn4() {
    let shape = LayerShape::conv("c", 2, 16, 20, 20, 3, 1, 1).unwrap();
    check_counts(&shape, TransferScheme::DCNN4, 71);
}

#[test]
fn functional_multiplies_match_analysis_dcnn6() {
    let shape = LayerShape::conv("c", 1, 16, 24, 24, 3, 1, 1).unwrap();
    check_counts(&shape, TransferScheme::DCNN6, 73);
}

#[test]
fn functional_multiplies_match_analysis_scnn() {
    let shape = LayerShape::conv("c", 2, 16, 20, 20, 3, 1, 1).unwrap();
    check_counts(&shape, TransferScheme::Scnn, 79);
}

/// The performance model's multiply counts are exactly the analysis
/// formulas evaluated over the plan — no drift between the two layers of
/// the stack.
#[test]
fn perf_model_equals_analysis_over_whole_networks() {
    use tfe::nets::zoo;
    use tfe::sim::perf::{NetworkPerf, PerfConfig};
    for net in zoo::all() {
        for scheme in [
            TransferScheme::DCNN4,
            TransferScheme::DCNN6,
            TransferScheme::Scnn,
        ] {
            let plan = net.plan(scheme);
            let perf = NetworkPerf::evaluate(&plan, &PerfConfig::default());
            assert_eq!(
                perf.total_counters().multiplies,
                plan.tfe_macs(ReuseConfig::FULL),
                "{} {}",
                net.name(),
                scheme.label()
            );
        }
    }
}

/// Parameter accounting agrees between the structural representation
/// (actual stored buffers) and the analysis formulas, whenever `M` fits
/// whole groups.
#[test]
fn structural_params_equal_analysis_params() {
    for (scheme, m) in [
        (TransferScheme::DCNN4, 16usize),
        (TransferScheme::DCNN6, 32),
        (TransferScheme::Scnn, 24),
    ] {
        let shape = LayerShape::conv("p", 3, m, 12, 12, 3, 1, 1).unwrap();
        let mut seed = 83;
        let layer = TransferredLayer::random(&shape, scheme, || det(&mut seed)).unwrap();
        assert_eq!(
            layer.stored_params(),
            analysis::scheme_params(&shape, scheme),
            "{}",
            scheme.label()
        );
    }
}
