//! Robustness and failure-injection tests: thread-safety of the public
//! types, saturation behaviour of the fixed-point datapath under extreme
//! inputs, and misuse of the memory-system primitives.

use tfe::core::{Engine, NetworkReport};
use tfe::sim::counters::Counters;
use tfe::sim::errr::RowRing;
use tfe::sim::functional::run_layer;
use tfe::tensor::fixed::{Accum, Fx16};
use tfe::tensor::shape::LayerShape;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::ReuseConfig;
use tfe::transfer::layer::TransferredLayer;
use tfe::transfer::TransferScheme;

/// Key public types are Send + Sync (C-SEND-SYNC): the engine and its
/// reports can be shared across threads for parallel sweeps.
#[test]
fn public_types_are_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Engine>();
    check::<NetworkReport>();
    check::<tfe::nets::Network>();
    check::<tfe::sim::perf::NetworkPerf>();
    check::<tfe::eyeriss::EyerissPerf>();
    check::<TransferredLayer>();
    check::<Fx16>();
    check::<Accum>();
    check::<tfe::tensor::TensorError>();
    check::<tfe::sim::SimError>();
    check::<tfe::transfer::TransferError>();
    check::<tfe::core::EngineError>();
}

/// The engine can actually be driven from multiple threads.
#[test]
fn engine_runs_concurrently() {
    let engine = std::sync::Arc::new(Engine::new());
    let handles: Vec<_> = ["VGGNet", "ResNet", "GoogLeNet"]
        .into_iter()
        .map(|net| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                engine
                    .run_network(net, TransferScheme::Scnn)
                    .unwrap()
                    .conv_speedup
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap() > 1.0);
    }
}

/// Extreme (saturating) weights and inputs never panic the datapath, and
/// the TFE's saturating accumulators match the oracle's — saturation is
/// part of the golden semantics, not an afterthought.
#[test]
fn saturating_inputs_match_oracle() {
    use tfe::tensor::conv::conv2d_fx;
    let shape = LayerShape::conv("sat", 2, 8, 8, 8, 3, 1, 1).unwrap();
    // All-maximum weights and inputs overflow a 3x3x2 window's Q16.16 sum.
    let layer = TransferredLayer::random(&shape, TransferScheme::Scnn, || 127.0).unwrap();
    let input = Tensor4::filled([1, 2, 8, 8], Fx16::MAX);
    let got = run_layer(&input, &layer, &shape, ReuseConfig::FULL).unwrap();
    let dense = layer.expand_to_dense().unwrap().map(Fx16::from_f32);
    let oracle = conv2d_fx(&input, &dense, &shape).unwrap();
    assert_eq!(got.output, oracle);
}

/// Reuse order matters: reading a recycled ERRR row is a scheduling bug
/// and surfaces as `None`, never as stale data.
#[test]
fn row_ring_misuse_is_detected() {
    let mut ring = RowRing::new(2);
    let mut counters = Counters::new();
    for i in 0..4usize {
        ring.insert(i, vec![vec![vec![Accum::ZERO; 4]]], &mut counters);
    }
    assert!(ring.read(0, 0, 0, &mut counters).is_none());
    assert!(ring.read(1, 0, 0, &mut counters).is_none());
    assert!(ring.read(3, 0, 0, &mut counters).is_some());
}

/// A zero input produces a zero ofmap with zero-valued (but fully
/// counted) work — the clock-gating case.
#[test]
fn zero_input_produces_zero_output() {
    let shape = LayerShape::conv("z", 1, 8, 6, 6, 3, 1, 1).unwrap();
    let mut seed = 5u32;
    let layer = TransferredLayer::random(&shape, TransferScheme::DCNN4, || {
        seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
        ((seed >> 16) as f32 / 65536.0) - 0.5
    })
    .unwrap();
    let input = Tensor4::filled([1, 1, 6, 6], Fx16::ZERO);
    let out = run_layer(&input, &layer, &shape, ReuseConfig::FULL).unwrap();
    assert!(out.output.as_slice().iter().all(|&a| a == Accum::ZERO));
    assert!(
        out.counters.multiplies > 0,
        "broadcast still walks the rows"
    );
}

/// Degenerate geometry: a 1x1 ifmap with a 1x1 filter — the smallest
/// legal layer — round-trips every path.
#[test]
fn smallest_legal_layer() {
    let shape = LayerShape::conv("tiny", 1, 1, 1, 1, 1, 1, 0).unwrap();
    let weights = Tensor4::filled([1, 1, 1, 1], 0.5f32);
    let layer = TransferredLayer::Dense { weights };
    let input = Tensor4::filled([1, 1, 1, 1], Fx16::from_f32(2.0));
    let out = run_layer(&input, &layer, &shape, ReuseConfig::FULL).unwrap();
    assert_eq!(out.output.get([0, 0, 0, 0]).to_f32(), 1.0);
}
