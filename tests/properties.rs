//! Property-based tests (proptest) over the core data structures and
//! invariants: the D4 group, fixed-point arithmetic, meta-filter
//! extraction, orbit expansion, and the analysis formulas.

use proptest::prelude::*;
use tfe::tensor::fixed::{Accum, Fx16};
use tfe::tensor::shape::LayerShape;
use tfe::transfer::analysis;
use tfe::transfer::d4::{transform_grid, D4};
use tfe::transfer::meta::MetaFilter;
use tfe::transfer::scnn::ScnnGroup;

fn arb_d4() -> impl Strategy<Value = D4> {
    prop::sample::select(D4::ALL.to_vec())
}

proptest! {
    /// Applying any D4 element and then its inverse restores every grid.
    #[test]
    fn d4_inverse_restores_grid(
        g in arb_d4(),
        grid in prop::collection::vec(-100i32..100, 9),
    ) {
        let transformed = transform_grid(&grid, 3, g);
        let restored = transform_grid(&transformed, 3, g.inverse());
        prop_assert_eq!(restored, grid);
    }

    /// Composition in the group matches sequential application on grids
    /// of any extent.
    #[test]
    fn d4_composition_is_action_composition(
        a in arb_d4(),
        b in arb_d4(),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let grid: Vec<i64> = (0..k * k).map(|i| (seed as i64 * 31 + i as i64 * 7) % 101).collect();
        let composed = transform_grid(&grid, k, a.then(b));
        let sequential = transform_grid(&transform_grid(&grid, k, a), k, b);
        prop_assert_eq!(composed, sequential);
    }

    /// Fx16 round-trips through f32 exactly.
    #[test]
    fn fx16_f32_round_trip(bits in any::<i16>()) {
        let x = Fx16::from_bits(bits);
        prop_assert_eq!(Fx16::from_f32(x.to_f32()), x);
    }

    /// Widening multiplication is exact in the integer (bit) domain:
    /// Q8.8 × Q8.8 = Q16.16 with no rounding.
    #[test]
    fn widening_mul_is_exact(a in any::<i16>(), b in any::<i16>()) {
        let x = Fx16::from_bits(a);
        let y = Fx16::from_bits(b);
        prop_assert_eq!(x.widening_mul(y).to_bits(), i32::from(a) * i32::from(b));
    }

    /// Accumulator addition is associative and commutative on in-range
    /// values (no saturation regime).
    #[test]
    fn accum_addition_commutes(a in -100_000i32..100_000, b in -100_000i32..100_000) {
        let (x, y) = (Accum::from_bits(a), Accum::from_bits(b));
        prop_assert_eq!(x + y, y + x);
    }

    /// Every transferred filter extracted from a meta filter is a
    /// contiguous window: adjacent extraction offsets share all but one
    /// column of weights.
    #[test]
    fn meta_extraction_sharing(
        z in 4usize..8,
        seed in 0u32..500,
    ) {
        let k = 3;
        let meta = MetaFilter::from_fn(1, z, |_, y, x| (seed as f32) + (y * z + x) as f32);
        for dx in 0..z - k {
            let a = meta.extract(k, 0, dx).unwrap();
            let b = meta.extract(k, 0, dx + 1).unwrap();
            for y in 0..k {
                for x in 0..k - 1 {
                    prop_assert_eq!(a[y * k + x + 1], b[y * k + x]);
                }
            }
        }
    }

    /// Meta expansion always yields (Z-K+1)^2 filters of K^2 weights and
    /// round-trips through extraction.
    #[test]
    fn meta_expand_shape(z in 3usize..9, k in 2usize..6, seed in 0u32..100) {
        prop_assume!(k <= z);
        let meta = MetaFilter::from_fn(2, z, |c, y, x| (c + y + x + seed as usize) as f32);
        let bank = meta.expand(k).unwrap();
        let per_axis = z - k + 1;
        prop_assert_eq!(bank.dims(), [per_axis * per_axis, 2, k, k]);
        // Filter 0 equals extraction at (0, 0).
        let direct = meta.extract(k, 0, 0).unwrap();
        for (i, &v) in direct.iter().enumerate() {
            let c = i / (k * k);
            let y = (i % (k * k)) / k;
            let x = i % k;
            prop_assert_eq!(bank.get([0, c, y, x]), v);
        }
    }

    /// SCNN orbits: every orientation has the same multiset of weights as
    /// its base (transformations permute, never change, values).
    #[test]
    fn orbit_members_are_permutations(seed in 0u32..500) {
        let base: Vec<f32> = (0..9).map(|i| ((seed + i) % 17) as f32).collect();
        let group = ScnnGroup::from_base(1, 3, base.clone()).unwrap();
        let mut sorted_base = base;
        sorted_base.sort_by(f32::total_cmp);
        for oi in 0..4 {
            // First four orientations derive from base 0.
            let mut member = group.orient(oi);
            member.sort_by(f32::total_cmp);
            prop_assert_eq!(&member, &sorted_base);
        }
    }

    /// Eq. 4/5: the reduction formula is symmetric in its two factors and
    /// bounded by K^2 (the reduction can never beat one-weight-per-filter).
    #[test]
    fn analysis_reduction_bounds(z in 2usize..10, k in 2usize..10) {
        prop_assume!(k <= z);
        let red = analysis::dcnn_param_reduction(z, k);
        prop_assert!(red >= 1.0 - 1e-12);
        prop_assert!(red <= (k * k) as f64);
    }

    /// Analysis MAC formulas: full reuse never does worse than partial
    /// reuse, which never does worse than none.
    #[test]
    fn reuse_monotonicity(
        n in 1usize..4,
        m in 1usize..5,
        hw in 6usize..16,
    ) {
        use tfe::transfer::analysis::ReuseConfig;
        let shape = LayerShape::conv("p", n, m * 8, hw, hw, 3, 1, 1).unwrap();
        for scheme in [
            tfe::transfer::TransferScheme::DCNN4,
            tfe::transfer::TransferScheme::DCNN6,
            tfe::transfer::TransferScheme::Scnn,
        ] {
            let full = analysis::scheme_macs(&shape, scheme, ReuseConfig::FULL);
            let ppsr = analysis::scheme_macs(&shape, scheme, ReuseConfig::PPSR_ONLY);
            let none = analysis::scheme_macs(&shape, scheme, ReuseConfig::NONE);
            prop_assert!(full <= ppsr);
            prop_assert!(ppsr <= none);
            prop_assert_eq!(none, shape.macs());
        }
    }

    /// Layer shapes: derived output extents are consistent with the MAC
    /// and parameter formulas for arbitrary valid configurations.
    #[test]
    fn layer_shape_invariants(
        n in 1usize..8,
        m in 1usize..8,
        hw in 3usize..32,
        k in 1usize..6,
        stride in 1usize..3,
        pad in 0usize..3,
    ) {
        prop_assume!(k <= hw + 2 * pad);
        let shape = LayerShape::conv("p", n, m, hw, hw, k, stride, pad).unwrap();
        prop_assert!(shape.e() >= 1);
        prop_assert_eq!(
            shape.macs(),
            shape.e() as u64 * shape.f() as u64 * shape.params()
        );
    }
}

mod pipeline_props {
    use proptest::prelude::*;
    use tfe::sim::ppsr::{row_correlate, row_correlate_rev};
    use tfe::sim::sr_pipeline::{DcnnRowPipeline, ScnnRowPipeline};
    use tfe::tensor::fixed::Fx16;

    fn fx_vec(len: usize, seed: u64) -> Vec<Fx16> {
        (0..len)
            .map(|i| {
                let v = ((seed as i64 * 31 + i as i64 * 17) % 33 - 16) as f32 / 4.0;
                Fx16::from_f32(v)
            })
            .collect()
    }

    proptest! {
        /// The cycle-stepped DCNN pipeline emits exactly the row engine's
        /// results for arbitrary Z, K and row lengths.
        #[test]
        fn dcnn_pipeline_equals_row_engine(
            z in 2usize..8,
            k in 2usize..8,
            extra in 0usize..12,
            seed in 0u64..500,
        ) {
            prop_assume!(k <= z);
            let meta = fx_vec(z, seed);
            let input = fx_vec(k + extra, seed.wrapping_add(1));
            let (results, cycles) = DcnnRowPipeline::run_row(&meta, &input, k);
            prop_assert_eq!(cycles, input.len() as u64);
            for (dx, result) in results.iter().enumerate() {
                let expected = row_correlate(&meta[dx..dx + k], &input);
                prop_assert_eq!(result, &expected, "dx={}", dx);
            }
        }

        /// The SCNN pipeline's two directions equal forward and mirrored
        /// correlation for arbitrary K.
        #[test]
        fn scnn_pipeline_equals_both_correlations(
            k in 1usize..8,
            extra in 0usize..12,
            seed in 0u64..500,
        ) {
            let base = fx_vec(k, seed);
            let input = fx_vec(k + extra, seed.wrapping_add(7));
            let (fwd, rev, _) = ScnnRowPipeline::run_row(&base, &input);
            prop_assert_eq!(fwd, row_correlate(&base, &input));
            prop_assert_eq!(rev, row_correlate_rev(&base, &input));
        }
    }
}

mod datapath_props {
    use proptest::prelude::*;
    use tfe::sim::functional::run_layer;
    use tfe::tensor::conv::conv2d_fx;
    use tfe::tensor::fixed::Fx16;
    use tfe::tensor::shape::LayerShape;
    use tfe::tensor::tensor::Tensor4;
    use tfe::transfer::analysis::ReuseConfig;
    use tfe::transfer::layer::TransferredLayer;
    use tfe::transfer::TransferScheme;

    fn det(seed: &mut u32) -> f32 {
        *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
        (((*seed >> 20) & 0xf) as f32 - 7.5) / 4.0
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The full functional datapath is bit-exact against the oracle
        /// for randomized geometry, scheme, stride and reuse config.
        #[test]
        fn functional_datapath_is_bit_exact(
            n in 1usize..3,
            groups in 1usize..3,
            hw in 7usize..11,
            pad in 0usize..2,
            stride in 1usize..3,
            scheme_pick in 0usize..3,
            ppsr in any::<bool>(),
            errr in any::<bool>(),
            seed in 1u32..10_000,
        ) {
            let (scheme, m) = match scheme_pick {
                0 => (TransferScheme::DCNN4, groups * 4),
                1 => (TransferScheme::DCNN6, groups * 16),
                _ => (TransferScheme::Scnn, groups * 8),
            };
            let shape = LayerShape::conv("p", n, m, hw, hw, 3, stride, pad).unwrap();
            let mut wseed = seed;
            let layer = TransferredLayer::random(&shape, scheme, || det(&mut wseed)).unwrap();
            let mut iseed = seed.wrapping_mul(7).wrapping_add(3);
            let input = Tensor4::from_fn([1, n, hw, hw], |_| Fx16::from_f32(det(&mut iseed)));
            let reuse = ReuseConfig { ppsr, errr };
            let got = run_layer(&input, &layer, &shape, reuse).unwrap();
            let dense = layer.expand_to_dense().unwrap().map(Fx16::from_f32);
            let oracle = conv2d_fx(&input, &dense, &shape).unwrap();
            prop_assert_eq!(got.output, oracle);
        }
    }
}

mod counter_props {
    use proptest::prelude::*;
    use tfe::sim::counters::Counters;

    /// Builds a counter set from eleven field values, in declaration
    /// order, so the algebraic properties below are checked field by
    /// field rather than through any aggregate.
    fn counters_from(v: &[u64; 11]) -> Counters {
        Counters {
            dense_macs: v[0],
            multiplies: v[1],
            adds: v[2],
            sr_reads: v[3],
            sr_writes: v[4],
            psum_mem_reads: v[5],
            psum_mem_writes: v[6],
            input_mem_reads: v[7],
            weight_reads: v[8],
            dram_bits: v[9],
            cycles: v[10],
        }
    }

    /// Derives eleven independent field values from one seed
    /// (splitmix64-style), each bounded below `u32::MAX` so triple sums
    /// cannot overflow `u64`.
    fn derive_counters(seed: u64) -> Counters {
        let mut state = seed;
        let mut fields = [0u64; 11];
        for slot in &mut fields {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = (z ^ (z >> 31)) % u64::from(u32::MAX);
        }
        counters_from(&fields)
    }

    proptest! {
        /// `merge` is associative: merging (a+b)+c and a+(b+c) agree on
        /// every field, so batch engines may combine per-image counters
        /// in any grouping (they still do so in input order for clarity).
        #[test]
        fn merge_is_associative(
            a_seed in any::<u64>(),
            b_seed in any::<u64>(),
            c_seed in any::<u64>(),
        ) {
            let (a, b, c) = (
                derive_counters(a_seed),
                derive_counters(b_seed),
                derive_counters(c_seed),
            );
            let mut left = a;
            left.merge(&b);
            left.merge(&c);
            let mut bc = b;
            bc.merge(&c);
            let mut right = a;
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        /// `merge` is commutative: a+b == b+a on every field.
        #[test]
        fn merge_is_commutative(a_seed in any::<u64>(), b_seed in any::<u64>()) {
            let (a, b) = (derive_counters(a_seed), derive_counters(b_seed));
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        /// `merge` agrees with the `Add`/`Sum` implementations and has
        /// the zeroed counter set as identity.
        #[test]
        fn merge_matches_add_and_has_identity(a_seed in any::<u64>(), b_seed in any::<u64>()) {
            let (a, b) = (derive_counters(a_seed), derive_counters(b_seed));
            let mut merged = a;
            merged.merge(&b);
            prop_assert_eq!(merged, a + b);
            let summed: Counters = [a, b].into_iter().sum();
            prop_assert_eq!(merged, summed);
            let mut with_zero = a;
            with_zero.merge(&Counters::new());
            prop_assert_eq!(with_zero, a);
        }
    }
}
