//! Fleet-tier smoke tests: the multi-model router in `tfe::fleet` must
//! be invisible to callers — every routed response is bit-identical to a
//! direct `Engine::run` on the model's own compiled engine — while
//! unknown models are rejected with a typed error, engine hot-swaps
//! drop nothing in flight, and the merged fleet telemetry sums exactly
//! to its per-shard parts.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tfe::fleet::{demo, Fleet, FleetSpec, ModelSpec};
use tfe::serve::demo::{demo_images, demo_network};
use tfe::serve::protocol::{roundtrip, WireRequest, WireResponse};
use tfe::serve::{Rejected, ServeConfig, TcpServer};
use tfe::sim::counters::Counters;
use tfe::sim::engine::{Engine, Scratch};
use tfe::sim::network::{FunctionalNetwork, NetworkOutput};
use tfe::tensor::fixed::Fx16;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::ReuseConfig;

/// Mixed-model traffic includes the depthwise-separable
/// `mobilenet-mini` miniature, so the fleet path exercises grouped
/// dense stages alongside transferred ones.
const MODELS: [&str; 4] = ["demo", "alexnet", "mobilenet-mini", "resnet56"];

/// Direct `Engine::run` reference outputs for a set of images.
fn reference_outputs(net: &FunctionalNetwork, images: &[Tensor4<Fx16>]) -> Vec<NetworkOutput> {
    let engine = Engine::compile(net, ReuseConfig::FULL).expect("reference compile");
    let mut scratch = Scratch::new();
    images
        .iter()
        .map(|image| engine.run(image, &mut scratch).expect("reference run"))
        .collect()
}

/// N models served concurrently through one router: every response is
/// bit-identical to a direct `Engine::run` on that model's network, and
/// the merged fleet snapshot accounts for every request.
#[test]
fn concurrent_multi_model_dispatch_is_bit_identical() {
    let spec = demo::demo_fleet(&MODELS, 11).unwrap();
    let images = demo_images(6, 0xbeef);
    let expected: Vec<Vec<NetworkOutput>> = spec
        .models
        .iter()
        .map(|m| reference_outputs(&m.network, &images))
        .collect();
    let images = Arc::new(images);

    let fleet = Fleet::start(spec).unwrap();
    let client = fleet.client();

    let mut workers = Vec::new();
    for (model, id) in MODELS.iter().enumerate() {
        for worker in 0..2 {
            let client = client.clone();
            let images = Arc::clone(&images);
            let expected: Vec<NetworkOutput> = expected[model].clone();
            workers.push(std::thread::spawn(move || {
                for round in 0..4 {
                    let idx = (worker * 4 + round) % images.len();
                    let reply = client
                        .infer(Some(id), images[idx].clone())
                        .expect("routed inference");
                    assert_eq!(reply.activations, expected[idx].activations, "{id}");
                    assert_eq!(reply.counters, expected[idx].counters, "{id}");
                }
            }));
        }
    }
    for worker in workers {
        worker.join().expect("fleet worker");
    }

    // A request with no model id runs the default (first) model.
    let reply = client
        .infer(None, images[0].clone())
        .expect("default model");
    assert_eq!(reply.activations, expected[0][0].activations);

    let snapshot = fleet.shutdown();
    assert_eq!(snapshot.completed, 33);
    assert_eq!(snapshot.shed + snapshot.failed + snapshot.expired, 0);
    assert_eq!(snapshot.models.len(), 4);
    for (model, id) in MODELS.iter().enumerate() {
        let row = &snapshot.models[model];
        assert_eq!(row.model, *id);
        assert_eq!(row.completed, if model == 0 { 9 } else { 8 });
        assert_eq!(row.shed, 0);
    }
}

/// Unknown model ids are a typed rejection, both in-process and over
/// TCP, and the router counts them.
#[test]
fn unknown_model_is_a_typed_rejection() {
    let fleet = Fleet::start(demo::demo_fleet(&["demo"], 3).unwrap()).unwrap();
    let client = fleet.client();
    let image = demo_images(1, 5).remove(0);

    match client.infer(Some("efficientnet"), image.clone()) {
        Err(Rejected::UnknownModel { model }) => assert_eq!(model, "efficientnet"),
        other => panic!("expected UnknownModel, got {other:?}"),
    }

    let server = TcpServer::bind("127.0.0.1:0", client.clone()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let request = WireRequest::Infer {
        input: image.clone(),
        deadline_ms: None,
        model_id: Some("efficientnet".to_owned()),
    };
    match roundtrip(&mut stream, &request).expect("roundtrip") {
        WireResponse::Rejected { reason } => assert_eq!(reason, "unknown_model"),
        other => panic!("expected Rejected, got {other:?}"),
    }
    drop(stream);
    server.shutdown();

    // Served requests still work, and the snapshot counted the misses.
    client.infer(Some("demo"), image).expect("served model");
    let snapshot = fleet.shutdown();
    assert_eq!(snapshot.unknown_models, 2);
    assert_eq!(snapshot.completed, 1);
    assert_eq!(snapshot.to_metrics().rejected, 2);
}

/// Hot-swap under live load: zero admitted requests are dropped, every
/// response is bit-identical to one of the two generations' engines
/// (each request runs entirely on the engine that admitted it), and
/// after the drain the new engine serves new weights.
#[test]
fn hot_swap_drops_nothing_and_stays_bit_identical() {
    let old_net = demo_network(21);
    let new_net = demo_network(22);
    let images = demo_images(4, 0xfade);
    let old_expected = reference_outputs(&old_net, &images);
    let new_expected = reference_outputs(&new_net, &images);
    // The swap must be observable: different seeds, different outputs.
    assert_ne!(old_expected[0].activations, new_expected[0].activations);

    let spec = FleetSpec::new(vec![ModelSpec::new("demo", old_net).with_serve(
        ServeConfig {
            max_batch_size: 2,
            max_batch_delay: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    )]);
    let fleet = Fleet::start(spec).unwrap();
    let client = fleet.client();

    // Background submitters keep load on the shard across the swap.
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for worker in 0..3 {
        let client = client.clone();
        let stop = Arc::clone(&stop);
        let images = images.clone();
        let old_expected = old_expected.clone();
        let new_expected = new_expected.clone();
        workers.push(std::thread::spawn(move || {
            let mut submitted = 0u64;
            let mut completed = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let idx = (worker + completed as usize) % images.len();
                match client.submit(Some("demo"), images[idx].clone(), None) {
                    Ok(ticket) => {
                        submitted += 1;
                        let reply = ticket
                            .wait()
                            .expect("an admitted request must complete across the swap boundary");
                        // Bit-identical to exactly one generation.
                        let old_ok = reply.activations == old_expected[idx].activations;
                        let new_ok = reply.activations == new_expected[idx].activations;
                        assert!(old_ok || new_ok, "output from neither generation");
                        completed += 1;
                    }
                    Err(Rejected::QueueFull { .. }) => {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    Err(other) => panic!("unexpected rejection under swap: {other}"),
                }
            }
            (submitted, completed)
        }));
    }

    // Let traffic build, swap mid-load, then keep serving on the new
    // generation before stopping the submitters.
    std::thread::sleep(Duration::from_millis(30));
    fleet.hot_swap("demo", &new_net).unwrap();
    std::thread::sleep(Duration::from_millis(30));

    stop.store(true, Ordering::SeqCst);
    let mut submitted = 0u64;
    let mut completed = 0u64;
    for worker in workers {
        let (s, c) = worker.join().expect("swap worker");
        submitted += s;
        completed += c;
    }
    // Zero dropped in-flight: everything admitted resolved Ok.
    assert_eq!(submitted, completed);
    assert!(
        completed > 0,
        "the load phase must have exercised the shard"
    );

    // After the drain, the new generation serves the new weights.
    let reply = client
        .infer(Some("demo"), images[0].clone())
        .expect("post-swap");
    assert_eq!(reply.activations, new_expected[0].activations);
    assert_eq!(reply.counters, new_expected[0].counters);

    let snapshot = fleet.shutdown();
    assert_eq!(snapshot.swaps, 1);
    assert_eq!(snapshot.completed, completed + 1);
    assert_eq!(snapshot.models[0].swaps, 1);
    // The retired generation's history survives the swap in the row.
    assert_eq!(snapshot.models[0].completed, completed + 1);
}

/// The TCP front-end routes by the protocol-v2 `model` field, and the
/// stats response carries per-model rows whose per-layer counters sum
/// exactly to the fleet totals.
#[test]
fn tcp_mixed_model_traffic_and_fleet_stats() {
    let spec = demo::demo_fleet(&MODELS, 7).unwrap();
    let images = demo_images(3, 0x7cb);
    let expected: Vec<Vec<NetworkOutput>> = spec
        .models
        .iter()
        .map(|m| reference_outputs(&m.network, &images))
        .collect();

    let fleet = Fleet::start(spec).unwrap();
    let server = TcpServer::bind("127.0.0.1:0", fleet.client()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    for round in 0..6 {
        let model = round % MODELS.len();
        let idx = round % images.len();
        let request = WireRequest::Infer {
            input: images[idx].clone(),
            deadline_ms: None,
            model_id: Some(MODELS[model].to_owned()),
        };
        match roundtrip(&mut stream, &request).expect("roundtrip") {
            WireResponse::Ok {
                activations,
                counters,
                ..
            } => {
                assert_eq!(activations, expected[model][idx].activations);
                assert_eq!(counters, expected[model][idx].counters);
            }
            other => panic!("expected Ok, got {other:?}"),
        }
    }
    // A v1-style frame (no model field) runs the default model.
    let request = WireRequest::Infer {
        input: images[0].clone(),
        deadline_ms: None,
        model_id: None,
    };
    match roundtrip(&mut stream, &request).expect("v1 roundtrip") {
        WireResponse::Ok { activations, .. } => {
            assert_eq!(activations, expected[0][0].activations);
        }
        other => panic!("expected Ok, got {other:?}"),
    }

    match roundtrip(&mut stream, &WireRequest::Stats).expect("stats roundtrip") {
        WireResponse::Stats {
            metrics,
            telemetry,
            models,
        } => {
            let rows = models.expect("fleet endpoints report per-model rows");
            assert_eq!(rows.len(), 4);
            assert_eq!(metrics.completed, 7);

            // Per-model per-layer counters sum exactly to the model's
            // total, and the models' totals sum exactly to the fleet's.
            let mut fleet_sum = Counters::default();
            for row in &rows {
                // The separable miniature has three stages; the rest two.
                let stages = if row.model == "mobilenet-mini" { 3 } else { 2 };
                assert_eq!(row.telemetry.layers.len(), stages, "{}", row.model);
                let mut layer_sum = Counters::default();
                for layer in &row.telemetry.layers {
                    assert!(layer.counters.multiplies > 0);
                    layer_sum.merge(&layer.counters);
                }
                assert_eq!(layer_sum, row.telemetry.total, "{}", row.model);
                fleet_sum.merge(&row.telemetry.total);
            }
            assert_eq!(fleet_sum, telemetry.total);
            assert_eq!(fleet_sum, metrics.counters);
            assert!(
                telemetry.layers.is_empty(),
                "fleet-wide view is totals-only"
            );
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    drop(stream);

    server.shutdown();
    let snapshot = fleet.shutdown();
    assert_eq!(snapshot.completed, 7);
}

/// The merged fleet telemetry equals per-shard telemetry collected
/// independently: per-layer runs track per-model completions exactly.
#[test]
fn merged_fleet_telemetry_sums_exactly() {
    let fleet = Fleet::start(demo::demo_fleet(&MODELS, 5).unwrap()).unwrap();
    let client = fleet.client();
    let images = demo_images(2, 0xace);

    // Uneven traffic: model i gets (i + 1) * 2 requests.
    for (model, id) in MODELS.iter().enumerate() {
        for round in 0..(model + 1) * 2 {
            client
                .infer(Some(id), images[round % images.len()].clone())
                .expect("inference");
        }
    }

    let snapshot = fleet.shutdown();
    for (model, row) in snapshot.models.iter().enumerate() {
        let runs = ((model + 1) * 2) as u64;
        assert_eq!(row.completed, runs, "{}", row.model);
        for layer in &row.telemetry.layers {
            assert_eq!(layer.runs, runs, "{}/{}", row.model, layer.label);
        }
        // recorded = one sample per stage per request, nothing dropped.
        assert_eq!(
            row.telemetry.recorded,
            runs * row.telemetry.layers.len() as u64,
            "{}",
            row.model
        );
        assert_eq!(row.telemetry.dropped, 0);
    }
    let fleet_telemetry = snapshot.to_telemetry();
    // demo/alexnet/resnet56 have two stages, mobilenet-mini three:
    // 2*2 + 4*2 + 6*3 + 8*2 samples.
    assert_eq!(fleet_telemetry.recorded, 2 * 2 + 4 * 2 + 6 * 3 + 8 * 2);
    assert_eq!(snapshot.completed, 2 + 4 + 6 + 8);
}
