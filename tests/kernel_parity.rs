//! Kernel-level parity: the monomorphized row kernels
//! (`engine/kernels.rs`, selected per `K` at engine-compile time) must
//! be bit-identical — activations AND counters — to the frozen scalar
//! reference (`ppsr::*_acc_scalar`, the pre-monomorphization
//! `correlate_at` loops) on every scheme, every `K` (specialized and
//! generic), and every geometry, including the edges: `K = 1`, inputs
//! narrower than `K`, and non-zero starting accumulators.
//!
//! Saturating `Accum` addition is not associative (three Q8.8 extreme
//! products overflow `i32` mid-correlation), so identity here proves the
//! kernels reproduce the reference's exact addition order, not merely
//! the same mathematical sum. The engine-level sweep at the bottom
//! drives the kernels through `run_layer` across scheme × stride × pad
//! (including stride 2 with odd widths) against the dense-expansion
//! oracle.

use proptest::prelude::*;
use tfe::sim::counters::Counters;
use tfe::sim::functional::run_layer;
use tfe::sim::ppsr::{
    conventional_row_pass_acc, conventional_row_pass_acc_scalar, dcnn_row_pass_acc,
    dcnn_row_pass_acc_scalar, scnn_row_pass_acc, scnn_row_pass_acc_scalar,
};
use tfe::tensor::conv::conv2d_fx;
use tfe::tensor::fixed::{Accum, Fx16};
use tfe::tensor::shape::LayerShape;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::ReuseConfig;
use tfe::transfer::layer::TransferredLayer;
use tfe::transfer::TransferScheme;

fn fx(bits: &[i16]) -> Vec<Fx16> {
    bits.iter().map(|&b| Fx16::from_bits(b)).collect()
}

fn acc(bits: &[i32]) -> Vec<Accum> {
    bits.iter().map(|&b| Accum::from_bits(b)).collect()
}

/// Samples drawn only from the extremes whose products overflow `i32`
/// after three terms — the saturation regime where addition order is
/// observable bit-wise.
fn extreme_bits(seed: u64, len: usize) -> Vec<i16> {
    const POOL: [i16; 5] = [i16::MIN, i16::MAX, 0, 1, -1];
    bits16(seed, len)
        .into_iter()
        .map(|b| POOL[(b as u16 as usize) % POOL.len()])
        .collect()
}

const ALL_REUSE: [ReuseConfig; 4] = [
    ReuseConfig::NONE,
    ReuseConfig::PPSR_ONLY,
    ReuseConfig::ERRR_ONLY,
    ReuseConfig::FULL,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conventional (dense) row pass: fast == scalar, values and
    /// counters, for specialized and generic `K` and inputs from empty
    /// to narrower-than-K to long.
    #[test]
    fn conventional_kernel_matches_scalar(
        k in 1usize..10,
        in_len in 0usize..64,
        seed_w in 0u64..u64::MAX,
        seed_i in 0u64..u64::MAX,
        seed_a in 0u64..u64::MAX,
    ) {
        let weights = fx(&bits16(seed_w, k));
        let input = fx(&bits16(seed_i, in_len));
        let out_len = (in_len + 1).saturating_sub(k);
        // One slot beyond out_len proves the tail stays untouched.
        let base = acc(&bits32(seed_a, out_len + 1));

        let mut fast = base.clone();
        let mut slow = base;
        let mut cf = Counters::new();
        let mut cs = Counters::new();
        conventional_row_pass_acc(&weights, &input, &mut fast, &mut cf);
        conventional_row_pass_acc_scalar(&weights, &input, &mut slow, &mut cs);
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(cf, cs);
    }

    /// DCNN meta-row pass: every offset lane bit-identical under both
    /// counter conventions (PPSR on and off).
    #[test]
    fn dcnn_kernel_matches_scalar(
        k in 1usize..8,
        extra in 0usize..5,
        in_len in 0usize..48,
        ppsr in any::<bool>(),
        seed_w in 0u64..u64::MAX,
        seed_i in 0u64..u64::MAX,
        seed_a in 0u64..u64::MAX,
    ) {
        let z = k + extra;
        let meta_row = fx(&bits16(seed_w, z));
        let input = fx(&bits16(seed_i, in_len));
        let offsets = z - k + 1;
        let out_len = (in_len + 1).saturating_sub(k);
        let base: Vec<Vec<Accum>> = (0..offsets)
            .map(|dx| acc(&bits32(seed_a.wrapping_add(dx as u64), out_len + 1)))
            .collect();

        let mut fast = base.clone();
        let mut slow = base;
        let mut cf = Counters::new();
        let mut cs = Counters::new();
        dcnn_row_pass_acc(&meta_row, &input, k, ppsr, &mut fast, &mut cf);
        dcnn_row_pass_acc_scalar(&meta_row, &input, k, ppsr, &mut slow, &mut cs);
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(cf, cs);
    }

    /// SCNN base-row pass: forward and (with PPSR) mirrored streams
    /// bit-identical, counters included.
    #[test]
    fn scnn_kernel_matches_scalar(
        k in 1usize..10,
        in_len in 0usize..64,
        ppsr in any::<bool>(),
        seed_w in 0u64..u64::MAX,
        seed_i in 0u64..u64::MAX,
        seed_a in 0u64..u64::MAX,
    ) {
        let base_row = fx(&bits16(seed_w, k));
        let input = fx(&bits16(seed_i, in_len));
        let out_len = (in_len + 1).saturating_sub(k);
        let fwd0 = acc(&bits32(seed_a, out_len + 1));
        let rev0 = acc(&bits32(seed_a ^ 0xabcd, out_len + 1));

        let (mut ff, mut fr) = (fwd0.clone(), rev0.clone());
        let (mut sf, mut sr) = (fwd0, rev0);
        let mut cf = Counters::new();
        let mut cs = Counters::new();
        scnn_row_pass_acc(
            &base_row, &input, ppsr, &mut ff,
            ppsr.then_some(fr.as_mut_slice()), &mut cf,
        );
        scnn_row_pass_acc_scalar(
            &base_row, &input, ppsr, &mut sf,
            ppsr.then_some(sr.as_mut_slice()), &mut cs,
        );
        prop_assert_eq!(ff, sf);
        prop_assert_eq!(fr, sr);
        prop_assert_eq!(cf, cs);
    }

    /// Saturation ordering: rows drawn entirely from the extremes force
    /// mid-correlation clamping, where any reordering of the saturating
    /// sums diverges bit-wise.
    #[test]
    fn saturating_regime_stays_bit_identical(
        k in 1usize..10,
        in_len in 0usize..40,
        seed_w in 0u64..u64::MAX,
        seed_i in 0u64..u64::MAX,
    ) {
        let weights = fx(&extreme_bits(seed_w, k));
        let input = fx(&extreme_bits(seed_i, in_len));
        let out_len = (in_len + 1).saturating_sub(k);
        let base = vec![Accum::ZERO; out_len];

        let mut fast = base.clone();
        let mut slow = base;
        let mut cf = Counters::new();
        let mut cs = Counters::new();
        conventional_row_pass_acc(&weights, &input, &mut fast, &mut cf);
        conventional_row_pass_acc_scalar(&weights, &input, &mut slow, &mut cs);
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(cf, cs);
    }
}

/// SplitMix64-style deterministic bit streams for the seeded cases.
fn bits16(mut seed: u64, len: usize) -> Vec<i16> {
    (0..len)
        .map(|_| {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as i16
        })
        .collect()
}

fn bits32(seed: u64, len: usize) -> Vec<i32> {
    bits16(seed, 2 * len)
        .chunks(2)
        .map(|p| (i32::from(p[0]) << 16) | (i32::from(p[1]) as u16 as i32))
        .collect()
}

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    // Quarter-unit steps are exactly representable in Q8.8, so the
    // datapath and the oracle see identical weights.
    (((*seed >> 20) & 0xf) as f32 - 7.5) / 4.0
}

/// Engine-level sweep: the kernels as `run_layer` actually drives them,
/// across scheme × stride × pad (stride 2 with odd widths included),
/// pinned bit-exactly to the dense-expansion oracle under every reuse
/// ablation.
#[test]
fn engine_kernels_match_oracle_across_stride_and_pad() {
    let mut seed = 0x5eed_u32;
    for (scheme, m) in [
        (TransferScheme::DCNN4, 4usize),
        (TransferScheme::Dcnn { z: 6 }, 16),
        (TransferScheme::Scnn, 8),
    ] {
        for stride in [1usize, 2] {
            for pad in [0usize, 1] {
                // Odd input width so stride 2 emits a ragged last column.
                let shape = LayerShape::conv("kp", 2, m, 11, 11, 3, stride, pad).unwrap();
                let layer = TransferredLayer::random(&shape, scheme, || det(&mut seed)).unwrap();
                let input = Tensor4::from_fn([1, 2, 11, 11], |_| Fx16::from_f32(det(&mut seed)));
                let dense = layer.expand_to_dense().unwrap().map(Fx16::from_f32);
                let expected = conv2d_fx(&input, &dense, &shape).unwrap();
                for reuse in ALL_REUSE {
                    let got = run_layer(&input, &layer, &shape, reuse).unwrap();
                    assert_eq!(
                        got.output, expected,
                        "{scheme:?} stride {stride} pad {pad} {reuse:?}"
                    );
                }
            }
        }
    }
}

/// The `K = 1` specialization through a real engine pass (dense layer,
/// pointwise convolution).
#[test]
fn k1_dense_layer_matches_oracle() {
    let mut seed = 77u32;
    let shape = LayerShape::conv("k1", 3, 2, 7, 9, 1, 1, 0).unwrap();
    let weights = Tensor4::from_fn([2, 3, 1, 1], |_| det(&mut seed));
    let layer = TransferredLayer::Dense {
        weights: weights.clone(),
    };
    let input = Tensor4::from_fn([1, 3, 7, 9], |_| Fx16::from_f32(det(&mut seed)));
    let expected = conv2d_fx(&input, &weights.map(Fx16::from_f32), &shape).unwrap();
    let got = run_layer(&input, &layer, &shape, ReuseConfig::FULL).unwrap();
    assert_eq!(got.output, expected);
}

/// The K = 5 and K = 7 specializations through dense engine passes.
#[test]
fn wide_dense_kernels_match_oracle() {
    for k in [5usize, 7] {
        let mut seed = 1000 + k as u32;
        let shape = LayerShape::conv("wide", 1, 2, 13, 13, k, 2, 2).unwrap();
        let weights = Tensor4::from_fn([2, 1, k, k], |_| det(&mut seed));
        let layer = TransferredLayer::Dense {
            weights: weights.clone(),
        };
        let input = Tensor4::from_fn([1, 1, 13, 13], |_| Fx16::from_f32(det(&mut seed)));
        let expected = conv2d_fx(&input, &weights.map(Fx16::from_f32), &shape).unwrap();
        let got = run_layer(&input, &layer, &shape, ReuseConfig::FULL).unwrap();
        assert_eq!(got.output, expected, "K = {k}");
    }
}
