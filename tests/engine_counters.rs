//! Counter-accounting regressions for the compiled engine.
//!
//! Two accounting bugs are pinned here:
//!
//! 1. **Pooling-tail asymmetry.** The row-wise pooler stages horizontal
//!    reductions in `O_Memory` and charges `psum_mem_writes` for them;
//!    when the pool extent did not divide the ofmap, the staged tail was
//!    silently discarded without the matching `psum_mem_reads`.
//!    `Engine::compile` now rejects such geometry with a typed
//!    [`SimError::NonDivisiblePool`], and divisible geometry keeps the
//!    write/read counters symmetric.
//! 2. **Combine adds under stride.** The adder trees combine `K` window
//!    parts only at the `F` positions `emit_row` consumes, matching the
//!    analytic model's `out_elems · (K − 1)` term — the units used to
//!    charge over the full padded row width, overcounting whenever
//!    stride > 1.

use tfe::sim::engine::{Engine, Scratch};
use tfe::sim::network::{FunctionalNetwork, FunctionalStage};
use tfe::sim::output::OutputConfig;
use tfe::sim::SimError;
use tfe::tensor::fixed::Fx16;
use tfe::tensor::shape::LayerShape;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::ReuseConfig;
use tfe::transfer::layer::TransferredLayer;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

/// A one-stage dense (conventional) network over an `h × w` input with
/// the given stride and output configuration.
#[allow(clippy::too_many_arguments)]
fn dense_net(
    n: usize,
    m: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    output: OutputConfig,
    seed: u32,
) -> FunctionalNetwork {
    let mut s = seed;
    let shape = LayerShape::conv("dense", n, m, h, w, k, stride, 1).unwrap();
    let weights = Tensor4::from_fn([m, n, k, k], |_| det(&mut s));
    FunctionalNetwork::new(vec![FunctionalStage {
        shape,
        weights: TransferredLayer::Dense { weights },
        bias: vec![],
        output,
    }])
    .unwrap()
}

#[test]
fn compile_rejects_non_divisible_pool_rows() {
    // 7×7 input, K=3, pad 1 → 7×7 ofmap; a 2×2 pool leaves a tail row.
    let net = dense_net(2, 3, 7, 7, 3, 1, OutputConfig::RELU_POOL2, 11);
    let err = Engine::compile(&net, ReuseConfig::FULL).unwrap_err();
    assert_eq!(
        err,
        SimError::NonDivisiblePool {
            what: "ofmap rows",
            extent: 7,
            pool: 2,
        }
    );
}

#[test]
fn compile_rejects_non_divisible_pool_columns() {
    // 8×7 input, K=3, pad 1 → 8×7 ofmap: rows divide, columns do not.
    let net = dense_net(2, 3, 8, 7, 3, 1, OutputConfig::RELU_POOL2, 13);
    let err = Engine::compile(&net, ReuseConfig::FULL).unwrap_err();
    assert_eq!(
        err,
        SimError::NonDivisiblePool {
            what: "ofmap columns",
            extent: 7,
            pool: 2,
        }
    );
}

#[test]
fn compile_rejects_zero_pool_extent() {
    let net = dense_net(
        2,
        3,
        8,
        8,
        3,
        1,
        OutputConfig {
            relu: true,
            pool: Some(0),
        },
        17,
    );
    assert!(matches!(
        Engine::compile(&net, ReuseConfig::FULL),
        Err(SimError::InvalidConfig { .. })
    ));
}

#[test]
fn divisible_pool_keeps_psum_counters_symmetric() {
    // Dense units never touch the ERRR rings, so on this network the
    // only PSum-memory traffic is the pooler's O_Memory staging: every
    // staged word must be read back exactly once.
    let net = dense_net(2, 3, 8, 8, 3, 1, OutputConfig::RELU_POOL2, 19);
    let engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
    let mut seed = 101;
    let input = Tensor4::from_fn([1, 2, 8, 8], |_| Fx16::from_f32(det(&mut seed)));
    let mut scratch = Scratch::new();
    let out = engine.run(&input, &mut scratch).unwrap();
    assert!(out.counters.psum_mem_writes > 0);
    assert_eq!(out.counters.psum_mem_writes, out.counters.psum_mem_reads);
}

#[test]
fn combine_adds_are_charged_per_emitted_position_under_stride() {
    // Stride 2: the row passes still sweep the full padded width, but
    // the adder trees combine window parts only at the F emitted
    // positions — the same `out_elems · (K − 1)` term the analytic
    // model (`NetworkPerf`) charges. The old accounting used the padded
    // row width for the combine term, overcounting exactly when F <
    // full_w.
    let (n, m, h, w, k, s) = (2usize, 3usize, 9usize, 9usize, 3usize, 2usize);
    let net = dense_net(n, m, h, w, k, s, OutputConfig::RELU_ONLY, 23);
    let engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
    let shape = engine.stage_shape(0).unwrap();
    let (e, f) = (shape.e(), shape.f());
    let pw = w + 2 * shape.pad();
    let full_w = pw - k + 1;
    assert!(f < full_w, "stride must make the emitted row narrower");

    let mut seed = 211;
    let input = Tensor4::from_fn([1, n, h, w], |_| Fx16::from_f32(det(&mut seed)));
    let mut scratch = Scratch::new();
    let out = engine.run(&input, &mut scratch).unwrap();

    // Per filter and output row: n·K row passes each charging
    // (K−1)·full_w correlation adds, then one (K−1)·F combine.
    let row_pass_adds = n * k * (k - 1) * full_w;
    let combine_adds = (k - 1) * f;
    let expected = (m * e * (row_pass_adds + combine_adds)) as u64;
    assert_eq!(out.counters.adds, expected);
}
