//! The paper's headline quantitative claims, checked end-to-end through
//! the public facade. Each test cites the claim it reproduces.

use tfe::core::{Engine, TransferScheme};
use tfe::transfer::analysis::ReuseConfig;

/// Abstract: "average speedup improvements of 2.93x and 3.17x are
/// achieved in the convolutional layers" (6x6 DCNN / SCNN, mainstream
/// networks). We require the measured averages to land within a band and
/// preserve the ordering.
#[test]
fn abstract_conv_speedup_averages() {
    let engine = Engine::new();
    let nets = ["AlexNet", "VGGNet", "GoogLeNet", "ResNet"];
    let avg = |scheme: TransferScheme| -> f64 {
        nets.iter()
            .map(|n| engine.run_network(n, scheme).unwrap().conv_speedup)
            .sum::<f64>()
            / nets.len() as f64
    };
    let d4 = avg(TransferScheme::DCNN4);
    let d6 = avg(TransferScheme::DCNN6);
    let scnn = avg(TransferScheme::Scnn);
    // Paper: 2.07x / 2.93x / 3.17x.
    assert!((1.6..2.6).contains(&d4), "DCNN4x4 avg {d4}");
    assert!((2.1..3.4).contains(&d6), "DCNN6x6 avg {d6}");
    assert!((2.6..3.7).contains(&scnn), "SCNN avg {scnn}");
    assert!(scnn > d6 && d6 > d4);
}

/// Conclusion: "1.99x (4x4 DCNN), 2.73x (6x6 DCNN) and 2.97x (SCNN)
/// overall speedups" — overall lags conv because FC layers do not
/// transfer.
#[test]
fn overall_speedup_lags_conv_speedup() {
    let engine = Engine::new();
    for net in ["AlexNet", "VGGNet", "GoogLeNet", "ResNet"] {
        for scheme in [
            TransferScheme::DCNN4,
            TransferScheme::DCNN6,
            TransferScheme::Scnn,
        ] {
            let r = engine.run_network(net, scheme).unwrap();
            assert!(
                r.overall_speedup <= r.conv_speedup + 1e-9,
                "{net}/{}",
                scheme.label()
            );
        }
    }
}

/// Section V.C.1: "the loss in speedup is very limited, less than 3%"
/// for non-AlexNet networks, "greater than 9.8%" for AlexNet.
#[test]
fn fc_dilution_is_worst_on_alexnet() {
    let engine = Engine::new();
    let dilution = |net: &str| -> f64 {
        let r = engine.run_network(net, TransferScheme::Scnn).unwrap();
        (r.conv_speedup - r.overall_speedup) / r.conv_speedup
    };
    let alex = dilution("AlexNet");
    assert!(alex > 0.08, "AlexNet dilution {alex}");
    for net in ["VGGNet", "GoogLeNet", "ResNet"] {
        let d = dilution(net);
        assert!(d < 0.04, "{net} dilution {d}");
        assert!(d < alex);
    }
}

/// Abstract: "overall energy efficiency can be improved by 12.66x and
/// 13.31x on average" (VGG + AlexNet).
#[test]
fn energy_efficiency_band() {
    let engine = Engine::new();
    let avg = |scheme: TransferScheme| -> f64 {
        ["VGGNet", "AlexNet"]
            .iter()
            .map(|n| engine.run_network(n, scheme).unwrap().energy_efficiency)
            .sum::<f64>()
            / 2.0
    };
    let d6 = avg(TransferScheme::DCNN6);
    let scnn = avg(TransferScheme::Scnn);
    assert!((8.0..18.0).contains(&d6), "DCNN6x6 EE {d6}");
    assert!((9.0..18.0).contains(&scnn), "SCNN EE {scnn}");
    assert!(scnn > d6, "SCNN ({scnn}) must beat DCNN6x6 ({d6})");
}

/// Section V.E / Fig. 19: PPSR and ERRR each contribute the same factor
/// for the DCNN, and only their combination reaches 4x for the SCNN.
#[test]
fn ablation_factors() {
    let vgg = |reuse, scheme| {
        Engine::with_reuse(reuse)
            .run_network("VGGNet", scheme)
            .unwrap()
            .conv_mac_reduction
    };
    let full = vgg(ReuseConfig::FULL, TransferScheme::Scnn);
    let ppsr = vgg(ReuseConfig::PPSR_ONLY, TransferScheme::Scnn);
    let errr = vgg(ReuseConfig::ERRR_ONLY, TransferScheme::Scnn);
    assert!((full - 4.0).abs() < 0.05, "full {full}");
    assert!((ppsr - 8.0 / 6.0).abs() < 0.02, "ppsr {ppsr}");
    assert!((errr - 8.0 / 6.0).abs() < 0.02, "errr {errr}");
}

/// Abstract: "the overall off-chip memory access can be reduced by 1.46x
/// (6x6 DCNN) and 1.48x (SCNN)".
#[test]
fn offchip_reduction_band() {
    let engine = Engine::new();
    let avg = |scheme: TransferScheme| -> f64 {
        ["AlexNet", "VGGNet", "GoogLeNet", "ResNet"]
            .iter()
            .map(|n| engine.run_network(n, scheme).unwrap().offchip_reduction)
            .sum::<f64>()
            / 4.0
    };
    let d6 = avg(TransferScheme::DCNN6);
    let scnn = avg(TransferScheme::Scnn);
    // AlexNet's weight-heavy conv stack pushes our average slightly above
    // the paper's 1.46x/1.48x; see EXPERIMENTS.md.
    assert!((1.25..1.85).contains(&d6), "DCNN6x6 offchip {d6}");
    assert!((1.25..1.85).contains(&scnn), "SCNN offchip {scnn}");
}

/// Fig. 17: "2.27x (4x4 DCNN) and 4.0x (6x6 DCNN and SCNN) [parameter]
/// reductions are achieved" on VGG.
#[test]
fn vgg_parameter_reductions() {
    let engine = Engine::new();
    let get = |scheme| {
        engine
            .run_network("VGGNet", scheme)
            .unwrap()
            .param_reduction
    };
    assert!((get(TransferScheme::DCNN4) - 2.25).abs() < 0.05);
    assert!((get(TransferScheme::DCNN6) - 4.0).abs() < 0.1);
    assert!((get(TransferScheme::Scnn) - 4.0).abs() < 0.1);
}

/// Section I: "the TFE is not beneficial to MobileNet" — running it
/// conventionally yields essentially no speedup under any scheme.
#[test]
fn mobilenet_gains_nothing() {
    use tfe::nets::zoo;
    let engine = Engine::new();
    let net = zoo::mobilenet();
    for scheme in [TransferScheme::DCNN6, TransferScheme::Scnn] {
        let r = engine.run(&net, scheme);
        assert!(
            (0.6..1.3).contains(&r.conv_speedup),
            "{}: {}",
            scheme.label(),
            r.conv_speedup
        );
        assert!(r.conv_mac_reduction < 1.05);
    }
}

/// Section I: the TFE does not help MobileNet-like depth-wise networks —
/// they resolve to an explicit dense (untransferred) policy and execute
/// from a per-group dense weight bank instead of being rejected.
#[test]
fn depthwise_resolves_to_dense_policy() {
    use tfe::tensor::shape::LayerShape;
    use tfe::transfer::layer::TransferredLayer;
    use tfe::transfer::Policy;
    let dw = LayerShape::depthwise("dw", 32, 16, 16, 3, 1, 1).unwrap();
    let policy = TransferScheme::Scnn.policy_for(&dw);
    assert!(matches!(policy, Policy::Dense { .. }));
    assert!(!policy.transfers());
    // The weight bank stores only each filter's own channel: [M, 1, K, K].
    let layer = TransferredLayer::random(&dw, TransferScheme::Scnn, || 0.0).unwrap();
    match layer {
        TransferredLayer::Dense { ref weights } => assert_eq!(weights.dims(), [32, 1, 3, 3]),
        ref other => panic!("expected dense fallback, got {other:?}"),
    }
    assert_eq!(layer.stored_params(), dw.params());
}
