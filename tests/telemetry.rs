//! Telemetry-subsystem integration tests: enabling the per-layer sink
//! on a compiled [`Engine`] must be invisible to the datapath —
//! activations and network-total counters stay bit-identical to an
//! uninstrumented run — while the per-layer cumulative totals decompose
//! the network totals *exactly* (no sampling error, no loss under ring
//! overflow) across every scheme, reuse ablation, and stride.

use proptest::prelude::*;
use tfe::sim::counters::Counters;
use tfe::sim::engine::{Engine, Scratch};
use tfe::sim::network::FunctionalNetwork;
use tfe::telemetry::TelemetrySnapshot;
use tfe::tensor::fixed::Fx16;
use tfe::tensor::shape::LayerShape;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::ReuseConfig;
use tfe::transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

const ALL_SCHEMES: [TransferScheme; 3] = [
    TransferScheme::DCNN4,
    TransferScheme::DCNN6,
    TransferScheme::Scnn,
];

const ALL_REUSE: [ReuseConfig; 4] = [
    ReuseConfig::NONE,
    ReuseConfig::PPSR_ONLY,
    ReuseConfig::ERRR_ONLY,
    ReuseConfig::FULL,
];

/// A small two-stage network (conv → conv+pool) compatible with every
/// scheme; `strided` swaps in a stride-2 first stage so the sweep also
/// covers the subsampled window path.
fn test_net(scheme: TransferScheme, strided: bool, seed: u32) -> FunctionalNetwork {
    let m = match scheme {
        TransferScheme::Dcnn { z: 6 } => 16,
        _ => 8,
    };
    let shapes = if strided {
        vec![
            (
                LayerShape::conv("t1", 3, m, 13, 13, 3, 2, 1).unwrap(),
                false,
            ),
            (LayerShape::conv("t2", m, m, 7, 7, 3, 1, 1).unwrap(), false),
        ]
    } else {
        vec![
            (
                LayerShape::conv("p1", 3, m, 12, 12, 3, 1, 1).unwrap(),
                false,
            ),
            (LayerShape::conv("p2", m, m, 12, 12, 3, 1, 1).unwrap(), true),
        ]
    };
    let mut s = seed;
    FunctionalNetwork::random(&shapes, scheme, || det(&mut s)).unwrap()
}

fn images(count: usize, side: usize, seed: u32) -> Vec<Tensor4<Fx16>> {
    let mut s = seed;
    (0..count)
        .map(|_| Tensor4::from_fn([1, 3, side, side], |_| Fx16::from_f32(det(&mut s))))
        .collect()
}

/// Enabling telemetry must not perturb the datapath: activations and
/// network-total counters are bit-identical to the uninstrumented
/// engine, and the registry shows one entry per compiled stage with the
/// stage's label and exact run count.
#[test]
fn enabled_telemetry_is_bit_identical_and_covers_every_stage() {
    for scheme in ALL_SCHEMES {
        let net = test_net(scheme, false, 71);
        let inputs = images(3, 12, 0x7e1e);

        let silent = Engine::compile(&net, ReuseConfig::FULL).unwrap();
        let mut loud = Engine::compile(&net, ReuseConfig::FULL).unwrap();
        loud.enable_telemetry(64);
        assert!(!silent.sink().is_enabled());
        assert!(loud.sink().is_enabled());

        let mut scratch_a = Scratch::new();
        let mut scratch_b = Scratch::new();
        for input in &inputs {
            let a = silent.run(input, &mut scratch_a).unwrap();
            let b = loud.run(input, &mut scratch_b).unwrap();
            assert_eq!(
                a.activations, b.activations,
                "{scheme:?} telemetry changed activations"
            );
            assert_eq!(
                a.counters, b.counters,
                "{scheme:?} telemetry changed counters"
            );
        }

        assert_eq!(silent.telemetry().layers().len(), 0);
        let reg = loud.telemetry();
        assert_eq!(reg.layers().len(), loud.stage_count());
        assert_eq!(reg.recorded(), (inputs.len() * loud.stage_count()) as u64);
        assert_eq!(reg.dropped(), 0);
        for (idx, layer) in reg.layers().iter().enumerate() {
            assert_eq!(layer.layer, idx);
            assert_eq!(
                Some(layer.label.as_str()),
                loud.stage_shape(idx).map(|s| s.name()),
                "{scheme:?} layer label must match the compiled stage"
            );
            assert_eq!(layer.runs, inputs.len() as u64);
            assert_eq!(layer.window.total(), inputs.len() as u64);
        }
    }
}

/// A live snapshot survives the JSON wire format bit-exactly — the same
/// path the TCP stats request uses.
#[test]
fn live_snapshot_round_trips_through_json() {
    let net = test_net(TransferScheme::Scnn, false, 5);
    let mut engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
    engine.enable_telemetry(16);
    let mut scratch = Scratch::new();
    for input in &images(2, 12, 0x1050) {
        engine.run(input, &mut scratch).unwrap();
    }
    let snap = engine.telemetry().snapshot();
    assert_eq!(snap.layers.len(), 2);
    let text = serde_json::to_string(&snap).unwrap();
    let back: TelemetrySnapshot = serde_json::from_str(&text).unwrap();
    assert_eq!(back, snap);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The exact-decomposition invariant: per-layer cumulative counters
    /// sum to the network-total counters from `Engine::run`, exactly,
    /// for every scheme × reuse ablation × stride — even with a ring
    /// small enough to overflow (cumulative totals are overflow-proof).
    #[test]
    fn per_layer_counters_sum_exactly_to_network_totals(
        scheme_idx in 0usize..3,
        reuse_idx in 0usize..4,
        strided in any::<bool>(),
        count in 1usize..4,
        seed in 0u32..500,
    ) {
        let scheme = ALL_SCHEMES[scheme_idx];
        let reuse = ALL_REUSE[reuse_idx];
        let net = test_net(scheme, strided, seed);
        let side = if strided { 13 } else { 12 };
        let inputs = images(count, side, seed ^ 0x7ab5);

        let mut engine = Engine::compile(&net, reuse).unwrap();
        // Capacity 2 with 2 stages per run: any count > 1 overflows the
        // ring, proving the totals don't depend on window survival.
        engine.enable_telemetry(2);
        let mut scratch = Scratch::new();
        let mut total = Counters::new();
        for input in &inputs {
            total.merge(&engine.run(input, &mut scratch).unwrap().counters);
        }

        let reg = engine.telemetry();
        prop_assert_eq!(reg.layers().len(), engine.stage_count());
        let mut layer_sum = Counters::new();
        for layer in reg.layers() {
            prop_assert_eq!(layer.runs, count as u64);
            layer_sum.merge(&layer.counters);
        }
        prop_assert_eq!(layer_sum, total);
        prop_assert_eq!(reg.total(), total);
        prop_assert_eq!(reg.recorded(), (count * engine.stage_count()) as u64);
        prop_assert_eq!(reg.dropped(), reg.recorded().saturating_sub(2));
    }
}
