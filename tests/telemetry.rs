//! Telemetry-subsystem integration tests: enabling the per-layer sink
//! on a compiled [`Engine`] must be invisible to the datapath —
//! activations and network-total counters stay bit-identical to an
//! uninstrumented run — while the per-layer cumulative totals decompose
//! the network totals *exactly* (no sampling error, no loss under ring
//! overflow) across every scheme, reuse ablation, and stride.

use proptest::prelude::*;
use tfe::sim::counters::Counters;
use tfe::sim::engine::{Engine, Scratch};
use tfe::sim::network::FunctionalNetwork;
use tfe::telemetry::{LayerSample, Sink, StageKind, TelemetryRegistry, TelemetrySnapshot};
use tfe::tensor::fixed::Fx16;
use tfe::tensor::shape::LayerShape;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::ReuseConfig;
use tfe::transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

const ALL_SCHEMES: [TransferScheme; 3] = [
    TransferScheme::DCNN4,
    TransferScheme::DCNN6,
    TransferScheme::Scnn,
];

const ALL_REUSE: [ReuseConfig; 4] = [
    ReuseConfig::NONE,
    ReuseConfig::PPSR_ONLY,
    ReuseConfig::ERRR_ONLY,
    ReuseConfig::FULL,
];

/// A small two-stage network (conv → conv+pool) compatible with every
/// scheme; `strided` swaps in a stride-2 first stage so the sweep also
/// covers the subsampled window path.
fn test_net(scheme: TransferScheme, strided: bool, seed: u32) -> FunctionalNetwork {
    let m = match scheme {
        TransferScheme::Dcnn { z: 6 } => 16,
        _ => 8,
    };
    let shapes = if strided {
        vec![
            (
                LayerShape::conv("t1", 3, m, 13, 13, 3, 2, 1).unwrap(),
                false,
            ),
            (LayerShape::conv("t2", m, m, 7, 7, 3, 1, 1).unwrap(), false),
        ]
    } else {
        vec![
            (
                LayerShape::conv("p1", 3, m, 12, 12, 3, 1, 1).unwrap(),
                false,
            ),
            (LayerShape::conv("p2", m, m, 12, 12, 3, 1, 1).unwrap(), true),
        ]
    };
    let mut s = seed;
    FunctionalNetwork::random(&shapes, scheme, || det(&mut s)).unwrap()
}

fn images(count: usize, side: usize, seed: u32) -> Vec<Tensor4<Fx16>> {
    let mut s = seed;
    (0..count)
        .map(|_| Tensor4::from_fn([1, 3, side, side], |_| Fx16::from_f32(det(&mut s))))
        .collect()
}

/// Enabling telemetry must not perturb the datapath: activations and
/// network-total counters are bit-identical to the uninstrumented
/// engine, and the registry shows one entry per compiled stage with the
/// stage's label and exact run count.
#[test]
fn enabled_telemetry_is_bit_identical_and_covers_every_stage() {
    for scheme in ALL_SCHEMES {
        let net = test_net(scheme, false, 71);
        let inputs = images(3, 12, 0x7e1e);

        let silent = Engine::compile(&net, ReuseConfig::FULL).unwrap();
        let mut loud = Engine::compile(&net, ReuseConfig::FULL).unwrap();
        loud.enable_telemetry(64);
        assert!(!silent.sink().is_enabled());
        assert!(loud.sink().is_enabled());

        let mut scratch_a = Scratch::new();
        let mut scratch_b = Scratch::new();
        for input in &inputs {
            let a = silent.run(input, &mut scratch_a).unwrap();
            let b = loud.run(input, &mut scratch_b).unwrap();
            assert_eq!(
                a.activations, b.activations,
                "{scheme:?} telemetry changed activations"
            );
            assert_eq!(
                a.counters, b.counters,
                "{scheme:?} telemetry changed counters"
            );
        }

        assert_eq!(silent.telemetry().layers().len(), 0);
        let reg = loud.telemetry();
        assert_eq!(reg.layers().len(), loud.stage_count());
        assert_eq!(reg.recorded(), (inputs.len() * loud.stage_count()) as u64);
        assert_eq!(reg.dropped(), 0);
        for (idx, layer) in reg.layers().iter().enumerate() {
            assert_eq!(layer.layer, idx);
            assert_eq!(
                Some(layer.label.as_str()),
                loud.stage_shape(idx).map(|s| s.name()),
                "{scheme:?} layer label must match the compiled stage"
            );
            assert_eq!(layer.runs, inputs.len() as u64);
            assert_eq!(layer.window.total(), inputs.len() as u64);
        }
    }
}

/// A live snapshot survives the JSON wire format bit-exactly — the same
/// path the TCP stats request uses.
#[test]
fn live_snapshot_round_trips_through_json() {
    let net = test_net(TransferScheme::Scnn, false, 5);
    let mut engine = Engine::compile(&net, ReuseConfig::FULL).unwrap();
    engine.enable_telemetry(16);
    let mut scratch = Scratch::new();
    for input in &images(2, 12, 0x1050) {
        engine.run(input, &mut scratch).unwrap();
    }
    let snap = engine.telemetry().snapshot();
    assert_eq!(snap.layers.len(), 2);
    let text = serde_json::to_string(&snap).unwrap();
    let back: TelemetrySnapshot = serde_json::from_str(&text).unwrap();
    assert_eq!(back, snap);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The exact-decomposition invariant: per-layer cumulative counters
    /// sum to the network-total counters from `Engine::run`, exactly,
    /// for every scheme × reuse ablation × stride — even with a ring
    /// small enough to overflow (cumulative totals are overflow-proof).
    #[test]
    fn per_layer_counters_sum_exactly_to_network_totals(
        scheme_idx in 0usize..3,
        reuse_idx in 0usize..4,
        strided in any::<bool>(),
        count in 1usize..4,
        seed in 0u32..500,
    ) {
        let scheme = ALL_SCHEMES[scheme_idx];
        let reuse = ALL_REUSE[reuse_idx];
        let net = test_net(scheme, strided, seed);
        let side = if strided { 13 } else { 12 };
        let inputs = images(count, side, seed ^ 0x7ab5);

        let mut engine = Engine::compile(&net, reuse).unwrap();
        // Capacity 2 with 2 stages per run: any count > 1 overflows the
        // ring, proving the totals don't depend on window survival.
        engine.enable_telemetry(2);
        let mut scratch = Scratch::new();
        let mut total = Counters::new();
        for input in &inputs {
            total.merge(&engine.run(input, &mut scratch).unwrap().counters);
        }

        let reg = engine.telemetry();
        prop_assert_eq!(reg.layers().len(), engine.stage_count());
        let mut layer_sum = Counters::new();
        for layer in reg.layers() {
            prop_assert_eq!(layer.runs, count as u64);
            layer_sum.merge(&layer.counters);
        }
        prop_assert_eq!(layer_sum, total);
        prop_assert_eq!(reg.total(), total);
        prop_assert_eq!(reg.recorded(), (count * engine.stage_count()) as u64);
        prop_assert_eq!(reg.dropped(), reg.recorded().saturating_sub(2));
    }
}

/// Builds one shard's worth of telemetry: a fresh sink with
/// `layer_count` layers (labeled `L0`, `L1`, … — identical per index
/// across every generated registry, the precondition for merge
/// commutativity), a small ring so drop accounting is exercised, and
/// `count` samples synthesized deterministically from `seed`.
fn shard_registry(layer_count: usize, ring: usize, count: usize, seed: u32) -> TelemetryRegistry {
    let labels = (0..layer_count).map(|i| format!("L{i}")).collect();
    let sink = Sink::enabled(labels, ring);
    let mut s = seed;
    let mut next = move |bound: u64| -> u64 {
        s = s.wrapping_mul(1664525).wrapping_add(1013904223);
        u64::from(s >> 8) % bound
    };
    for _ in 0..count {
        let multiplies = 1 + next(100);
        sink.record(&LayerSample {
            layer: next(layer_count as u64) as u32,
            stage: StageKind::Full,
            wall_ns: 1 + next(20_000),
            images: 1,
            counters: Counters {
                multiplies,
                dense_macs: multiplies * 3,
                ..Counters::new()
            },
        });
    }
    TelemetryRegistry::collect(&sink)
}

fn merged(a: &TelemetryRegistry, b: &TelemetryRegistry) -> TelemetryRegistry {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `TelemetryRegistry::merge` is commutative and associative over
    /// registries collected from different sinks (shards), and the
    /// empty registry is its identity — so folding any number of shard
    /// registries into a fleet view gives one well-defined answer, in
    /// any fold order.
    #[test]
    fn merge_is_commutative_associative_with_identity(
        layers in prop::collection::vec(1usize..4, 3),
        rings in prop::collection::vec(1usize..6, 3),
        counts in prop::collection::vec(0usize..12, 3),
        seed in 0u32..100_000,
    ) {
        let a = shard_registry(layers[0], rings[0], counts[0], seed);
        let b = shard_registry(layers[1], rings[1], counts[1], seed ^ 0xb00b);
        let c = shard_registry(layers[2], rings[2], counts[2], seed ^ 0xcccc);
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
        let empty = TelemetryRegistry::default();
        prop_assert_eq!(merged(&a, &empty), a.clone());
        prop_assert_eq!(merged(&empty, &a), a);
    }

    /// Merging preserves every exact accounting dimension: per-layer
    /// runs/wall/counters add index-by-index, recorded and dropped
    /// sample counts sum, window populations sum, and the merged
    /// network total is exactly the sum of the inputs' totals.
    #[test]
    fn merge_preserves_exact_accounting(
        layers in prop::collection::vec(1usize..4, 2),
        rings in prop::collection::vec(1usize..6, 2),
        counts in prop::collection::vec(0usize..12, 2),
        seed in 0u32..100_000,
    ) {
        let a = shard_registry(layers[0], rings[0], counts[0], seed);
        let b = shard_registry(layers[1], rings[1], counts[1], seed ^ 0xfeed);
        let m = merged(&a, &b);

        prop_assert_eq!(m.recorded(), a.recorded() + b.recorded());
        prop_assert_eq!(m.dropped(), a.dropped() + b.dropped());

        let mut want_total = a.total();
        want_total.merge(&b.total());
        prop_assert_eq!(m.total(), want_total);

        // Layer-by-layer: every index present in either input appears
        // exactly once, with summed runs, wall time, counters, and
        // window populations.
        let find = |reg: &TelemetryRegistry, idx: usize| {
            reg.layers().iter().find(|l| l.layer == idx).cloned()
        };
        for layer in m.layers() {
            let la = find(&a, layer.layer);
            let lb = find(&b, layer.layer);
            prop_assert!(la.is_some() || lb.is_some());
            let runs = |l: &Option<tfe::telemetry::LayerStats>| {
                l.as_ref().map_or(0, |l| l.runs)
            };
            let wall = |l: &Option<tfe::telemetry::LayerStats>| {
                l.as_ref().map_or(0, |l| l.wall_ns)
            };
            let mults = |l: &Option<tfe::telemetry::LayerStats>| {
                l.as_ref().map_or(0, |l| l.counters.multiplies)
            };
            let window = |l: &Option<tfe::telemetry::LayerStats>| {
                l.as_ref().map_or(0, |l| l.window.total())
            };
            prop_assert_eq!(layer.runs, runs(&la) + runs(&lb));
            prop_assert_eq!(layer.wall_ns, wall(&la) + wall(&lb));
            prop_assert_eq!(layer.counters.multiplies, mults(&la) + mults(&lb));
            prop_assert_eq!(layer.window.total(), window(&la) + window(&lb));
        }
        let indices: Vec<usize> = m.layers().iter().map(|l| l.layer).collect();
        let mut dedup = indices.clone();
        dedup.dedup();
        prop_assert_eq!(indices, dedup);

        // And the exact-decomposition invariant survives the merge:
        // per-layer counters still sum to the merged total.
        let mut layer_sum = Counters::new();
        for layer in m.layers() {
            layer_sum.merge(&layer.counters);
        }
        prop_assert_eq!(layer_sum, m.total());
    }
}
