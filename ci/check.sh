#!/usr/bin/env sh
# CI gate: formatting, lints (warnings are errors), build, full test suite.
# Run from the repository root. Offline by design — every dependency is a
# workspace path crate (see compat/README.md).
set -eu

cargo fmt --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo build --release --offline
cargo build --release --offline --examples
cargo test -q --offline
# The serving stack's integration tests exercise threads, sockets, and
# shutdown paths — run them explicitly so a filtered test invocation can
# never silently skip them.
cargo test -q --offline --test serve_smoke
# Compile every bench target so bench code cannot rot between releases.
cargo bench --offline --no-run
# Rustdoc is part of the public surface: broken intra-doc links or
# malformed docs fail the gate just like clippy warnings do.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline
# BENCH=1 additionally runs the compile/run-split acceptance bench and
# surfaces its steady-state speedup numbers in the check output.
if [ "${BENCH:-0}" = "1" ]; then
    cargo bench --offline -p tfe-bench --bench engine_speedup
fi
