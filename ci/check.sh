#!/usr/bin/env sh
# CI gate: formatting, lints (warnings are errors), build, full test suite.
# Run from the repository root. Offline by design — every dependency is a
# workspace path crate (see compat/README.md).
set -eu

cargo fmt --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo build --release --offline
cargo test -q --offline
