#!/usr/bin/env sh
# CI gate: formatting, lints (warnings are errors), build, full test suite.
# Run from the repository root. Offline by design — every dependency is a
# workspace path crate (see compat/README.md).
set -eu

cargo fmt --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo build --release --offline
cargo build --release --offline --examples
cargo test -q --offline
# The serving stack's integration tests exercise threads, sockets, and
# shutdown paths — run them explicitly so a filtered test invocation can
# never silently skip them. fleet_smoke adds the multi-model tier on
# top: routed dispatch bit-identity, typed unknown-model rejection,
# zero-drop hot-swap, and exact merged-telemetry accounting.
cargo test -q --offline --test serve_smoke
cargo test -q --offline --test fleet_smoke
cargo test -q --offline -p tfe-fleet
# The generalized-geometry grid (stride x dilation x groups x scheme)
# pins engine-vs-reference bit-identity and counter exactness on
# depthwise, grouped, and dilated stages — run the target explicitly so
# geometry regressions cannot hide behind a filtered invocation.
cargo test -q --offline --test geometry_parity
# The execution-mode grid pins the weight plan's alternate executors —
# the compressed-sparse and factorized paths — bit-identical to the
# dense sweep (activations, per-image counter streams, per-layer
# telemetry sums) across scheme x stride x dilation x batch.
cargo test -q --offline --test mode_parity
# The telemetry crate's seqlock ring and exact-decomposition invariants
# are load-bearing for every observability surface — build and test the
# crate explicitly (its concurrent-writer tests included).
cargo build --release --offline -p tfe-telemetry
cargo test -q --offline -p tfe-telemetry
cargo test -q --offline --test telemetry
# Compile every bench target (including telemetry_overhead, which pins
# the enabled-sink cost at < 3 %) so bench code cannot rot between
# releases.
cargo bench --offline --no-run
# Rustdoc is part of the public surface: broken intra-doc links or
# malformed docs fail the gate just like clippy warnings do.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline
# BENCH=1 additionally runs the timing acceptance benches — the
# compile/run-split steady-state speedup (pinned >= 2x on the
# compile-bound cell), the filter-stationary batched sweep (pinned
# >= 1.3x images/sec at batch 8 on the dense cells, >= 0.97x at batch 1,
# bit-identity asserted first), the monomorphized row kernels (pinned
# >= 1.25x over the frozen scalar reference), the telemetry-sink
# overhead pin, and the fleet router-dispatch overhead (pinned < 3 % vs
# single-model serving). engine_speedup now carries a depthwise-separable
# cell and engine_batch a dilated cell, so the generalized-geometry paths
# are in the timed sweep too. engine_modes times the weight plan's
# alternate executors against the dense sweep on the same network
# (bit-identity asserted before timing) — the compressed-sparse path is
# pinned >= 1.2x at 90 % sparsity; the 50/70 % and factorized cells are
# recorded unpinned to chart the crossover. engine_speedup, engine_batch,
# engine_modes, ppsr_row, and fleet_router write their min-of-reps cells
# into BENCH_10.json at the repo root (the persistent perf trajectory;
# see README "Perf trajectory"), printed below so the numbers land in
# the check output.
if [ "${BENCH:-0}" = "1" ]; then
    cargo bench --offline -p tfe-bench --bench engine_speedup
    cargo bench --offline -p tfe-bench --bench engine_batch
    cargo bench --offline -p tfe-bench --bench engine_modes
    cargo bench --offline -p tfe-bench --bench ppsr_row
    cargo bench --offline -p tfe-bench --bench telemetry_overhead
    cargo bench --offline -p tfe-bench --bench fleet_router
    echo "--- BENCH_10.json (perf trajectory) ---"
    cat BENCH_10.json
fi
