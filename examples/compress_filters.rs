//! Compress a trained dense filter bank into transferred form and verify
//! on the functional datapath that the TFE's reuse machinery computes
//! exactly the same ofmaps as a reference convolution of the expanded
//! filters.
//!
//! ```sh
//! cargo run --release --example compress_filters
//! ```

use tfe::sim::functional::run_layer;
use tfe::tensor::conv::conv2d_fx;
use tfe::tensor::fixed::Fx16;
use tfe::tensor::shape::LayerShape;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::ReuseConfig;
use tfe::transfer::fit::{fit_layer, fit_rmse};
use tfe::transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    // Quarter-unit steps are exactly representable in Q8.8.
    (((*seed >> 20) & 0xf) as f32 - 7.5) / 4.0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A "trained" dense layer: 16 filters of 3x3 over 4 channels. The
    // weights here are synthetic but the flow is exactly what you would
    // run on weights loaded from a real checkpoint.
    let shape = LayerShape::conv("conv_demo", 4, 16, 12, 12, 3, 1, 1)?;
    let mut seed = 2024;
    let dense = Tensor4::from_fn([16, 4, 3, 3], |_| det(&mut seed));

    println!("dense layer: {} parameters", dense.len());
    for scheme in [
        TransferScheme::DCNN4,
        TransferScheme::DCNN6,
        TransferScheme::Scnn,
    ] {
        let fitted = fit_layer(&dense, &shape, scheme)?;
        let rmse = fit_rmse(&dense, &shape, scheme)?;
        println!(
            "{:<8} stored {:>4} params ({:.2}x smaller), projection rmse {:.4}",
            scheme.label(),
            fitted.stored_params(),
            dense.len() as f64 / fitted.stored_params() as f64,
            rmse,
        );

        // Run the fitted layer through the functional TFE datapath and
        // check it against the reference convolution of its expansion.
        let input = Tensor4::from_fn([1, 4, 12, 12], |_| Fx16::from_f32(det(&mut seed)));
        let result = run_layer(&input, &fitted, &shape, ReuseConfig::FULL)?;
        let oracle = conv2d_fx(
            &input,
            &fitted.expand_to_dense()?.map(Fx16::from_f32),
            &shape,
        )?;
        assert_eq!(result.output, oracle, "datapath must be bit-exact");
        println!(
            "         datapath verified bit-exact; MAC reduction {:.2}x ({} multiplies vs {} dense)",
            result.counters.mac_reduction(),
            result.counters.multiplies,
            result.counters.dense_macs,
        );
    }
    Ok(())
}
