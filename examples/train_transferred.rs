//! Train the same small CNN with dense, DCNN-tied and SCNN-tied
//! convolution weights on the synthetic translation/pattern dataset —
//! the Table II accuracy experiment in miniature.
//!
//! ```sh
//! cargo run --release --example train_transferred
//! ```

use tfe::train::{
    deployed_accuracy, train_and_evaluate_with_model, DeployedCnn, SyntheticDataset, TrainConfig,
};
use tfe::transfer::TransferScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, test) = SyntheticDataset::pair(400, 200, 77 << 16);
    let cfg = TrainConfig {
        epochs: 20,
        learning_rate: 0.05,
        seed: 7,
    };
    println!(
        "training 3 variants on {} samples, testing on {}",
        train.len(),
        test.len()
    );
    println!(
        "{:<10} {:>9} {:>12} {:>11} {:>14}",
        "scheme", "f32 acc", "conv params", "final loss", "TFE (Q8.8) acc"
    );
    let mut dense_acc = None;
    for scheme in [
        None,
        Some(TransferScheme::DCNN4),
        Some(TransferScheme::Scnn),
    ] {
        let (o, model) = train_and_evaluate_with_model(scheme, &train, &test, &cfg);
        // Deploy the trained model onto the functional TFE datapath and
        // measure the quantized accuracy — the full train-compress-deploy
        // flow.
        let deployed = DeployedCnn::from_trained(&model)?;
        let quantized = deployed_accuracy(&deployed, &test)?;
        println!(
            "{:<10} {:>8.1}% {:>12} {:>11.3} {:>13.1}%",
            o.scheme, o.test_accuracy_pct, o.conv_params, o.final_loss, quantized
        );
        if scheme.is_none() {
            dense_acc = Some(o.test_accuracy_pct);
        } else if let Some(dense) = dense_acc {
            println!(
                "           -> {:+.1} points vs dense at {}x fewer conv parameters",
                o.test_accuracy_pct - dense,
                if o.scheme == "SCNN" { 4.0 } else { 2.25 },
            );
        }
    }
    Ok(())
}
