//! Per-layer profile of one network on the TFE vs Eyeriss: where the
//! cycles go, which layers transfer, and each layer's speedup.
//!
//! ```sh
//! cargo run --release --example layer_profile -- GoogLeNet
//! ```

use tfe::core::{Engine, TransferScheme};
use tfe::nets::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "AlexNet".to_owned());
    let network = zoo::by_name(&name).ok_or_else(|| format!("unknown network '{name}'"))?;

    let engine = Engine::new();
    let tfe = engine.tfe_perf(&network, TransferScheme::Scnn);
    let eyeriss = engine.eyeriss_perf(&network);

    println!(
        "{} under SCNN on the TFE (vs Eyeriss, normalized PEs)\n",
        network.name()
    );
    println!(
        "{:<24} {:<14} {:>7} {:>12} {:>12} {:>9}",
        "layer", "mode", "util", "tfe cycles", "ey cycles", "speedup"
    );
    for (t, e) in tfe.layers().iter().zip(eyeriss.layers()) {
        // Keep the profile readable on deep networks: skip layers that
        // contribute less than 0.5% of Eyeriss cycles.
        if (e.cycles() as f64) < eyeriss.total_cycles() as f64 * 0.005 {
            continue;
        }
        println!(
            "{:<24} {:<14} {:>6.1}% {:>12} {:>12} {:>8.2}x",
            t.name(),
            format!("{:?}", t.mode()),
            100.0 * t.utilization(),
            t.cycles(),
            e.cycles(),
            e.cycles() as f64 / t.cycles().max(1) as f64,
        );
    }
    println!(
        "\ntotals: tfe {} cycles, eyeriss {} cycles -> overall speedup {:.2}x",
        tfe.total_cycles(),
        eyeriss.total_cycles(),
        eyeriss.total_cycles() as f64 / tfe.total_cycles() as f64,
    );
    Ok(())
}
