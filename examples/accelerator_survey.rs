//! Survey: sweep all seven benchmark networks under all three transfer
//! schemes and print a dashboard of speedup, compression, off-chip saving
//! and energy efficiency — the numbers a deployment study would start
//! from.
//!
//! ```sh
//! cargo run --release --example accelerator_survey
//! ```

use tfe::core::{Engine, TransferScheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new();
    let networks = [
        "AlexNet",
        "VGGNet",
        "GoogLeNet",
        "ResNet",
        "DenseNet",
        "SqueezeNet",
        "ResANet",
    ];
    println!(
        "{:<11} {:<8} {:>9} {:>9} {:>8} {:>9} {:>9}",
        "network", "scheme", "conv x", "overall x", "param x", "offchip x", "EE x"
    );
    for net in networks {
        for scheme in [
            TransferScheme::DCNN4,
            TransferScheme::DCNN6,
            TransferScheme::Scnn,
        ] {
            let r = engine.run_network(net, scheme)?;
            println!(
                "{:<11} {:<8} {:>9.2} {:>9.2} {:>8.2} {:>9.2} {:>9.2}",
                r.network,
                r.scheme,
                r.conv_speedup,
                r.overall_speedup,
                r.param_reduction,
                r.offchip_reduction,
                r.energy_efficiency,
            );
        }
    }
    println!("\n(speedups and energy efficiency are relative to the Eyeriss baseline)");
    Ok(())
}
