//! Quickstart: evaluate one network under one transfer scheme and print
//! the headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- ResNet DCNN6x6
//! ```

use tfe::core::{Engine, TransferScheme};

fn parse_scheme(s: &str) -> TransferScheme {
    match s.to_ascii_lowercase().as_str() {
        "dcnn4x4" | "dcnn4" => TransferScheme::DCNN4,
        "dcnn6x6" | "dcnn6" => TransferScheme::DCNN6,
        _ => TransferScheme::Scnn,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let network = args.next().unwrap_or_else(|| "VGGNet".to_owned());
    let scheme = parse_scheme(&args.next().unwrap_or_else(|| "SCNN".to_owned()));

    let engine = Engine::new();
    let report = engine.run_network(&network, scheme)?;

    println!("network:                {}", report.network);
    println!("scheme:                 {}", report.scheme);
    println!("conv speedup vs Eyeriss: {:.2}x", report.conv_speedup);
    println!("overall speedup:         {:.2}x", report.overall_speedup);
    println!("conv parameter reduction:{:.2}x", report.param_reduction);
    println!("conv MAC reduction:      {:.2}x", report.conv_mac_reduction);
    println!("off-chip access saving:  {:.2}x", report.offchip_reduction);
    println!("modelled TFE power:      {:.1} mW", report.tfe_power_mw);
    println!(
        "energy efficiency:       {:.2}x Eyeriss",
        report.energy_efficiency
    );
    Ok(())
}
