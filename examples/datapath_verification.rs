//! Head-to-head functional verification: run the same layer, with the
//! same data, through (a) the reference convolution, (b) the Eyeriss
//! row-stationary dataflow, and (c) the TFE datapath with PPSR + ERRR —
//! then show all three agree bit-exactly while the TFE executes a
//! fraction of the multiplies.
//!
//! ```sh
//! cargo run --release --example datapath_verification
//! ```

use tfe::eyeriss::rs_dataflow::run_layer_rs;
use tfe::sim::functional::run_layer;
use tfe::tensor::conv::conv2d_fx;
use tfe::tensor::fixed::Fx16;
use tfe::tensor::shape::LayerShape;
use tfe::tensor::tensor::Tensor4;
use tfe::transfer::analysis::ReuseConfig;
use tfe::transfer::layer::TransferredLayer;
use tfe::transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    (((*seed >> 20) & 0xf) as f32 - 7.5) / 4.0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = LayerShape::conv("verify", 4, 16, 14, 14, 3, 1, 1)?;
    let mut seed = 2026;
    let layer = TransferredLayer::random(&shape, TransferScheme::Scnn, || det(&mut seed))?;
    let input = Tensor4::from_fn([1, 4, 14, 14], |_| Fx16::from_f32(det(&mut seed)));
    let dense = layer.expand_to_dense()?.map(Fx16::from_f32);

    println!("layer: {shape}");
    println!(
        "weights: {} stored (SCNN), {} effective dense\n",
        layer.stored_params(),
        dense.len()
    );

    // (a) Golden model.
    let reference = conv2d_fx(&input, &dense, &shape)?;

    // (b) Eyeriss row-stationary.
    let (rs_out, rs_counters) = run_layer_rs(&input, &dense, &shape)?;
    assert_eq!(rs_out, reference, "row-stationary output must be bit-exact");
    println!(
        "Eyeriss RS:  bit-exact; {} MACs, {} spad accesses ({:.1}/MAC)",
        rs_counters.macs,
        rs_counters.total_spad_accesses(),
        rs_counters.accesses_per_mac(),
    );

    // (c) TFE with full reuse.
    let tfe = run_layer(&input, &layer, &shape, ReuseConfig::FULL)?;
    assert_eq!(tfe.output, reference, "TFE output must be bit-exact");
    println!(
        "TFE (SCNN):  bit-exact; {} multiplies ({:.2}x fewer than its own dense count)",
        tfe.counters.multiplies,
        tfe.counters.mac_reduction(),
    );
    println!(
        "\nsame numbers, {:.1}x fewer multiplier activations than row-stationary",
        rs_counters.macs as f64 / tfe.counters.multiplies as f64,
    );
    Ok(())
}
