//! Serving quickstart: start the dynamic-batching service around the
//! demo network, hit it over both front-ends (in-process client and the
//! length-prefixed JSON TCP protocol), and print the metrics snapshot.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```

use std::net::TcpStream;
use tfe::serve::demo::{demo_images, demo_network};
use tfe::serve::protocol::{roundtrip, WireRequest, WireResponse};
use tfe::serve::{ServeConfig, Service, TcpServer};
use tfe::transfer::analysis::ReuseConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = demo_network(7);
    let images = demo_images(8, 42);
    // Reference answer for image 0, straight through the simulator.
    let direct = net.run(&images[0], ReuseConfig::FULL)?;

    let service = Service::start(net, ServeConfig::default())?;
    let client = service.client();

    // Front-end 1: the in-process client.
    let reply = client.infer(images[0].clone())?;
    assert_eq!(reply.activations, direct.activations);
    assert_eq!(reply.counters, direct.counters);
    println!(
        "in-process: {} MACs ({:.2}x below dense), {} µs",
        reply.counters.multiplies,
        reply.counters.mac_reduction(),
        reply.latency.as_micros()
    );

    // Front-end 2: the TCP protocol on an ephemeral port.
    let server = TcpServer::bind("127.0.0.1:0", service.client())?;
    let mut stream = TcpStream::connect(server.local_addr())?;
    for image in &images[1..] {
        let request = WireRequest::Infer {
            input: image.clone(),
            deadline_ms: None,
            model_id: None,
        };
        match roundtrip(&mut stream, &request)? {
            WireResponse::Ok { latency_us, .. } => {
                println!("tcp: ok in {latency_us} µs");
            }
            other => println!("tcp: {other:?}"),
        }
    }
    match roundtrip(&mut stream, &WireRequest::Stats)? {
        WireResponse::Stats {
            metrics,
            telemetry,
            models: _,
        } => {
            println!(
                "served {} requests in {} batches (mean size {:.2}), p99 {} µs",
                metrics.completed,
                metrics.batches,
                metrics.mean_batch_size(),
                metrics.p99_us
            );
            for layer in &telemetry.layers {
                println!(
                    "  layer {} ({}): {} runs, p95 {} µs, {:.2}x MAC reduction",
                    layer.layer, layer.label, layer.runs, layer.p95_us, layer.mac_reduction
                );
            }
        }
        other => println!("tcp: {other:?}"),
    }
    drop(stream);
    server.shutdown();

    let snapshot = service.shutdown();
    println!(
        "lifetime sim counters: {} MACs, {} SRAM accesses",
        snapshot.counters.multiplies,
        snapshot.counters.sram_accesses()
    );
    Ok(())
}
