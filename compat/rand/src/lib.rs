//! Offline facade standing in for the `rand` crate (0.8 API subset).
//!
//! The workspace builds without network access, so the real `rand` crate
//! is replaced by this vendored facade exposing the API surface the
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over
//! half-open and inclusive integer/float ranges, and `Rng::gen` for
//! booleans. The generator is SplitMix64 — a different stream than real
//! `StdRng` (ChaCha12), but every use in the workspace treats the RNG as
//! an arbitrary deterministic source, not a pinned sequence.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of a type with a standard distribution
    /// (currently: `bool`, the full integer types, unit-interval floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The facade's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Avoid the all-zero fixed point and decorrelate small seeds.
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// A uniform draw in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0usize..=9);
            assert!(w <= 9);
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn bool_sampling_hits_both_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false, false];
        for _ in 0..64 {
            let b: bool = rng.gen();
            seen[usize::from(b)] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1_000_000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
