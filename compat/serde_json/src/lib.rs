//! Offline facade standing in for the `serde_json` crate.
//!
//! Renders and parses the vendored [`serde::Value`] tree (see
//! `compat/serde`). Compact output carries no whitespace and preserves
//! object-field declaration order, matching what the workspace's tests
//! assert on real serde_json output. Numbers render through Rust's
//! shortest-round-trip float formatting, so `to_string` → `from_str`
//! round-trips `f64` fields bit-exactly.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Error type for rendering or parsing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(err: serde::DeError) -> Self {
        Error(err.to_string())
    }
}

/// Serializes a value to compact JSON (no whitespace).
///
/// # Errors
///
/// Infallible for the facade's data model; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to indented JSON.
///
/// # Errors
///
/// Infallible for the facade's data model; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

/// Builds a [`Value`] object literal, mirroring `serde_json::json!` for
/// the object shape the workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$val))),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$elem)),*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => render_float(*v, out),
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_float(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest round-trip formatting and always
        // carries a decimal point or exponent, so it is valid JSON.
        out.push_str(&format!("{v:?}"));
    } else {
        // JSON has no Inf/NaN; real serde_json emits null.
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_has_no_spaces() {
        let v = json!({"a": 1u64, "b": "x"});
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":"x"}"#);
    }

    #[test]
    fn floats_round_trip_exactly() {
        let values = [0.1, 1.0, -3.25e17, f64::MIN_POSITIVE, 1_234.567_891_011];
        for v in values {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\n\"quoted\"\t\\slash".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nested_structures_parse() {
        let text = r#"{"points": [{"x": 1, "y": -2.5}, {"x": 3, "y": 4e2}], "ok": true}"#;
        let v: Value = from_str(text).unwrap();
        let points = v.get_field("points").unwrap();
        match points {
            Value::Array(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
