//! Offline facade standing in for the `serde` crate.
//!
//! The workspace builds without network access, so the real serde
//! ecosystem is replaced by this small vendored facade. Instead of
//! serde's visitor-based `Serializer`/`Deserializer` machinery, the
//! facade converts values to and from one concrete JSON-like [`Value`]
//! tree; `compat/serde_json` renders and parses that tree. The derive
//! macros (`compat/serde_derive`) generate the field-by-field
//! conversions for named-field structs — the only shape the workspace
//! serializes.
//!
//! Keeping the trait names (`Serialize`, `Deserialize`) and the module
//! layout identical to real serde means downstream code is unchanged and
//! can switch back to the real crates by editing one line in the root
//! `Cargo.toml`.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the facade's single data model.
///
/// Object fields keep insertion order so rendered JSON matches the
/// declaration order of derived structs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value by name.
    #[must_use]
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] cannot be converted into the target
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// A free-form conversion error.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        DeError(message.into())
    }

    /// An object was missing a required field.
    #[must_use]
    pub fn missing_field(name: &str) -> Self {
        DeError(format!("missing field '{name}'"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the facade's [`Value`] tree (stands in for
/// `serde::Serialize`).
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the facade's [`Value`] tree (stands in for
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape or type does not match.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected a boolean")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = match value {
                    Value::I64(v) => *v,
                    Value::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::custom("unsigned value out of range"))?,
                    _ => return Err(DeError::custom("expected an integer")),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = match value {
                    Value::U64(v) => *v,
                    Value::I64(v) => u64::try_from(*v)
                        .map_err(|_| DeError::custom("negative value for unsigned field"))?,
                    _ => return Err(DeError::custom("expected an integer")),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(v) => Ok(*v),
            Value::I64(v) => Ok(*v as f64),
            Value::U64(v) => Ok(*v as f64),
            _ => Err(DeError::custom("expected a number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected a string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected an array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let Value::Array(items) = value else {
                    return Err(DeError::custom("expected a tuple array"));
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom("tuple arity mismatch"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
