//! Offline facade standing in for the `criterion` crate.
//!
//! The workspace builds without network access, so the real `criterion`
//! crate is replaced by this vendored facade implementing the API subset
//! the benches use: [`Criterion::bench_function`], benchmark groups with
//! `sample_size`, [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros. Instead of statistical
//! sampling it times a fixed iteration budget and prints mean
//! nanoseconds per iteration — enough to compare variants by hand.
//!
//! Tune the per-benchmark iteration budget with `CRITERION_ITERS`
//! (default 100; warm-up runs `max(budget / 10, 1)` iterations first).

use std::time::Instant;

pub use std::hint::black_box;

/// Times closures for one named benchmark.
pub struct Bencher {
    iters: u64,
    last_ns: Option<u128>,
}

impl Bencher {
    /// Runs `routine` for the configured iteration budget (after a short
    /// warm-up) and records the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..(self.iters / 10).max(1) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.last_ns = Some(elapsed.as_nanos() / u128::from(self.iters.max(1)));
    }
}

/// The benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let iters = std::env::var("CRITERION_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        Criterion { iters }
    }
}

impl Criterion {
    /// Overrides the iteration budget (mirrors criterion's statistical
    /// sample size knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Benchmarks one closure under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_named(name, self.iters, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            iters: self.iters,
        }
    }
}

/// A named group of benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup {
    name: String,
    iters: u64,
}

impl BenchmarkGroup {
    /// Overrides the iteration budget for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Benchmarks one closure under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_named(&full, self.iters, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_named<F: FnMut(&mut Bencher)>(name: &str, iters: u64, f: &mut F) {
    let mut bencher = Bencher {
        iters,
        last_ns: None,
    };
    f(&mut bencher);
    match bencher.last_ns {
        Some(ns) => println!("bench {name:<50} {ns:>12} ns/iter ({iters} iters)"),
        None => println!("bench {name:<50} (no measurement)"),
    }
}

/// Declares a benchmark group as a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut criterion = Criterion::default();
        criterion.sample_size(10).bench_function("smoke", |b| {
            b.iter(|| black_box(1u64 + 1));
        });
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| black_box(2u64 * 2)));
        group.finish();
    }
}
