//! Derive macros for the vendored `serde` facade.
//!
//! This workspace builds in a fully offline environment, so the real
//! `serde`/`serde_derive` crates are replaced by a small vendored facade
//! (see `compat/serde`). The facade's data model is a JSON-like
//! `Value` tree; these derives generate field-by-field conversions for
//! plain named-field structs, which is the only shape the workspace uses.
//!
//! Unsupported shapes (tuple structs, enums, generics) produce a
//! `compile_error!` so misuse is caught at build time rather than
//! silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the facade's `Serialize` trait for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives the facade's `Deserialize` trait for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, direction: Direction) -> TokenStream {
    let parsed = match parse_struct(input) {
        Ok(parsed) => parsed,
        Err(message) => {
            return format!("compile_error!({message:?});")
                .parse()
                .expect("error expansion parses")
        }
    };
    let name = &parsed.name;
    let mut body = String::new();
    match direction {
        Direction::Serialize => {
            body.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n"
            ));
            for field in &parsed.fields {
                body.push_str(&format!(
                    "        fields.push(({field:?}.to_string(), ::serde::Serialize::to_value(&self.{field})));\n"
                ));
            }
            body.push_str("        ::serde::Value::Object(fields)\n    }\n}\n");
        }
        Direction::Deserialize => {
            body.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n    fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        ::std::result::Result::Ok({name} {{\n"
            ));
            for field in &parsed.fields {
                body.push_str(&format!(
                    "            {field}: ::serde::Deserialize::from_value(value.get_field({field:?}).ok_or_else(|| ::serde::DeError::missing_field({field:?}))?)?,\n"
                ));
            }
            body.push_str("        })\n    }\n}\n");
        }
    }
    body.parse().expect("generated impl parses")
}

struct ParsedStruct {
    name: String,
    fields: Vec<String>,
}

/// Walks the derive input and extracts the struct name plus its named
/// fields. Attributes and visibility modifiers are skipped; anything that
/// is not a plain named-field struct is rejected.
fn parse_struct(input: TokenStream) -> Result<ParsedStruct, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility up to the `struct` keyword.
    let mut name = None;
    while let Some(token) = tokens.next() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            TokenTree::Ident(ident) if ident.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(ident) if ident.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("expected a struct name".to_owned()),
                }
                break;
            }
            TokenTree::Ident(ident) if ident.to_string() == "enum" => {
                return Err(
                    "the vendored serde derives support only named-field structs, not enums"
                        .to_owned(),
                );
            }
            _ => {}
        }
    }
    let name = name.ok_or_else(|| "expected a struct item".to_owned())?;
    // The next brace group holds the fields; a `<` first means generics,
    // which the facade does not support.
    let fields_group = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(
                    "tuple structs are not supported by the vendored serde derives".to_owned(),
                );
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(
                    "generic structs are not supported by the vendored serde derives".to_owned(),
                );
            }
            Some(_) => {}
            None => return Err("expected a braced field list".to_owned()),
        }
    };
    Ok(ParsedStruct {
        name,
        fields: parse_fields(fields_group.stream())?,
    })
}

/// Extracts field names from a struct body, skipping attributes,
/// visibility and the type tokens (commas nested inside `<...>` or any
/// bracketed group do not terminate a field).
fn parse_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes (doc comments arrive as #[doc = ...]).
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next(); // the [...] group
            } else {
                break;
            }
        }
        // Skip visibility.
        if let Some(TokenTree::Ident(ident)) = tokens.peek() {
            if ident.to_string() == "pub" {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
        }
        let Some(token) = tokens.next() else { break };
        let TokenTree::Ident(field) = token else {
            return Err("expected a field name".to_owned());
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected ':' after field '{field}'")),
        }
        // Consume the type up to the next comma outside angle brackets.
        let mut angle_depth = 0usize;
        for type_token in tokens.by_ref() {
            match type_token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field.to_string());
    }
    Ok(fields)
}
