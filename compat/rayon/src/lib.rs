//! Offline facade standing in for the `rayon` crate.
//!
//! The workspace builds without network access, so the real `rayon`
//! crate is replaced by this vendored facade implementing the API subset
//! the engine uses: `par_iter()` / `into_par_iter()` with `map` +
//! `collect::<Vec<_>>()`, [`join`], [`current_num_threads`], and
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`].
//!
//! Execution model: the index space is split into `threads` contiguous
//! chunks, each chunk is evaluated on its own scoped `std::thread`, and
//! the per-chunk result vectors are concatenated **in chunk order**.
//! Output ordering is therefore identical to the sequential path for
//! every thread count (real rayon's `collect` gives the same guarantee).
//! With one thread (or one item) no threads are spawned at all.
//!
//! Thread-count resolution, highest priority first:
//! 1. an enclosing [`ThreadPool::install`] scope,
//! 2. the `RAYON_NUM_THREADS` environment variable,
//! 3. the `TFE_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Active `install` override; 0 means "not inside an install scope".
static POOL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The number of worker threads parallel operations will use.
#[must_use]
pub fn current_num_threads() -> usize {
    let overridden = POOL_OVERRIDE.load(Ordering::SeqCst);
    if overridden > 0 {
        return overridden;
    }
    for var in ["RAYON_NUM_THREADS", "TFE_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `0..len` through `f` across the current thread budget,
/// concatenating per-chunk results in chunk order (deterministic).
fn par_map_indices<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let f = &f;
    let mut chunks: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(len);
                scope.spawn(move || (start..end).map(f).collect::<Vec<R>>())
            })
            .collect();
        for handle in handles {
            chunks.push(handle.join().expect("rayon facade worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for mut chunk in chunks {
        out.append(&mut chunk);
    }
    out
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        let rb = handle.join().expect("rayon facade join worker panicked");
        (ra, rb)
    })
}

/// Sinks that a parallel iterator can collect into.
pub trait FromParallelIterator<T> {
    /// Builds the sink from the ordered result vector.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Minimal parallel-iterator pipeline: every adapter resolves to an
/// ordered `Vec` of mapped results.
pub trait ParallelIterator: Sized {
    /// The element type produced by this iterator.
    type Item: Send;

    /// Evaluates the pipeline into an ordered vector.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each element through `f` in parallel.
    fn map<R, F>(self, f: F) -> MapIter<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        MapIter { base: self, f }
    }

    /// Collects the pipeline's results, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered_vec(self.run())
    }

    /// Runs `f` on every element (ordering of side effects is
    /// per-chunk; the facade still evaluates every element exactly once).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.map(f).run();
    }

    /// Sums the produced elements in input order.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.run().into_iter().sum()
    }
}

/// A `map` adapter over another parallel iterator.
pub struct MapIter<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for MapIter<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        let MapIter { base, f } = self;
        let items = base.run();
        let len = items.len();
        let threads = current_num_threads().min(len.max(1));
        if threads <= 1 || len <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = len.div_ceil(threads);
        let mut batches: Vec<Vec<I::Item>> = Vec::with_capacity(threads);
        let mut drain = items.into_iter();
        for _ in 0..threads {
            batches.push(drain.by_ref().take(chunk).collect());
        }
        let f = &f;
        let mut chunks: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = batches
                .into_iter()
                .map(|batch| scope.spawn(move || batch.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for handle in handles {
                chunks.push(handle.join().expect("rayon facade worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(len);
        for mut chunk in chunks {
            out.append(&mut chunk);
        }
        out
    }
}

/// Parallel iterator over a slice's elements by reference.
pub struct SliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn run(self) -> Vec<&'a T> {
        let items = self.items;
        par_map_indices(items.len(), |i| &items[i])
    }
}

/// Parallel iterator over an owned vector.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Parallel iterator over a `usize` range.
pub struct RangeIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn run(self) -> Vec<usize> {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        par_map_indices(len, |i| start + i)
    }
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// The produced element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

/// Conversion into a borrowing parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The produced element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by the
/// facade, kept for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped thread-count override.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (auto-detected) thread count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `n` worker threads (0 = auto-detect).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. The facade cannot fail here.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A thread-count scope: the facade spawns scoped threads per operation
/// rather than keeping a pool alive, so this only carries the count.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count as the active budget,
    /// restoring the previous budget afterwards (also on panic).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.store(self.0, Ordering::SeqCst);
            }
        }
        let _restore = Restore(POOL_OVERRIDE.swap(self.threads, Ordering::SeqCst));
        f()
    }

    /// This pool's thread count.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// The glob-importable API surface (mirrors `rayon::prelude`).
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn slice_map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<u64> = pool.install(|| input.par_iter().map(|x| x * 3 + 1).collect());
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn range_into_par_iter_matches_sequential() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let got: Vec<usize> = pool.install(|| (5..25).into_par_iter().map(|i| i * i).collect());
        let expected: Vec<usize> = (5..25).map(|i| i * i).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn install_overrides_and_restores() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 7));
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn join_returns_both() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.install(|| join(|| 2 + 2, || "ok"));
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        let got: Vec<i32> = empty.par_iter().map(|x| *x).collect();
        assert!(got.is_empty());
        let one = [41];
        let got: Vec<i32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(got, vec![42]);
    }
}
