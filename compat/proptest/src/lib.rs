//! Offline facade standing in for the `proptest` crate.
//!
//! The workspace builds without network access, so the real `proptest`
//! crate is replaced by this vendored facade implementing the subset the
//! test suite uses: the [`proptest!`] macro, range/`any`/`select`/
//! `collection::vec` strategies, `prop_assert*`/`prop_assume`, and
//! [`ProptestConfig::with_cases`]. Each test runs a fixed number of
//! deterministically seeded random cases (seeded by the test's name, so
//! failures reproduce across runs). There is **no shrinking**: a failing
//! case reports the iteration number and assertion message only.
//!
//! The default case count is 64, overridable with the
//! `PROPTEST_CASES` environment variable.

use std::fmt;
use std::ops::Range;

/// Outcome of one generated test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is not counted.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with a message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
            TestCaseError::Fail(message) => write!(f, "{message}"),
        }
    }
}

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// The deterministic case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator; [`proptest!`] derives the seed from the test
    /// name so each test has a stable, independent stream.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        self.next_u64() % bound
    }
}

/// A value generator (mirrors `proptest::strategy::Strategy`, without
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Types with a whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T` (mirrors `proptest::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy combinators under their upstream module paths.
pub mod prop {
    /// Sampling from explicit value lists.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy picking uniformly from a fixed list.
        pub struct Select<T> {
            items: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                let index = rng.below(self.items.len() as u64) as usize;
                self.items[index].clone()
            }
        }

        /// Uniform choice from a non-empty vector.
        ///
        /// # Panics
        ///
        /// Panics (at sample time) if `items` is empty.
        #[must_use]
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            Select { items }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy generating fixed-length vectors.
        pub struct VecStrategy<S> {
            element: S,
            len: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                (0..self.len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A vector of exactly `len` elements drawn from `element`.
        #[must_use]
        pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a `proptest!`-based test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// FNV-1a hash of the test name, used as the per-test RNG seed.
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Defines property tests: each function's arguments are drawn from the
/// given strategies for a configurable number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_seed($crate::seed_from_name(stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(100).max(1000),
                                "too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "property {} failed at case {}: {}",
                                stringify!($name),
                                accepted,
                                message
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Rejects the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(v in -10i32..10, w in 3usize..7) {
            prop_assert!((-10..10).contains(&v));
            prop_assert!((3..7).contains(&w));
        }

        /// Assume rejects without failing.
        #[test]
        fn assume_filters(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        /// Collections have the requested length.
        #[test]
        fn vec_strategy_len(items in prop::collection::vec(0i32..5, 9)) {
            prop_assert_eq!(items.len(), 9);
            prop_assert!(items.iter().all(|&x| (0..5).contains(&x)));
        }

        /// Select picks from the list.
        #[test]
        fn select_picks_members(x in prop::sample::select(vec![2u8, 3, 5, 7])) {
            prop_assert!([2u8, 3, 5, 7].contains(&x));
        }

        /// `any` covers the whole domain type-checkedly.
        #[test]
        fn any_compiles(bits in any::<i16>(), flag in any::<bool>()) {
            let _ = (bits, flag);
            prop_assert!(true);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_from_name("a"), seed_from_name("b"));
        assert_eq!(seed_from_name("a"), seed_from_name("a"));
    }

    use crate::seed_from_name;
}
