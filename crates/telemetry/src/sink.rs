//! The engine-facing half of the subsystem: a cloneable [`Sink`] handle
//! the instrumented hot path records [`LayerSample`]s into.
//!
//! A disabled sink is a `None` — [`Sink::record`] is a branch on an
//! `Option` and returns immediately, so the hot path pays near-zero
//! cost (the `telemetry_overhead` bench pins the *enabled* cost below
//! 3%). An enabled sink owns two views of the same stream:
//!
//! * a lock-free ring window of recent samples (for latency
//!   histograms — lossy under overflow, by design), and
//! * per-layer **cumulative atomics** (runs, wall time, every counter
//!   field) that are exact for the life of the sink — these are what
//!   make per-layer counters sum exactly to network totals no matter
//!   how small the ring is.

use crate::counters::Counters;
use crate::ring::{Ring, RingSnapshot};
use crate::sample::LayerSample;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One atomic cell per [`Counters`] field.
#[derive(Debug, Default)]
pub(crate) struct CounterCells {
    dense_macs: AtomicU64,
    multiplies: AtomicU64,
    adds: AtomicU64,
    sr_reads: AtomicU64,
    sr_writes: AtomicU64,
    psum_mem_reads: AtomicU64,
    psum_mem_writes: AtomicU64,
    input_mem_reads: AtomicU64,
    weight_reads: AtomicU64,
    dram_bits: AtomicU64,
    cycles: AtomicU64,
}

impl CounterCells {
    fn add(&self, delta: &Counters) {
        // Exhaustive destructuring: a new Counters field fails to
        // compile here instead of silently not being accumulated.
        let Counters {
            dense_macs,
            multiplies,
            adds,
            sr_reads,
            sr_writes,
            psum_mem_reads,
            psum_mem_writes,
            input_mem_reads,
            weight_reads,
            dram_bits,
            cycles,
        } = *delta;
        self.dense_macs.fetch_add(dense_macs, Ordering::Relaxed);
        self.multiplies.fetch_add(multiplies, Ordering::Relaxed);
        self.adds.fetch_add(adds, Ordering::Relaxed);
        self.sr_reads.fetch_add(sr_reads, Ordering::Relaxed);
        self.sr_writes.fetch_add(sr_writes, Ordering::Relaxed);
        self.psum_mem_reads
            .fetch_add(psum_mem_reads, Ordering::Relaxed);
        self.psum_mem_writes
            .fetch_add(psum_mem_writes, Ordering::Relaxed);
        self.input_mem_reads
            .fetch_add(input_mem_reads, Ordering::Relaxed);
        self.weight_reads.fetch_add(weight_reads, Ordering::Relaxed);
        self.dram_bits.fetch_add(dram_bits, Ordering::Relaxed);
        self.cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    fn load(&self) -> Counters {
        Counters {
            dense_macs: self.dense_macs.load(Ordering::Relaxed),
            multiplies: self.multiplies.load(Ordering::Relaxed),
            adds: self.adds.load(Ordering::Relaxed),
            sr_reads: self.sr_reads.load(Ordering::Relaxed),
            sr_writes: self.sr_writes.load(Ordering::Relaxed),
            psum_mem_reads: self.psum_mem_reads.load(Ordering::Relaxed),
            psum_mem_writes: self.psum_mem_writes.load(Ordering::Relaxed),
            input_mem_reads: self.input_mem_reads.load(Ordering::Relaxed),
            weight_reads: self.weight_reads.load(Ordering::Relaxed),
            dram_bits: self.dram_bits.load(Ordering::Relaxed),
            cycles: self.cycles.load(Ordering::Relaxed),
        }
    }
}

/// Exact cumulative totals for one compiled stage.
#[derive(Debug, Default)]
pub(crate) struct LayerCells {
    runs: AtomicU64,
    images: AtomicU64,
    wall_ns: AtomicU64,
    counters: CounterCells,
}

/// A cumulative per-layer readout taken from a sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LayerTotals {
    pub(crate) runs: u64,
    pub(crate) images: u64,
    pub(crate) wall_ns: u64,
    pub(crate) counters: Counters,
}

#[derive(Debug)]
pub(crate) struct SinkInner {
    ring: Ring,
    layers: Vec<LayerCells>,
    labels: Vec<String>,
    /// Per-layer execution-mode strings (e.g. `"dense"`, `"sparse"`) —
    /// static compile-time facts carried alongside the labels so stats
    /// surfaces can show *how* each layer executes; empty strings when
    /// the producer didn't supply any.
    modes: Vec<String>,
}

/// Cloneable recording handle; clones share the same ring and totals.
///
/// [`Sink::disabled`] (also `Default`) carries no storage at all and
/// makes [`record`](Sink::record) a no-op; [`Sink::enabled`] allocates
/// one ring plus per-layer accumulators for a fixed set of layer
/// labels. Samples whose `layer` index falls outside the label set
/// still enter the ring but accumulate no per-layer totals.
#[derive(Debug, Clone, Default)]
pub struct Sink {
    inner: Option<Arc<SinkInner>>,
}

impl Sink {
    /// The no-op sink: recording returns immediately, snapshots are
    /// empty.
    #[must_use]
    pub fn disabled() -> Sink {
        Sink { inner: None }
    }

    /// An enabled sink for `labels.len()` layers, with a sample ring
    /// holding `ring_capacity` records (clamped to ≥ 1).
    #[must_use]
    pub fn enabled(labels: Vec<String>, ring_capacity: usize) -> Sink {
        let modes = vec![String::new(); labels.len()];
        Sink::enabled_with_modes(labels, modes, ring_capacity)
    }

    /// [`Sink::enabled`] with a per-layer execution-mode string carried
    /// alongside each label (padded/truncated to the label count).
    #[must_use]
    pub fn enabled_with_modes(
        labels: Vec<String>,
        mut modes: Vec<String>,
        ring_capacity: usize,
    ) -> Sink {
        modes.resize(labels.len(), String::new());
        let layers = labels.iter().map(|_| LayerCells::default()).collect();
        Sink {
            inner: Some(Arc::new(SinkInner {
                ring: Ring::new(ring_capacity),
                layers,
                labels,
                modes,
            })),
        }
    }

    /// Whether recording does anything — the hot path checks this once
    /// per stage before touching the clock.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of layers this sink accumulates totals for (0 when
    /// disabled).
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.labels.len())
    }

    /// Records one sample: pushes it into the ring and folds it into
    /// the layer's cumulative totals. No-op when disabled; wait-free
    /// when enabled.
    pub fn record(&self, sample: &LayerSample) {
        let Some(inner) = &self.inner else { return };
        inner.ring.push(sample);
        if let Some(layer) = inner.layers.get(sample.layer as usize) {
            layer.runs.fetch_add(1, Ordering::Relaxed);
            layer.images.fetch_add(sample.images, Ordering::Relaxed);
            layer.wall_ns.fetch_add(sample.wall_ns, Ordering::Relaxed);
            layer.counters.add(&sample.counters);
        }
    }

    /// The ring window plus lifetime accounting (empty when disabled).
    pub(crate) fn ring_snapshot(&self) -> RingSnapshot {
        match &self.inner {
            Some(inner) => inner.ring.snapshot(),
            None => RingSnapshot {
                recorded: 0,
                dropped: 0,
                samples: Vec::new(),
            },
        }
    }

    /// Per-layer execution-mode strings, parallel to the labels (empty
    /// when disabled).
    pub(crate) fn layer_modes(&self) -> Vec<String> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.modes.clone())
    }

    /// Labels and exact cumulative totals per layer (empty when
    /// disabled).
    pub(crate) fn layer_totals(&self) -> Vec<(String, LayerTotals)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner
            .labels
            .iter()
            .zip(inner.layers.iter())
            .map(|(label, cells)| {
                (
                    label.clone(),
                    LayerTotals {
                        runs: cells.runs.load(Ordering::Relaxed),
                        images: cells.images.load(Ordering::Relaxed),
                        wall_ns: cells.wall_ns.load(Ordering::Relaxed),
                        counters: cells.counters.load(),
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::StageKind;

    fn sample(layer: u32, wall_ns: u64, multiplies: u64) -> LayerSample {
        LayerSample {
            layer,
            stage: StageKind::Full,
            wall_ns,
            images: 1,
            counters: Counters {
                multiplies,
                dense_macs: multiplies * 2,
                ..Counters::new()
            },
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = Sink::disabled();
        assert!(!sink.is_enabled());
        assert_eq!(sink.layer_count(), 0);
        sink.record(&sample(0, 10, 5));
        assert_eq!(sink.ring_snapshot().recorded, 0);
        assert!(sink.layer_totals().is_empty());
    }

    #[test]
    fn enabled_sink_accumulates_exact_totals_per_layer() {
        let sink = Sink::enabled(vec!["a".into(), "b".into()], 16);
        assert!(sink.is_enabled());
        assert_eq!(sink.layer_count(), 2);
        sink.record(&sample(0, 100, 3));
        sink.record(&sample(1, 50, 7));
        sink.record(&sample(0, 200, 4));
        let totals = sink.layer_totals();
        assert_eq!(totals[0].0, "a");
        assert_eq!(totals[0].1.runs, 2);
        assert_eq!(totals[0].1.wall_ns, 300);
        assert_eq!(totals[0].1.counters.multiplies, 7);
        assert_eq!(totals[1].1.runs, 1);
        assert_eq!(totals[1].1.counters.multiplies, 7);
        assert_eq!(sink.ring_snapshot().samples.len(), 3);
    }

    #[test]
    fn totals_survive_ring_overflow() {
        let sink = Sink::enabled(vec!["only".into()], 2);
        for i in 0..100 {
            sink.record(&sample(0, 1, i));
        }
        let snap = sink.ring_snapshot();
        assert_eq!(snap.recorded, 100);
        assert_eq!(snap.dropped, 98);
        assert_eq!(snap.samples.len(), 2);
        let totals = sink.layer_totals();
        assert_eq!(totals[0].1.runs, 100);
        // Exact despite the tiny ring: 0 + 1 + … + 99.
        assert_eq!(totals[0].1.counters.multiplies, 4950);
    }

    #[test]
    fn out_of_range_layers_enter_the_ring_only() {
        let sink = Sink::enabled(vec!["a".into()], 8);
        sink.record(&sample(5, 10, 1));
        assert_eq!(sink.ring_snapshot().samples.len(), 1);
        assert_eq!(sink.layer_totals()[0].1.runs, 0);
    }

    #[test]
    fn clones_share_storage() {
        let sink = Sink::enabled(vec!["a".into()], 8);
        let clone = sink.clone();
        clone.record(&sample(0, 10, 2));
        assert_eq!(sink.layer_totals()[0].1.runs, 1);
    }
}
