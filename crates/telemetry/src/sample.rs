//! One telemetry record: which compiled stage ran, how long it took,
//! and the datapath events it generated.

use crate::counters::Counters;

/// Which portion of a compiled stage one sample covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// A full stage: convolution plus the output memory system
    /// (`Engine::run`).
    Full,
    /// Convolution only — the single-layer reference path
    /// (`run_layer` / `run_conv_only`), which owns its own output stage.
    ConvOnly,
}

impl StageKind {
    /// Stable short identifier used in printed tables.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StageKind::Full => "full",
            StageKind::ConvOnly => "conv",
        }
    }

    fn code(self) -> u64 {
        match self {
            StageKind::Full => 0,
            StageKind::ConvOnly => 1,
        }
    }

    fn from_code(code: u64) -> StageKind {
        if code & 1 == 1 {
            StageKind::ConvOnly
        } else {
            StageKind::Full
        }
    }
}

/// One per-stage execution record emitted by the engine's
/// instrumentation: the stage index, the portion executed, the wall
/// time, how many images the execution covered, and exactly the
/// [`Counters`] delta that stage contributed to the run's total.
///
/// A batched run (`Engine::run` on a `[B, …]` tensor) emits **one**
/// sample per stage covering all `B` images — `images` keeps the
/// per-layer image throughput exact even when the serving stack packs a
/// whole micro-batch into a single engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerSample {
    /// Compiled stage index (0-based, in network order).
    pub layer: u32,
    /// Which portion of the stage this sample covers.
    pub stage: StageKind,
    /// Wall-clock time of the stage, nanoseconds.
    pub wall_ns: u64,
    /// Number of images this stage execution processed (the run's batch
    /// dimension).
    pub images: u64,
    /// The stage's own counter delta (sums to the run total across all
    /// stages of one run).
    pub counters: Counters,
}

impl LayerSample {
    /// Number of `u64` words one encoded sample occupies in the ring:
    /// one packed `layer`/`stage` word, `wall_ns`, `images`, and the 11
    /// counter fields.
    pub(crate) const WORDS: usize = 14;

    /// Packs the sample into fixed-width words for the atomic ring.
    pub(crate) fn encode(&self) -> [u64; Self::WORDS] {
        // Exhaustive destructuring: adding a Counters field without
        // growing WORDS (and decode below) is a compile error.
        let Counters {
            dense_macs,
            multiplies,
            adds,
            sr_reads,
            sr_writes,
            psum_mem_reads,
            psum_mem_writes,
            input_mem_reads,
            weight_reads,
            dram_bits,
            cycles,
        } = self.counters;
        [
            (u64::from(self.layer) << 8) | self.stage.code(),
            self.wall_ns,
            self.images,
            dense_macs,
            multiplies,
            adds,
            sr_reads,
            sr_writes,
            psum_mem_reads,
            psum_mem_writes,
            input_mem_reads,
            weight_reads,
            dram_bits,
            cycles,
        ]
    }

    /// Inverse of [`encode`](Self::encode).
    pub(crate) fn decode(words: [u64; Self::WORDS]) -> LayerSample {
        let [tag, wall_ns, images, dense_macs, multiplies, adds, sr_reads, sr_writes, psum_mem_reads, psum_mem_writes, input_mem_reads, weight_reads, dram_bits, cycles] =
            words;
        LayerSample {
            layer: (tag >> 8) as u32,
            stage: StageKind::from_code(tag & 0xff),
            wall_ns,
            images,
            counters: Counters {
                dense_macs,
                multiplies,
                adds,
                sr_reads,
                sr_writes,
                psum_mem_reads,
                psum_mem_writes,
                input_mem_reads,
                weight_reads,
                dram_bits,
                cycles,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_round_trip_through_word_encoding() {
        let sample = LayerSample {
            layer: 0x00ab_cdef,
            stage: StageKind::ConvOnly,
            wall_ns: u64::MAX - 7,
            images: 42,
            counters: Counters {
                dense_macs: 1,
                multiplies: 2,
                adds: 3,
                sr_reads: 4,
                sr_writes: 5,
                psum_mem_reads: 6,
                psum_mem_writes: 7,
                input_mem_reads: 8,
                weight_reads: 9,
                dram_bits: u64::MAX,
                cycles: 11,
            },
        };
        assert_eq!(LayerSample::decode(sample.encode()), sample);
        let full = LayerSample {
            stage: StageKind::Full,
            ..sample
        };
        assert_eq!(LayerSample::decode(full.encode()), full);
    }
}
