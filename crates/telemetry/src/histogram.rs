//! Fixed-bucket latency histogram shared by the serving metrics and the
//! per-layer telemetry registry.

use std::time::Duration;

/// Number of latency buckets: powers of two from 1 µs to ~2¹⁵ seconds.
const BUCKETS: usize = 35;

/// Fixed-bucket latency histogram in microseconds.
///
/// Bucket `k` (for `k ≥ 1`) counts latencies in `[2^(k-1), 2^k)` µs;
/// bucket 0 counts sub-microsecond completions. Quantiles are reported
/// as the upper bound of the bucket holding the requested rank, clamped
/// to the exact maximum — a deterministic over-estimate that is at most
/// 2× the true quantile.
///
/// Quantile edge semantics (pinned by unit tests):
///
/// * an **empty** histogram reports 0 for every quantile;
/// * `q ≥ 1.0` reports the **exact** maximum ([`max_us`](Self::max_us)),
///   not a bucket bound;
/// * `q ≤ 0.0` (and NaN) clamp to the first recorded observation
///   (rank 1);
/// * every reported quantile is ≤ the exact maximum, so quantiles are
///   monotone in `q` even when all observations are sub-microsecond.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    fn bucket_index(us: u64) -> usize {
        ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one observed latency.
    pub fn record(&mut self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.counts[Self::bucket_index(us)] += 1;
        self.total += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The exact maximum recorded latency in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The `q`-quantile in microseconds — see the type docs for the
    /// exact edge semantics at `q ≤ 0.0`, `q ≥ 1.0`, and on an empty
    /// histogram.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max_us;
        }
        // NaN fails both comparisons and lands on rank 1, like q <= 0.
        let rank = if q > 0.0 {
            ((q * self.total as f64).ceil() as u64).clamp(1, self.total)
        } else {
            1
        };
        let mut cumulative = 0u64;
        for (k, count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                let upper = if k == 0 { 1 } else { 1u64 << k };
                return upper.min(self.max_us);
            }
        }
        self.max_us
    }

    /// Folds another histogram into this one: bucket-wise count sums,
    /// summed totals, and the larger exact maximum. This is how the
    /// telemetry registry combines per-layer windows collected from
    /// different sinks (e.g. across service restarts or shards) without
    /// losing bucket resolution.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += *theirs;
        }
        self.total += other.total;
        self.max_us = self.max_us.max(other.max_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [1u64, 2, 3, 100, 1000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.max_us(), 10_000);
        // Median rank 3 lands in the bucket holding 3 µs → upper bound 4.
        assert_eq!(h.quantile_us(0.5), 4);
        // p99 rank 6 lands in the 10 ms bucket → upper bound 2^14,
        // clamped to the exact max.
        assert_eq!(h.quantile_us(0.99), 10_000);
    }

    #[test]
    fn quantile_edges_are_pinned() {
        // Empty: every quantile (including the edges) is 0.
        let empty = LatencyHistogram::new();
        for q in [f64::NEG_INFINITY, -1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(empty.quantile_us(q), 0, "q={q}");
        }

        let mut h = LatencyHistogram::new();
        for us in [3u64, 40, 500] {
            h.record(Duration::from_micros(us));
        }
        // q ≤ 0 (and NaN) clamp to rank 1: the bucket of the smallest
        // observation (3 µs → upper bound 4).
        for q in [f64::NEG_INFINITY, -0.5, 0.0, f64::NAN] {
            assert_eq!(h.quantile_us(q), 4, "q={q}");
        }
        // q ≥ 1 reports the exact maximum, not a bucket upper bound.
        for q in [1.0, 1.5, f64::INFINITY] {
            assert_eq!(h.quantile_us(q), 500, "q={q}");
        }
    }

    #[test]
    fn sub_microsecond_histograms_stay_monotone() {
        // All observations below 1 µs: the exact max is 0, so every
        // quantile must report 0 (clamping to the bucket upper bound of
        // 1 would make quantile(0.5) > quantile(1.0)).
        let mut h = LatencyHistogram::new();
        for _ in 0..4 {
            h.record(Duration::from_nanos(200));
        }
        assert_eq!(h.max_us(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 0, "q={q}");
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LatencyHistogram::new();
        let mut state = 1u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(Duration::from_micros(state % 50_000));
        }
        let qs = [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0];
        for pair in qs.windows(2) {
            assert!(h.quantile_us(pair[0]) <= h.quantile_us(pair[1]));
        }
    }

    #[test]
    fn histogram_saturates_at_the_overflow_bucket() {
        // Latencies at or beyond 2^34 µs (~4.8 hours) — including
        // durations whose microsecond count does not even fit in u64 —
        // all land in the last bucket instead of indexing out of bounds.
        let mut h = LatencyHistogram::new();
        let huge = [
            Duration::from_micros(1 << 34),
            Duration::from_micros((1 << 34) + 123),
            Duration::from_micros(1 << 60),
            Duration::from_micros(u64::MAX),
            // as_micros() > u64::MAX: record() saturates the conversion.
            Duration::from_secs(u64::MAX),
        ];
        for d in huge {
            h.record(d);
        }
        assert_eq!(h.total(), huge.len() as u64);
        assert_eq!(h.max_us(), u64::MAX);
        // Every observation sits in the overflow bucket, so every
        // sub-1.0 quantile reports that bucket's upper bound; q = 1.0
        // reports the exact maximum.
        let overflow_upper = 1u64 << 34;
        for q in [0.01, 0.5, 0.99] {
            assert_eq!(h.quantile_us(q), overflow_upper, "q={q}");
        }
        assert_eq!(h.quantile_us(1.0), u64::MAX);
        // A small observation still resolves below the overflow bucket.
        h.record(Duration::from_micros(3));
        assert_eq!(h.quantile_us(0.01), 4);
    }

    #[test]
    fn merge_matches_recording_into_one_histogram() {
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        let mut state = 7u64;
        for i in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let d = Duration::from_micros(state % 20_000);
            if i % 2 == 0 {
                left.record(d);
            } else {
                right.record(d);
            }
            combined.record(d);
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, combined);
        assert_eq!(merged.total(), 300);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile_us(q), combined.quantile_us(q), "q={q}");
        }
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(42));
        let before = h.clone();
        h.merge(&LatencyHistogram::new());
        assert_eq!(h, before);
        let mut empty = LatencyHistogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
