//! The reader half of the subsystem: [`TelemetryRegistry`] folds a
//! sink's raw stream into per-layer aggregates, and
//! [`TelemetrySnapshot`] is the JSON-serializable export of that view.
//!
//! This unifies the three previously disjoint observability surfaces:
//! the engine's network-total [`Counters`], the analytic per-layer
//! report (`NetworkPerf`), and the serving stack's request-level
//! `Metrics` — one registry now answers "what did layer k actually do,
//! and how long did it take" from live execution data.

use crate::counters::Counters;
use crate::histogram::LatencyHistogram;
use crate::sink::Sink;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Per-layer aggregate: exact cumulative totals plus a latency
/// histogram over the ring's surviving sample window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerStats {
    /// Compiled stage index (0-based, network order).
    pub layer: usize,
    /// The stage's layer label (shape name).
    pub label: String,
    /// The layer's execution-mode string (e.g. `"dense"`, `"sparse"`,
    /// `"factorized"`, `"transferred"`); empty when the sink's producer
    /// didn't supply one.
    pub mode: String,
    /// Stage executions recorded since the sink was enabled (exact).
    /// A batched run counts once here regardless of its batch size.
    pub runs: u64,
    /// Images processed across those executions (exact): the sum of
    /// every sample's batch dimension.
    pub images: u64,
    /// Total wall time across those executions, nanoseconds (exact).
    pub wall_ns: u64,
    /// Cumulative counter totals across those executions (exact —
    /// accumulated atomically per sample, never lost to ring overflow).
    pub counters: Counters,
    /// Latency histogram over the ring's surviving window (lossy:
    /// bounded by the ring capacity).
    pub window: LatencyHistogram,
}

/// Per-layer telemetry folded out of a [`Sink`].
///
/// `collect` is cheap enough to call on every stats request: it reads
/// the per-layer atomics and walks the ring window once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryRegistry {
    layers: Vec<LayerStats>,
    recorded: u64,
    dropped: u64,
}

impl TelemetryRegistry {
    /// Folds the sink's current state into per-layer aggregates. A
    /// disabled sink yields an empty registry.
    #[must_use]
    pub fn collect(sink: &Sink) -> TelemetryRegistry {
        let modes = sink.layer_modes();
        let mut layers: Vec<LayerStats> = sink
            .layer_totals()
            .into_iter()
            .enumerate()
            .map(|(layer, (label, totals))| LayerStats {
                layer,
                label,
                mode: modes.get(layer).cloned().unwrap_or_default(),
                runs: totals.runs,
                images: totals.images,
                wall_ns: totals.wall_ns,
                counters: totals.counters,
                window: LatencyHistogram::new(),
            })
            .collect();
        let ring = sink.ring_snapshot();
        for sample in &ring.samples {
            if let Some(layer) = layers.get_mut(sample.layer as usize) {
                layer.window.record(Duration::from_nanos(sample.wall_ns));
            }
        }
        TelemetryRegistry {
            layers,
            recorded: ring.recorded,
            dropped: ring.dropped,
        }
    }

    /// The per-layer aggregates, in stage order.
    #[must_use]
    pub fn layers(&self) -> &[LayerStats] {
        &self.layers
    }

    /// Total samples ever recorded by the sink (including overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Samples lost to ring overflow (absent from the windows, still
    /// present in the cumulative totals).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Network-total counters: the sum of every layer's exact
    /// cumulative counters.
    #[must_use]
    pub fn total(&self) -> Counters {
        self.layers.iter().map(|l| l.counters).sum()
    }

    /// Folds another registry into this one, layer-by-layer: totals
    /// add, windows merge via [`LatencyHistogram::merge`], and layers
    /// only the other registry knows are appended. Used to combine
    /// registries collected from different sinks (shards, restarts).
    pub fn merge(&mut self, other: &TelemetryRegistry) {
        for theirs in &other.layers {
            match self.layers.iter_mut().find(|l| l.layer == theirs.layer) {
                Some(mine) => {
                    if mine.label.is_empty() {
                        mine.label = theirs.label.clone();
                    }
                    if mine.mode.is_empty() {
                        mine.mode = theirs.mode.clone();
                    }
                    mine.runs += theirs.runs;
                    mine.images += theirs.images;
                    mine.wall_ns += theirs.wall_ns;
                    mine.counters.merge(&theirs.counters);
                    mine.window.merge(&theirs.window);
                }
                None => self.layers.push(theirs.clone()),
            }
        }
        self.layers.sort_by_key(|l| l.layer);
        self.recorded += other.recorded;
        self.dropped += other.dropped;
    }

    /// The serializable export of this registry.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            layers: self
                .layers
                .iter()
                .map(|l| LayerTelemetry {
                    layer: l.layer as u64,
                    label: l.label.clone(),
                    mode: l.mode.clone(),
                    runs: l.runs,
                    images: l.images,
                    wall_ns: l.wall_ns,
                    window_samples: l.window.total(),
                    p50_us: l.window.quantile_us(0.50),
                    p95_us: l.window.quantile_us(0.95),
                    p99_us: l.window.quantile_us(0.99),
                    max_us: l.window.max_us(),
                    counters: l.counters,
                    mac_reduction: l.counters.mac_reduction(),
                })
                .collect(),
            recorded: self.recorded,
            dropped: self.dropped,
            total: self.total(),
        }
    }
}

/// One layer's row in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTelemetry {
    /// Compiled stage index (0-based, network order).
    pub layer: u64,
    /// The stage's layer label (shape name).
    pub label: String,
    /// The layer's execution-mode string (empty when unknown).
    pub mode: String,
    /// Stage executions recorded since the sink was enabled. A batched
    /// run counts once regardless of its batch size.
    pub runs: u64,
    /// Images processed across those executions (sum of sample batch
    /// dimensions).
    pub images: u64,
    /// Total wall time across those executions, nanoseconds.
    pub wall_ns: u64,
    /// Observations in the latency window the quantiles cover.
    pub window_samples: u64,
    /// Median stage latency upper bound over the window, microseconds.
    pub p50_us: u64,
    /// 95th-percentile stage latency upper bound, microseconds.
    pub p95_us: u64,
    /// 99th-percentile stage latency upper bound, microseconds.
    pub p99_us: u64,
    /// Exact maximum stage latency in the window, microseconds.
    pub max_us: u64,
    /// Exact cumulative counters for this layer.
    pub counters: Counters,
    /// The layer's reuse effectiveness: `dense_macs / multiplies`
    /// (paper Fig. 19, live instead of analytic).
    pub mac_reduction: f64,
}

/// Point-in-time, JSON-serializable per-layer telemetry — the payload
/// of the wire protocol's stats request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// One row per compiled stage, in network order.
    pub layers: Vec<LayerTelemetry>,
    /// Total samples ever recorded (including overwritten).
    pub recorded: u64,
    /// Samples lost to ring overflow.
    pub dropped: u64,
    /// Sum of every layer's cumulative counters.
    pub total: Counters,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{LayerSample, StageKind};

    fn sample(layer: u32, wall_ns: u64, multiplies: u64) -> LayerSample {
        LayerSample {
            layer,
            stage: StageKind::Full,
            wall_ns,
            images: 1,
            counters: Counters {
                multiplies,
                dense_macs: multiplies * 3,
                ..Counters::new()
            },
        }
    }

    #[test]
    fn collect_from_disabled_sink_is_empty() {
        let reg = TelemetryRegistry::collect(&Sink::disabled());
        assert!(reg.layers().is_empty());
        assert_eq!(reg.recorded(), 0);
        assert_eq!(reg.total(), Counters::new());
        assert!(reg.snapshot().layers.is_empty());
    }

    #[test]
    fn collect_builds_per_layer_aggregates_and_totals() {
        let sink = Sink::enabled(vec!["c1".into(), "c2".into()], 32);
        sink.record(&sample(0, 2_000, 10));
        sink.record(&sample(1, 9_000, 4));
        sink.record(&sample(0, 3_000, 10));
        let reg = TelemetryRegistry::collect(&sink);
        assert_eq!(reg.layers().len(), 2);
        let l0 = &reg.layers()[0];
        assert_eq!(l0.label, "c1");
        assert_eq!(l0.runs, 2);
        assert_eq!(l0.wall_ns, 5_000);
        assert_eq!(l0.counters.multiplies, 20);
        assert_eq!(l0.window.total(), 2);
        assert_eq!(reg.total().multiplies, 24);
        assert_eq!(reg.recorded(), 3);
        assert_eq!(reg.dropped(), 0);

        let snap = reg.snapshot();
        assert_eq!(snap.layers.len(), 2);
        assert_eq!(snap.layers[0].window_samples, 2);
        // 2 µs and 3 µs land in the [2,4) bucket → p50 upper bound 4.
        assert_eq!(snap.layers[0].p50_us, 3);
        assert_eq!(snap.layers[0].max_us, 3);
        assert_eq!(snap.layers[1].p99_us, 9);
        assert_eq!(snap.total.multiplies, 24);
        assert_eq!(snap.layers[0].mac_reduction, 3.0);
    }

    #[test]
    fn totals_are_exact_even_when_the_window_is_lossy() {
        let sink = Sink::enabled(vec!["only".into()], 4);
        for i in 1..=100u64 {
            sink.record(&sample(0, i, i));
        }
        let reg = TelemetryRegistry::collect(&sink);
        assert_eq!(reg.recorded(), 100);
        assert_eq!(reg.dropped(), 96);
        assert_eq!(reg.layers()[0].window.total(), 4);
        // Cumulative totals never drop: 1 + 2 + … + 100.
        assert_eq!(reg.layers()[0].counters.multiplies, 5050);
        assert_eq!(reg.total().multiplies, 5050);
    }

    #[test]
    fn merge_adds_totals_and_windows() {
        let a = Sink::enabled(vec!["c1".into(), "c2".into()], 32);
        let b = Sink::enabled(vec!["c1".into(), "c2".into()], 32);
        a.record(&sample(0, 2_000, 5));
        b.record(&sample(0, 8_000, 7));
        b.record(&sample(1, 1_000, 1));
        let mut merged = TelemetryRegistry::collect(&a);
        merged.merge(&TelemetryRegistry::collect(&b));
        assert_eq!(merged.layers()[0].runs, 2);
        assert_eq!(merged.layers()[0].counters.multiplies, 12);
        assert_eq!(merged.layers()[0].window.total(), 2);
        assert_eq!(merged.layers()[1].runs, 1);
        assert_eq!(merged.recorded(), 3);
        assert_eq!(merged.total().multiplies, 13);
    }

    #[test]
    fn modes_flow_from_sink_to_snapshot() {
        let sink = Sink::enabled_with_modes(
            vec!["c1".into(), "c2".into()],
            vec!["sparse".into(), "transferred".into()],
            8,
        );
        sink.record(&sample(0, 1_000, 2));
        let reg = TelemetryRegistry::collect(&sink);
        assert_eq!(reg.layers()[0].mode, "sparse");
        assert_eq!(reg.layers()[1].mode, "transferred");
        let snap = reg.snapshot();
        assert_eq!(snap.layers[0].mode, "sparse");
        // A mode-less registry merged into a mode-carrying one keeps
        // the known modes; the reverse direction adopts them.
        let plain = TelemetryRegistry::collect(&{
            let s = Sink::enabled(vec!["c1".into(), "c2".into()], 8);
            s.record(&sample(0, 500, 1));
            s
        });
        let mut merged = plain.clone();
        merged.merge(&reg);
        assert_eq!(merged.layers()[0].mode, "sparse");
        assert_eq!(merged.layers()[0].runs, 2);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let sink = Sink::enabled(vec!["c1".into(), "c2".into()], 32);
        sink.record(&sample(0, 2_500, 8));
        sink.record(&sample(1, 12_000, 2));
        let snap = TelemetryRegistry::collect(&sink).snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        assert!(text.contains("\"label\":\"c1\""), "{text}");
        let back: TelemetrySnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }
}
