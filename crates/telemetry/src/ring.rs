//! The lock-free sample ring: a fixed-capacity, multi-producer,
//! snapshot-reader buffer of encoded [`LayerSample`]s.
//!
//! Writers never block and never allocate: a `fetch_add` on the global
//! head hands out a ticket, the ticket picks a slot (`ticket %
//! capacity`), and the slot is published with a per-slot seqlock. The
//! per-slot sequence number is *derived from the ticket* (`2·ticket+1`
//! while writing, `2·ticket+2` when published), so sequence values are
//! strictly increasing across the slot's lifetime — a reader validating
//! "published, for exactly ticket `t`" can never confuse two laps of
//! the ring (no ABA). Sequence updates use `fetch_max`, so a slow
//! writer finishing a stale lap cannot roll the sequence backwards over
//! a newer writer's claim.
//!
//! Readers take a best-effort snapshot: slots that are mid-write (odd
//! or mismatched sequence) are skipped, never waited on. Overflow is
//! overwrite-oldest: once more than `capacity` samples have been
//! recorded, the oldest are gone and reported via
//! [`RingSnapshot::dropped`].

use crate::sample::LayerSample;
use std::sync::atomic::{fence, AtomicU64, Ordering};

const WORDS: usize = LayerSample::WORDS;

/// Multi-producer fixed-capacity sample ring (see module docs).
#[derive(Debug)]
pub(crate) struct Ring {
    capacity: u64,
    /// Total samples ever pushed; `head % capacity` is the next slot.
    head: AtomicU64,
    /// Per-slot seqlock words (one per slot).
    seq: Vec<AtomicU64>,
    /// Encoded sample payloads (`WORDS` per slot).
    words: Vec<AtomicU64>,
}

/// What a reader saw: the still-live window of samples plus the ring's
/// lifetime accounting.
#[derive(Debug, Clone)]
pub(crate) struct RingSnapshot {
    /// Total samples ever recorded (including overwritten ones).
    pub(crate) recorded: u64,
    /// Samples lost to overwrite-oldest overflow.
    pub(crate) dropped: u64,
    /// The surviving window, oldest first. May be shorter than the
    /// window if slots were mid-write at snapshot time.
    pub(crate) samples: Vec<LayerSample>,
}

impl Ring {
    /// A ring holding at most `capacity` samples (clamped to ≥ 1).
    pub(crate) fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        Ring {
            capacity: capacity as u64,
            head: AtomicU64::new(0),
            seq: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            words: (0..capacity * WORDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Publishes one sample (wait-free; overwrites the oldest slot when
    /// full).
    pub(crate) fn push(&self, sample: &LayerSample) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (ticket % self.capacity) as usize;
        let encoded = sample.encode();
        // Seqlock write (Boehm's fence recipe): claim odd, fence, write
        // the payload, publish even. `fetch_max` keeps the sequence
        // monotone even if a writer from a previous lap is still
        // in flight on this slot.
        self.seq[slot].fetch_max(2 * ticket + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (offset, word) in encoded.iter().enumerate() {
            self.words[slot * WORDS + offset].store(*word, Ordering::Relaxed);
        }
        self.seq[slot].fetch_max(2 * ticket + 2, Ordering::Release);
    }

    /// Reads the sample published for `ticket`, or `None` if the slot
    /// has moved on (overwritten or mid-write).
    fn read_ticket(&self, ticket: u64) -> Option<LayerSample> {
        let slot = (ticket % self.capacity) as usize;
        let expected = 2 * ticket + 2;
        if self.seq[slot].load(Ordering::Acquire) != expected {
            return None;
        }
        let mut words = [0u64; WORDS];
        for (offset, word) in words.iter_mut().enumerate() {
            *word = self.words[slot * WORDS + offset].load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        if self.seq[slot].load(Ordering::Relaxed) != expected {
            return None;
        }
        Some(LayerSample::decode(words))
    }

    /// Best-effort snapshot of the live window, oldest first.
    pub(crate) fn snapshot(&self) -> RingSnapshot {
        let recorded = self.head.load(Ordering::Acquire);
        let dropped = recorded.saturating_sub(self.capacity);
        let mut samples = Vec::with_capacity((recorded - dropped) as usize);
        for ticket in dropped..recorded {
            if let Some(sample) = self.read_ticket(ticket) {
                samples.push(sample);
            }
        }
        RingSnapshot {
            recorded,
            dropped,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;
    use crate::sample::StageKind;

    fn sample(layer: u32, wall_ns: u64) -> LayerSample {
        LayerSample {
            layer,
            stage: StageKind::Full,
            wall_ns,
            images: 1,
            counters: Counters {
                multiplies: u64::from(layer) + 1,
                ..Counters::new()
            },
        }
    }

    #[test]
    fn ring_keeps_everything_below_capacity() {
        let ring = Ring::new(8);
        for i in 0..5 {
            ring.push(&sample(i, u64::from(i) * 10));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.recorded, 5);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.samples.len(), 5);
        for (i, s) in snap.samples.iter().enumerate() {
            assert_eq!(s.layer, i as u32);
            assert_eq!(s.wall_ns, i as u64 * 10);
        }
    }

    #[test]
    fn overflow_overwrites_oldest_and_counts_drops() {
        let ring = Ring::new(4);
        for i in 0..10 {
            ring.push(&sample(i, 1));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.recorded, 10);
        assert_eq!(snap.dropped, 6);
        let layers: Vec<u32> = snap.samples.iter().map(|s| s.layer).collect();
        assert_eq!(layers, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = Ring::new(0);
        ring.push(&sample(3, 7));
        let snap = ring.snapshot();
        assert_eq!(snap.recorded, 1);
        assert_eq!(snap.samples.len(), 1);
        assert_eq!(snap.samples[0].layer, 3);
    }

    #[test]
    fn concurrent_pushes_yield_only_whole_samples() {
        use std::sync::Arc;
        let ring = Arc::new(Ring::new(64));
        let writers: Vec<_> = (0..4u32)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        // Each writer tags its samples so a torn read
                        // (mixed writers) would break the invariant
                        // checked below.
                        ring.push(&LayerSample {
                            layer: t,
                            stage: StageKind::Full,
                            wall_ns: t as u64 * 1_000_000 + i,
                            images: 1,
                            counters: Counters {
                                multiplies: t as u64 * 1_000_000 + i,
                                ..Counters::new()
                            },
                        });
                    }
                })
            })
            .collect();
        // Concurrent snapshots must only ever observe whole samples.
        for _ in 0..50 {
            for s in ring.snapshot().samples {
                assert_eq!(s.wall_ns, s.counters.multiplies);
                assert_eq!(s.layer as u64, s.wall_ns / 1_000_000);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        let snap = ring.snapshot();
        assert_eq!(snap.recorded, 2000);
        assert_eq!(snap.dropped, 2000 - 64);
        assert_eq!(snap.samples.len(), 64);
        for s in snap.samples {
            assert_eq!(s.wall_ns, s.counters.multiplies);
        }
    }
}
