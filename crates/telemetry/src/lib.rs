//! `tfe-telemetry` — per-layer reuse/latency telemetry for the TFE
//! engine.
//!
//! The paper's whole evaluation is a set of *per-layer breakdowns*
//! (per-layer speedup in Fig. 15/19, per-layer MAC/memory reductions
//! from PPSR/ERRR/SAFM); this crate makes those breakdowns a live,
//! queryable property of the running engine instead of an offline
//! analytic report:
//!
//! * [`Sink`] — the write side. A cloneable handle the engine's hot
//!   path records one [`LayerSample`] into per executed stage.
//!   [`Sink::disabled`] is a no-op (an `Option` branch — near-zero
//!   cost); an enabled sink feeds a **lock-free fixed-capacity ring**
//!   (seqlock slots, overwrite-oldest overflow) plus exact per-layer
//!   cumulative atomics.
//! * [`TelemetryRegistry`] — the read side. Folds a sink into
//!   per-layer aggregates: exact run/wall/counter totals and a
//!   [`LatencyHistogram`] over the ring's surviving window;
//!   [`TelemetryRegistry::merge`] combines registries across sinks.
//! * [`TelemetrySnapshot`] — the JSON-serializable export (the payload
//!   of `tfe-serve`'s stats request and `tfe-loadgen --stats` tables).
//!
//! The crate is a leaf (it depends only on the vendored serde facade)
//! and therefore also owns the two types the rest of the workspace
//! shares with it: the datapath [`Counters`] (re-exported by `tfe-sim`)
//! and the [`LatencyHistogram`] (re-exported by `tfe-serve`).
//!
//! Two invariants the workspace tests pin:
//!
//! * **Bit-identity** — recording must not perturb execution: with an
//!   enabled sink, `Engine::run` returns bit-identical activations and
//!   total counters to the disabled-sink path.
//! * **Exact decomposition** — per-layer cumulative counters sum
//!   exactly to the network-total counters returned by `Engine::run`,
//!   regardless of ring overflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod histogram;
pub mod registry;
mod ring;
pub mod sample;
pub mod sink;

pub use counters::Counters;
pub use histogram::LatencyHistogram;
pub use registry::{LayerStats, LayerTelemetry, TelemetryRegistry, TelemetrySnapshot};
pub use sample::{LayerSample, StageKind};
pub use sink::Sink;
