//! Event counters shared by the functional datapath, the performance
//! model, and the telemetry subsystem.
//!
//! Every counter corresponds to a physical event class in the TFE
//! microarchitecture, so the energy model (`tfe-energy`) can convert a
//! counter set into joules with per-event costs. The struct lives here
//! (rather than in `tfe-sim`, which re-exports it) so that telemetry
//! samples can carry counters without a dependency cycle.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// Counts of datapath and memory events for one simulation.
///
/// `multiplies` is the headline number: the actual multiplier activations
/// after PPSR/ERRR have removed repetitions. `dense_macs` is the work a
/// direct implementation would do; `dense_macs / multiplies` is the MAC
/// reduction of Fig. 19.
///
/// Counter sets serialize as flat JSON objects (via the vendored serde
/// facade), so serving metrics endpoints and load-generator reports can
/// emit snapshots directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// MACs a dense (uncompressed, no-reuse) implementation would execute.
    pub dense_macs: u64,
    /// Multiplier activations actually performed.
    pub multiplies: u64,
    /// Adder activations (PSum combination in SRs / adder trees).
    pub adds: u64,
    /// Stacked-register (SR group) reads.
    pub sr_reads: u64,
    /// Stacked-register (SR group) writes.
    pub sr_writes: u64,
    /// PSum-memory (on-chip SRAM) reads, in 16-bit words.
    pub psum_mem_reads: u64,
    /// PSum-memory (on-chip SRAM) writes, in 16-bit words.
    pub psum_mem_writes: u64,
    /// Input-memory reads (broadcast fetches), in 16-bit words.
    pub input_mem_reads: u64,
    /// Weight-register reads (loads into PEs), in 16-bit words.
    pub weight_reads: u64,
    /// Off-chip DRAM traffic, in bits.
    pub dram_bits: u64,
    /// Datapath cycles.
    pub cycles: u64,
}

impl Counters {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        Counters::default()
    }

    /// MAC reduction factor achieved by the reuse machinery
    /// (`dense_macs / multiplies`); 1.0 when nothing was saved.
    #[must_use]
    pub fn mac_reduction(&self) -> f64 {
        if self.multiplies == 0 {
            1.0
        } else {
            self.dense_macs as f64 / self.multiplies as f64
        }
    }

    /// Total on-chip register file activity (SR reads + writes).
    #[must_use]
    pub fn register_accesses(&self) -> u64 {
        self.sr_reads + self.sr_writes
    }

    /// Total on-chip SRAM activity in words (PSum + input memories).
    #[must_use]
    pub fn sram_accesses(&self) -> u64 {
        self.psum_mem_reads + self.psum_mem_writes + self.input_mem_reads + self.weight_reads
    }

    /// Folds another counter set into this one, component-wise.
    ///
    /// This is the reduction step of the parallel engine: each worker
    /// accumulates its own `Counters`, and the driver merges them in a
    /// fixed (work-unit) order. Because every field is a `u64` sum,
    /// merged totals are identical to sequential accumulation for any
    /// thread count or merge order.
    pub fn merge(&mut self, other: &Counters) {
        *self += *other;
    }
}

impl Add for Counters {
    type Output = Counters;
    fn add(self, rhs: Counters) -> Counters {
        Counters {
            dense_macs: self.dense_macs + rhs.dense_macs,
            multiplies: self.multiplies + rhs.multiplies,
            adds: self.adds + rhs.adds,
            sr_reads: self.sr_reads + rhs.sr_reads,
            sr_writes: self.sr_writes + rhs.sr_writes,
            psum_mem_reads: self.psum_mem_reads + rhs.psum_mem_reads,
            psum_mem_writes: self.psum_mem_writes + rhs.psum_mem_writes,
            input_mem_reads: self.input_mem_reads + rhs.input_mem_reads,
            weight_reads: self.weight_reads + rhs.weight_reads,
            dram_bits: self.dram_bits + rhs.dram_bits,
            cycles: self.cycles + rhs.cycles,
        }
    }
}

impl AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        *self = *self + rhs;
    }
}

/// Component-wise saturating difference: the per-stage delta the engine's
/// instrumentation computes between two snapshots of a monotonically
/// accumulating counter set. Saturating (instead of panicking/wrapping)
/// keeps telemetry harmless if a snapshot pair is ever taken out of
/// order; for in-order snapshots of one run the difference is exact.
impl Sub for Counters {
    type Output = Counters;
    fn sub(self, rhs: Counters) -> Counters {
        Counters {
            dense_macs: self.dense_macs.saturating_sub(rhs.dense_macs),
            multiplies: self.multiplies.saturating_sub(rhs.multiplies),
            adds: self.adds.saturating_sub(rhs.adds),
            sr_reads: self.sr_reads.saturating_sub(rhs.sr_reads),
            sr_writes: self.sr_writes.saturating_sub(rhs.sr_writes),
            psum_mem_reads: self.psum_mem_reads.saturating_sub(rhs.psum_mem_reads),
            psum_mem_writes: self.psum_mem_writes.saturating_sub(rhs.psum_mem_writes),
            input_mem_reads: self.input_mem_reads.saturating_sub(rhs.input_mem_reads),
            weight_reads: self.weight_reads.saturating_sub(rhs.weight_reads),
            dram_bits: self.dram_bits.saturating_sub(rhs.dram_bits),
            cycles: self.cycles.saturating_sub(rhs.cycles),
        }
    }
}

impl std::iter::Sum for Counters {
    fn sum<I: Iterator<Item = Counters>>(iter: I) -> Counters {
        iter.fold(Counters::new(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_reduction_handles_zero_multiplies() {
        let c = Counters::new();
        assert_eq!(c.mac_reduction(), 1.0);
        let c = Counters {
            dense_macs: 90,
            multiplies: 40,
            ..Counters::new()
        };
        assert_eq!(c.mac_reduction(), 2.25);
    }

    #[test]
    fn addition_is_componentwise() {
        let a = Counters {
            multiplies: 3,
            cycles: 10,
            ..Counters::new()
        };
        let b = Counters {
            multiplies: 4,
            sr_reads: 2,
            ..Counters::new()
        };
        let c = a + b;
        assert_eq!(c.multiplies, 7);
        assert_eq!(c.cycles, 10);
        assert_eq!(c.sr_reads, 2);
    }

    #[test]
    fn subtraction_recovers_deltas_and_saturates() {
        let before = Counters {
            multiplies: 10,
            adds: 4,
            ..Counters::new()
        };
        let after = Counters {
            multiplies: 25,
            adds: 4,
            cycles: 7,
            ..Counters::new()
        };
        let delta = after - before;
        assert_eq!(delta.multiplies, 15);
        assert_eq!(delta.adds, 0);
        assert_eq!(delta.cycles, 7);
        // Out-of-order snapshots clamp to zero instead of wrapping.
        let clamped = before - after;
        assert_eq!(clamped.multiplies, 0);
        assert_eq!(clamped.cycles, 0);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            Counters {
                dram_bits: 16,
                ..Counters::new()
            };
            3
        ];
        let total: Counters = parts.into_iter().sum();
        assert_eq!(total.dram_bits, 48);
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        let parts = [
            Counters {
                multiplies: 10,
                adds: 3,
                ..Counters::new()
            },
            Counters {
                multiplies: 7,
                psum_mem_writes: 9,
                ..Counters::new()
            },
            Counters {
                cycles: 100,
                ..Counters::new()
            },
        ];
        let mut merged = Counters::new();
        for part in &parts {
            merged.merge(part);
        }
        let summed: Counters = parts.into_iter().sum();
        assert_eq!(merged, summed);
    }

    #[test]
    fn counters_round_trip_through_json() {
        let c = Counters {
            dense_macs: 1000,
            multiplies: 250,
            adds: 750,
            sr_reads: 11,
            sr_writes: 22,
            psum_mem_reads: 33,
            psum_mem_writes: 44,
            input_mem_reads: 55,
            weight_reads: 66,
            dram_bits: u64::MAX,
            cycles: 99,
        };
        let text = serde_json::to_string(&c).unwrap();
        assert!(text.contains("\"dense_macs\":1000"), "{text}");
        assert!(
            text.contains("\"dram_bits\":18446744073709551615"),
            "{text}"
        );
        let back: Counters = serde_json::from_str(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn aggregate_accessors() {
        let c = Counters {
            sr_reads: 5,
            sr_writes: 7,
            psum_mem_reads: 1,
            psum_mem_writes: 2,
            input_mem_reads: 3,
            weight_reads: 4,
            ..Counters::new()
        };
        assert_eq!(c.register_accesses(), 12);
        assert_eq!(c.sram_accesses(), 10);
    }
}
