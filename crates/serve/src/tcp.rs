//! std-only TCP front-end speaking the length-prefixed JSON protocol.
//!
//! The listener runs non-blocking with a short accept poll so shutdown
//! needs no self-connection trick; each accepted connection gets its own
//! handler thread that serves frames back-to-back. Handlers idle with a
//! short read timeout between frames (checking the stop flag), but once
//! a frame's first byte arrives they finish it without a timeout — no
//! partial frame is ever dropped.
//!
//! The server is generic over a [`Frontend`]: a single-model [`Client`]
//! serves one compiled engine (protocol v1 behavior), and
//! `tfe_fleet::FleetClient` routes by the v2 `model` field across many
//! shards — the transport, framing, and dispatch loop are shared.

use crate::protocol::{read_frame_after, write_frame, WireRequest, WireResponse};
use crate::service::{Client, ServeResult};
use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tfe_tensor::fixed::Fx16;
use tfe_tensor::tensor::Tensor4;

/// Accept-loop poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Idle read timeout between frames on an open connection.
const IDLE_READ_TIMEOUT: Duration = Duration::from_millis(50);

/// What a [`TcpServer`] serves: anything that can run one inference
/// (optionally routed by model id) and answer a stats request.
///
/// Implementations must be cheap to clone — the accept loop clones the
/// frontend once per connection handler thread.
pub trait Frontend: Clone + Send + 'static {
    /// Runs one inference to completion. `model_id` of `None` targets
    /// the endpoint's default model; `deadline` of `None` applies the
    /// endpoint's default deadline policy.
    ///
    /// # Errors
    ///
    /// A typed [`Rejected`](crate::service::Rejected) for admission or
    /// in-flight failures (including `UnknownModel` from a routing
    /// endpoint).
    fn infer_routed(
        &self,
        model_id: Option<&str>,
        input: Tensor4<Fx16>,
        deadline: Option<Duration>,
    ) -> ServeResult;

    /// Builds the endpoint's full stats response.
    fn stats_response(&self) -> WireResponse;
}

/// A single-model service is the degenerate fleet: every request runs
/// the one compiled engine regardless of `model_id`, and stats carry no
/// per-model breakdown.
impl Frontend for Client {
    fn infer_routed(
        &self,
        _model_id: Option<&str>,
        input: Tensor4<Fx16>,
        deadline: Option<Duration>,
    ) -> ServeResult {
        let submitted = match deadline {
            // An explicit wire deadline overrides the service default.
            Some(d) => self.submit_with_deadline(input, Some(d)),
            None => self.submit(input),
        };
        submitted.and_then(|ticket| ticket.wait())
    }

    fn stats_response(&self) -> WireResponse {
        WireResponse::Stats {
            metrics: self.stats(),
            telemetry: self.telemetry(),
            models: None,
        }
    }
}

/// A TCP listener serving one [`Frontend`].
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds and starts serving. Use port 0 for an ephemeral port and
    /// read it back with [`local_addr`](Self::local_addr).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn bind<F: Frontend>(addr: impl ToSocketAddrs, frontend: F) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("tfe-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &frontend, &stop))?
        };
        Ok(TcpServer {
            local_addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, waits for every connection handler to finish its
    /// in-flight frame, and joins the threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop<F: Frontend>(listener: &TcpListener, frontend: &F, stop: &Arc<AtomicBool>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let frontend = frontend.clone();
                let stop = Arc::clone(stop);
                let spawned = std::thread::Builder::new()
                    .name("tfe-serve-conn".to_owned())
                    .spawn(move || {
                        let _ = handle_connection(stream, &frontend, &stop);
                    });
                if let Ok(handle) = spawned {
                    handlers.push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

fn handle_connection<F: Frontend>(
    mut stream: TcpStream,
    frontend: &F,
    stop: &AtomicBool,
) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_nonblocking(false)?;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Idle with a timeout so shutdown is observed; a timed-out
        // single-byte read consumes nothing.
        stream.set_read_timeout(Some(IDLE_READ_TIMEOUT))?;
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(0) => return Ok(()), // peer closed cleanly
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        // A frame has started: finish it untimed so it cannot be torn.
        stream.set_read_timeout(None)?;
        let payload = read_frame_after(first[0], &mut stream)?;
        let response = dispatch(&payload, frontend);
        write_frame(&mut stream, response.to_json().as_bytes())?;
    }
}

/// Executes one decoded frame against the frontend.
fn dispatch<F: Frontend>(payload: &[u8], frontend: &F) -> WireResponse {
    let Ok(text) = std::str::from_utf8(payload) else {
        return WireResponse::Error {
            message: "payload is not UTF-8".to_owned(),
        };
    };
    match WireRequest::from_json(text) {
        Ok(WireRequest::Infer {
            input,
            deadline_ms,
            model_id,
        }) => {
            let deadline = deadline_ms.map(Duration::from_millis);
            match frontend.infer_routed(model_id.as_deref(), input, deadline) {
                Ok(reply) => WireResponse::Ok {
                    activations: reply.activations,
                    counters: reply.counters,
                    latency_us: u64::try_from(reply.latency.as_micros()).unwrap_or(u64::MAX),
                },
                Err(rejected) => WireResponse::Rejected {
                    reason: rejected.reason().to_owned(),
                },
            }
        }
        Ok(WireRequest::Stats) => frontend.stats_response(),
        Err(e) => WireResponse::Error {
            message: e.to_string(),
        },
    }
}
