//! std-only TCP front-end speaking the length-prefixed JSON protocol.
//!
//! The listener runs non-blocking with a short accept poll so shutdown
//! needs no self-connection trick; each accepted connection gets its own
//! handler thread that serves frames back-to-back. Handlers idle with a
//! short read timeout between frames (checking the stop flag), but once
//! a frame's first byte arrives they finish it without a timeout — no
//! partial frame is ever dropped.

use crate::protocol::{read_frame_after, write_frame, WireRequest, WireResponse};
use crate::service::Client;
use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Accept-loop poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Idle read timeout between frames on an open connection.
const IDLE_READ_TIMEOUT: Duration = Duration::from_millis(50);

/// A TCP listener serving one [`Client`]'s service.
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds and starts serving. Use port 0 for an ephemeral port and
    /// read it back with [`local_addr`](Self::local_addr).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn bind(addr: impl ToSocketAddrs, client: Client) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("tfe-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &client, &stop))?
        };
        Ok(TcpServer {
            local_addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, waits for every connection handler to finish its
    /// in-flight frame, and joins the threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, client: &Client, stop: &Arc<AtomicBool>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let client = client.clone();
                let stop = Arc::clone(stop);
                let spawned = std::thread::Builder::new()
                    .name("tfe-serve-conn".to_owned())
                    .spawn(move || {
                        let _ = handle_connection(stream, &client, &stop);
                    });
                if let Ok(handle) = spawned {
                    handlers.push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

fn handle_connection(mut stream: TcpStream, client: &Client, stop: &AtomicBool) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_nonblocking(false)?;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Idle with a timeout so shutdown is observed; a timed-out
        // single-byte read consumes nothing.
        stream.set_read_timeout(Some(IDLE_READ_TIMEOUT))?;
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(0) => return Ok(()), // peer closed cleanly
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        // A frame has started: finish it untimed so it cannot be torn.
        stream.set_read_timeout(None)?;
        let payload = read_frame_after(first[0], &mut stream)?;
        let response = dispatch(&payload, client);
        write_frame(&mut stream, response.to_json().as_bytes())?;
    }
}

/// Executes one decoded frame against the service.
fn dispatch(payload: &[u8], client: &Client) -> WireResponse {
    let Ok(text) = std::str::from_utf8(payload) else {
        return WireResponse::Error {
            message: "payload is not UTF-8".to_owned(),
        };
    };
    match WireRequest::from_json(text) {
        Ok(WireRequest::Infer { input, deadline_ms }) => {
            let submitted = match deadline_ms {
                // An explicit wire deadline overrides the service default.
                Some(ms) => client.submit_with_deadline(input, Some(Duration::from_millis(ms))),
                None => client.submit(input),
            };
            match submitted.and_then(|ticket| ticket.wait()) {
                Ok(reply) => WireResponse::Ok {
                    activations: reply.activations,
                    counters: reply.counters,
                    latency_us: u64::try_from(reply.latency.as_micros()).unwrap_or(u64::MAX),
                },
                Err(rejected) => WireResponse::Rejected {
                    reason: rejected.reason().to_owned(),
                },
            }
        }
        Ok(WireRequest::Stats) => WireResponse::Stats {
            metrics: client.stats(),
            telemetry: client.telemetry(),
        },
        Err(e) => WireResponse::Error {
            message: e.to_string(),
        },
    }
}
