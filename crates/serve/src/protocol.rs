//! The serving wire protocol: length-prefixed JSON frames.
//!
//! Every message is a 4-byte big-endian payload length followed by one
//! UTF-8 JSON object carrying a `"kind"` discriminator. Activations
//! travel as raw Q8.8 bit patterns (`i16` per sample), so a response is
//! bit-identical to the in-process result — JSON float formatting never
//! touches the data path.
//!
//! Requests: `infer` (dims + bits + optional relative `deadline_ms` +
//! optional `model` id) and `stats`. Responses: `ok` (dims + bits +
//! per-request counters + latency), `rejected` (a stable reason string
//! from [`Rejected::reason`](crate::service::Rejected::reason)), `stats`
//! (a [`MetricsSnapshot`] plus a per-layer [`TelemetrySnapshot`], and —
//! from a fleet endpoint — a per-model [`ModelStats`] list), and
//! `error` (malformed request).
//!
//! **Version 2** ([`PROTOCOL_VERSION`]) added multi-model serving:
//! `infer` frames may carry a `model` field naming which model of a
//! fleet endpoint should run the request, and `stats` responses may
//! carry a `models` array with per-model routing/latency/telemetry
//! breakdowns. Both fields are strictly optional and omitted when
//! absent, so version-1 single-model clients and servers interoperate
//! unchanged: a request without `model` runs the endpoint's default
//! model, and a version-1 parser never sees a field it does not know.
//! A fleet endpoint answers a `model` id it does not serve with the
//! typed `unknown_model` rejection reason.
//!
//! Everything rides the vendored `serde`/`serde_json` facades — the
//! protocol adds no network or serialization dependencies.

use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{self, Read, Write};
use tfe_sim::counters::Counters;
use tfe_telemetry::TelemetrySnapshot;
use tfe_tensor::fixed::Fx16;
use tfe_tensor::tensor::Tensor4;

/// Wire-protocol version implemented by this build. Version 2 added the
/// optional `model` request field and the optional `models` stats
/// response field (multi-model fleet serving); both are
/// backward-compatible extensions of version 1.
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on one frame's payload (guards against hostile or
/// corrupt length prefixes).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Protocol-level failure: transport or message shape.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The payload was not a well-formed protocol message.
    Malformed(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Malformed(_) => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<serde_json::Error> for ProtocolError {
    fn from(e: serde_json::Error) -> Self {
        ProtocolError::Malformed(e.to_string())
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates stream errors; rejects payloads over [`MAX_FRAME_BYTES`].
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    let len = u32::try_from(payload.len()).expect("bounded by MAX_FRAME_BYTES");
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Propagates stream errors; rejects oversized length prefixes and EOF
/// inside a frame.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut first = [0u8; 1];
    loop {
        return match reader.read(&mut first) {
            Ok(0) => Ok(None),
            Ok(_) => read_frame_after(first[0], reader).map(Some),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => Err(e),
        };
    }
}

/// Completes a frame whose first length byte was already consumed (the
/// polled TCP accept path reads one byte with a timeout, then finishes
/// the frame without losing it).
///
/// # Errors
///
/// Propagates stream errors; rejects oversized length prefixes.
pub fn read_frame_after(first: u8, reader: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut rest = [0u8; 3];
    reader.read_exact(&mut rest)?;
    let len = u32::from_be_bytes([first, rest[0], rest[1], rest[2]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME_BYTES",
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Run one `[1, C, H, W]` image.
    Infer {
        /// The input image.
        input: Tensor4<Fx16>,
        /// Optional deadline relative to server receipt, milliseconds.
        deadline_ms: Option<u64>,
        /// Optional model id (protocol v2). `None` runs the endpoint's
        /// default model — exactly what a v1 client gets; a fleet
        /// endpoint routes `Some(id)` to that model's shard and rejects
        /// unserved ids with the `unknown_model` reason.
        model_id: Option<String>,
    },
    /// Fetch a metrics snapshot.
    Stats,
}

/// One model's row in a fleet `stats` response (protocol v2): routing
/// accounting, merged request-latency quantiles across that model's
/// replicas (live and retired generations), and the model's merged
/// per-layer [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// The model id requests route by.
    pub model: String,
    /// Live replica services in the model's shard.
    pub replicas: u64,
    /// Completed zero-downtime engine hot-swaps on this shard.
    pub swaps: u64,
    /// Requests the router dispatched to this shard.
    pub dispatched: u64,
    /// Requests shed by this shard's admission queues (queue-full).
    pub shed: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests dropped after their deadline expired.
    pub expired: u64,
    /// Requests failed by a simulator error.
    pub failed: u64,
    /// Micro-batches executed across the shard's replicas.
    pub batches: u64,
    /// Requests that rode those batches.
    pub batched_requests: u64,
    /// Median request latency upper bound, microseconds (merged across
    /// replicas).
    pub p50_us: u64,
    /// 95th-percentile request latency upper bound, microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency upper bound, microseconds.
    pub p99_us: u64,
    /// Exact maximum request latency, microseconds.
    pub max_us: u64,
    /// Per-layer telemetry merged across the shard's engine generations
    /// (live + every hot-swapped-out predecessor).
    pub telemetry: TelemetrySnapshot,
}

/// A server → client message.
#[derive(Debug, Clone)]
pub enum WireResponse {
    /// Successful inference.
    Ok {
        /// Output activations (bit-identical to the in-process result).
        activations: Tensor4<Fx16>,
        /// This request's simulator counters.
        counters: Counters,
        /// Admission-to-completion latency, microseconds.
        latency_us: u64,
    },
    /// The request was refused or dropped.
    Rejected {
        /// Stable reason identifier (`queue_full`, `deadline_exceeded`,
        /// `shutting_down`, `sim_error`).
        reason: String,
    },
    /// Metrics + per-layer telemetry snapshot.
    Stats {
        /// The request-level metrics snapshot at receipt time.
        metrics: MetricsSnapshot,
        /// The per-layer telemetry snapshot at receipt time (one entry
        /// per compiled stage; a fleet endpoint reports fleet-wide
        /// totals here and the per-model layer views in `models`).
        telemetry: TelemetrySnapshot,
        /// Per-model breakdown (protocol v2). `None` from a single-model
        /// endpoint — the field is omitted from the frame entirely, so
        /// v1 clients parse the response unchanged.
        models: Option<Vec<ModelStats>>,
    },
    /// The request could not be understood.
    Error {
        /// Human-readable diagnosis.
        message: String,
    },
}

fn tensor_to_fields(t: &Tensor4<Fx16>) -> (Value, Value) {
    let dims = Value::Array(t.dims().iter().map(|&d| Value::U64(d as u64)).collect());
    let bits = Value::Array(
        t.as_slice()
            .iter()
            .map(|fx| Value::I64(i64::from(fx.to_bits())))
            .collect(),
    );
    (dims, bits)
}

fn tensor_from_fields(value: &Value) -> Result<Tensor4<Fx16>, ProtocolError> {
    let dims: Vec<u64> = field(value, "dims")?;
    let bits: Vec<i16> = field(value, "bits")?;
    let dims: [usize; 4] = dims
        .iter()
        .map(|&d| usize::try_from(d).map_err(|_| malformed("dimension out of range")))
        .collect::<Result<Vec<_>, _>>()?
        .try_into()
        .map_err(|_| malformed("dims must have exactly 4 entries"))?;
    let samples: Vec<Fx16> = bits.into_iter().map(Fx16::from_bits).collect();
    Tensor4::from_vec(dims, samples).map_err(|e| malformed(format!("tensor shape mismatch: {e}")))
}

fn malformed(message: impl Into<String>) -> ProtocolError {
    ProtocolError::Malformed(message.into())
}

fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, ProtocolError> {
    let inner = value
        .get_field(name)
        .ok_or_else(|| malformed(format!("missing field '{name}'")))?;
    T::from_value(inner).map_err(|e| malformed(format!("field '{name}': {e}")))
}

fn kind_of(value: &Value) -> Result<String, ProtocolError> {
    field(value, "kind")
}

impl WireRequest {
    /// Renders the request as one JSON payload.
    #[must_use]
    pub fn to_json(&self) -> String {
        let value = match self {
            WireRequest::Infer {
                input,
                deadline_ms,
                model_id,
            } => {
                let (dims, bits) = tensor_to_fields(input);
                let mut fields = vec![
                    ("kind".to_owned(), Value::Str("infer".to_owned())),
                    ("dims".to_owned(), dims),
                    ("bits".to_owned(), bits),
                ];
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".to_owned(), Value::U64(*ms)));
                }
                if let Some(model) = model_id {
                    fields.push(("model".to_owned(), Value::Str(model.clone())));
                }
                Value::Object(fields)
            }
            WireRequest::Stats => {
                Value::Object(vec![("kind".to_owned(), Value::Str("stats".to_owned()))])
            }
        };
        serde_json::to_string(&value).expect("facade rendering is infallible")
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] for bad JSON, an unknown kind, or a
    /// shape mismatch.
    pub fn from_json(text: &str) -> Result<WireRequest, ProtocolError> {
        let value: Value = serde_json::from_str(text)?;
        match kind_of(&value)?.as_str() {
            "infer" => Ok(WireRequest::Infer {
                input: tensor_from_fields(&value)?,
                deadline_ms: match value.get_field("deadline_ms") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(
                        u64::from_value(v)
                            .map_err(|e| malformed(format!("field 'deadline_ms': {e}")))?,
                    ),
                },
                model_id: match value.get_field("model") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(
                        String::from_value(v)
                            .map_err(|e| malformed(format!("field 'model': {e}")))?,
                    ),
                },
            }),
            "stats" => Ok(WireRequest::Stats),
            other => Err(malformed(format!("unknown request kind '{other}'"))),
        }
    }
}

impl WireResponse {
    /// Renders the response as one JSON payload.
    #[must_use]
    pub fn to_json(&self) -> String {
        let value = match self {
            WireResponse::Ok {
                activations,
                counters,
                latency_us,
            } => {
                let (dims, bits) = tensor_to_fields(activations);
                Value::Object(vec![
                    ("kind".to_owned(), Value::Str("ok".to_owned())),
                    ("dims".to_owned(), dims),
                    ("bits".to_owned(), bits),
                    ("counters".to_owned(), counters.to_value()),
                    ("latency_us".to_owned(), Value::U64(*latency_us)),
                ])
            }
            WireResponse::Rejected { reason } => Value::Object(vec![
                ("kind".to_owned(), Value::Str("rejected".to_owned())),
                ("reason".to_owned(), Value::Str(reason.clone())),
            ]),
            WireResponse::Stats {
                metrics,
                telemetry,
                models,
            } => {
                let mut fields = vec![
                    ("kind".to_owned(), Value::Str("stats".to_owned())),
                    ("metrics".to_owned(), metrics.to_value()),
                    ("telemetry".to_owned(), telemetry.to_value()),
                ];
                if let Some(models) = models {
                    fields.push(("models".to_owned(), models.to_value()));
                }
                Value::Object(fields)
            }
            WireResponse::Error { message } => Value::Object(vec![
                ("kind".to_owned(), Value::Str("error".to_owned())),
                ("message".to_owned(), Value::Str(message.clone())),
            ]),
        };
        serde_json::to_string(&value).expect("facade rendering is infallible")
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] for bad JSON, an unknown kind, or a
    /// shape mismatch.
    pub fn from_json(text: &str) -> Result<WireResponse, ProtocolError> {
        let value: Value = serde_json::from_str(text)?;
        match kind_of(&value)?.as_str() {
            "ok" => Ok(WireResponse::Ok {
                activations: tensor_from_fields(&value)?,
                counters: field(&value, "counters")?,
                latency_us: field(&value, "latency_us")?,
            }),
            "rejected" => Ok(WireResponse::Rejected {
                reason: field(&value, "reason")?,
            }),
            "stats" => Ok(WireResponse::Stats {
                metrics: field(&value, "metrics")?,
                telemetry: field(&value, "telemetry")?,
                models: match value.get_field("models") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(
                        Vec::<ModelStats>::from_value(v)
                            .map_err(|e| malformed(format!("field 'models': {e}")))?,
                    ),
                },
            }),
            "error" => Ok(WireResponse::Error {
                message: field(&value, "message")?,
            }),
            other => Err(malformed(format!("unknown response kind '{other}'"))),
        }
    }
}

/// Blocking request/response round-trip over any byte stream (the
/// client side of the protocol — used by the smoke tests and any
/// external caller).
///
/// # Errors
///
/// Transport failures or a malformed / truncated response.
pub fn roundtrip<S: Read + Write>(
    stream: &mut S,
    request: &WireRequest,
) -> Result<WireResponse, ProtocolError> {
    write_frame(stream, request.to_json().as_bytes())?;
    let frame =
        read_frame(stream)?.ok_or_else(|| malformed("connection closed before the response"))?;
    let text = std::str::from_utf8(&frame).map_err(|_| malformed("response is not UTF-8"))?;
    WireResponse::from_json(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn demo_tensor() -> Tensor4<Fx16> {
        Tensor4::from_fn([1, 2, 3, 3], |[_, c, y, x]| {
            Fx16::from_bits((c as i16 * 100 + y as i16 * 10 + x as i16) - 55)
        })
    }

    #[test]
    fn infer_request_round_trips_bit_exactly() {
        let request = WireRequest::Infer {
            input: demo_tensor(),
            deadline_ms: Some(250),
            model_id: None,
        };
        let back = WireRequest::from_json(&request.to_json()).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn infer_request_round_trips_a_model_id() {
        let request = WireRequest::Infer {
            input: demo_tensor(),
            deadline_ms: None,
            model_id: Some("alexnet".to_owned()),
        };
        let text = request.to_json();
        assert!(text.contains("\"model\""));
        let back = WireRequest::from_json(&text).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn v1_infer_frame_without_model_still_parses() {
        // A version-1 client never sends `model`; it must parse as the
        // default-model request.
        let text = r#"{"kind":"infer","dims":[1,1,1,2],"bits":[3,-4]}"#;
        match WireRequest::from_json(text).unwrap() {
            WireRequest::Infer {
                deadline_ms,
                model_id,
                ..
            } => {
                assert_eq!(deadline_ms, None);
                assert_eq!(model_id, None);
            }
            other => panic!("expected infer, got {other:?}"),
        }
    }

    #[test]
    fn stats_request_round_trips() {
        let text = WireRequest::Stats.to_json();
        assert_eq!(WireRequest::from_json(&text).unwrap(), WireRequest::Stats);
    }

    #[test]
    fn ok_response_round_trips() {
        let response = WireResponse::Ok {
            activations: demo_tensor(),
            counters: Counters {
                dense_macs: 42,
                multiplies: 10,
                ..Counters::new()
            },
            latency_us: 1234,
        };
        match WireResponse::from_json(&response.to_json()).unwrap() {
            WireResponse::Ok {
                activations,
                counters,
                latency_us,
            } => {
                assert_eq!(activations, demo_tensor());
                assert_eq!(counters.dense_macs, 42);
                assert_eq!(latency_us, 1234);
            }
            other => panic!("expected ok, got {other:?}"),
        }
    }

    #[test]
    fn stats_response_round_trips_with_telemetry() {
        use tfe_telemetry::{LayerSample, Sink, StageKind, TelemetryRegistry};
        let sink = Sink::enabled(vec!["c1".into(), "c2".into()], 16);
        for (layer, wall_ns) in [(0u32, 2_500u64), (1, 40_000), (0, 3_000)] {
            sink.record(&LayerSample {
                layer,
                stage: StageKind::Full,
                wall_ns,
                images: 1,
                counters: Counters {
                    dense_macs: 64,
                    multiplies: 16,
                    ..Counters::new()
                },
            });
        }
        let telemetry = TelemetryRegistry::collect(&sink).snapshot();
        let response = WireResponse::Stats {
            metrics: Metrics::new().snapshot(0),
            telemetry: telemetry.clone(),
            models: None,
        };
        // A single-model endpoint omits the v2 field entirely.
        assert!(!response.to_json().contains("\"models\""));
        match WireResponse::from_json(&response.to_json()).unwrap() {
            WireResponse::Stats {
                telemetry: back,
                models,
                ..
            } => {
                assert_eq!(back, telemetry);
                assert_eq!(back.layers.len(), 2);
                assert_eq!(back.layers[0].label, "c1");
                assert_eq!(back.layers[0].runs, 2);
                assert_eq!(back.total.multiplies, 48);
                assert_eq!(models, None);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn stats_response_round_trips_per_model_rows() {
        use tfe_telemetry::{LayerSample, Sink, StageKind, TelemetryRegistry};
        let sink = Sink::enabled(vec!["conv1".into()], 8);
        sink.record(&LayerSample {
            layer: 0,
            stage: StageKind::Full,
            wall_ns: 5_000,
            images: 1,
            counters: Counters {
                multiplies: 9,
                ..Counters::new()
            },
        });
        let row = ModelStats {
            model: "lenet".to_owned(),
            replicas: 2,
            swaps: 1,
            dispatched: 40,
            shed: 3,
            completed: 37,
            expired: 0,
            failed: 0,
            batches: 10,
            batched_requests: 37,
            p50_us: 120,
            p95_us: 400,
            p99_us: 900,
            max_us: 1500,
            telemetry: TelemetryRegistry::collect(&sink).snapshot(),
        };
        let response = WireResponse::Stats {
            metrics: Metrics::new().snapshot(0),
            telemetry: TelemetryRegistry::default().snapshot(),
            models: Some(vec![row.clone()]),
        };
        match WireResponse::from_json(&response.to_json()).unwrap() {
            WireResponse::Stats { models, .. } => {
                let rows = models.expect("models field survives the round trip");
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0], row);
                assert_eq!(rows[0].telemetry.layers[0].label, "conv1");
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(WireRequest::from_json("not json").is_err());
        assert!(WireRequest::from_json(r#"{"kind":"warp"}"#).is_err());
        // dims/bits disagreement.
        assert!(
            WireRequest::from_json(r#"{"kind":"infer","dims":[1,1,2,2],"bits":[0,0,0]}"#).is_err()
        );
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buffer: Vec<u8> = Vec::new();
        write_frame(&mut buffer, b"hello").unwrap();
        write_frame(&mut buffer, b"").unwrap();
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buffer: Vec<u8> = Vec::new();
        write_frame(&mut buffer, b"hello").unwrap();
        buffer.truncate(buffer.len() - 2);
        let mut cursor = io::Cursor::new(buffer);
        assert!(read_frame(&mut cursor).is_err());
    }
}
