//! The serving wire protocol: length-prefixed JSON frames.
//!
//! Every message is a 4-byte big-endian payload length followed by one
//! UTF-8 JSON object carrying a `"kind"` discriminator. Activations
//! travel as raw Q8.8 bit patterns (`i16` per sample), so a response is
//! bit-identical to the in-process result — JSON float formatting never
//! touches the data path.
//!
//! Requests: `infer` (dims + bits + optional relative `deadline_ms`) and
//! `stats`. Responses: `ok` (dims + bits + per-request counters +
//! latency), `rejected` (a stable reason string from
//! [`Rejected::reason`](crate::service::Rejected::reason)), `stats`
//! (a [`MetricsSnapshot`] plus a per-layer [`TelemetrySnapshot`]), and
//! `error` (malformed request).
//!
//! Everything rides the vendored `serde`/`serde_json` facades — the
//! protocol adds no network or serialization dependencies.

use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{self, Read, Write};
use tfe_sim::counters::Counters;
use tfe_telemetry::TelemetrySnapshot;
use tfe_tensor::fixed::Fx16;
use tfe_tensor::tensor::Tensor4;

/// Upper bound on one frame's payload (guards against hostile or
/// corrupt length prefixes).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Protocol-level failure: transport or message shape.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The payload was not a well-formed protocol message.
    Malformed(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Malformed(_) => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<serde_json::Error> for ProtocolError {
    fn from(e: serde_json::Error) -> Self {
        ProtocolError::Malformed(e.to_string())
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates stream errors; rejects payloads over [`MAX_FRAME_BYTES`].
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    let len = u32::try_from(payload.len()).expect("bounded by MAX_FRAME_BYTES");
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Propagates stream errors; rejects oversized length prefixes and EOF
/// inside a frame.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut first = [0u8; 1];
    loop {
        return match reader.read(&mut first) {
            Ok(0) => Ok(None),
            Ok(_) => read_frame_after(first[0], reader).map(Some),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => Err(e),
        };
    }
}

/// Completes a frame whose first length byte was already consumed (the
/// polled TCP accept path reads one byte with a timeout, then finishes
/// the frame without losing it).
///
/// # Errors
///
/// Propagates stream errors; rejects oversized length prefixes.
pub fn read_frame_after(first: u8, reader: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut rest = [0u8; 3];
    reader.read_exact(&mut rest)?;
    let len = u32::from_be_bytes([first, rest[0], rest[1], rest[2]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME_BYTES",
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Run one `[1, C, H, W]` image.
    Infer {
        /// The input image.
        input: Tensor4<Fx16>,
        /// Optional deadline relative to server receipt, milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Fetch a metrics snapshot.
    Stats,
}

/// A server → client message.
#[derive(Debug, Clone)]
pub enum WireResponse {
    /// Successful inference.
    Ok {
        /// Output activations (bit-identical to the in-process result).
        activations: Tensor4<Fx16>,
        /// This request's simulator counters.
        counters: Counters,
        /// Admission-to-completion latency, microseconds.
        latency_us: u64,
    },
    /// The request was refused or dropped.
    Rejected {
        /// Stable reason identifier (`queue_full`, `deadline_exceeded`,
        /// `shutting_down`, `sim_error`).
        reason: String,
    },
    /// Metrics + per-layer telemetry snapshot.
    Stats {
        /// The request-level metrics snapshot at receipt time.
        metrics: MetricsSnapshot,
        /// The per-layer telemetry snapshot at receipt time (one entry
        /// per compiled stage).
        telemetry: TelemetrySnapshot,
    },
    /// The request could not be understood.
    Error {
        /// Human-readable diagnosis.
        message: String,
    },
}

fn tensor_to_fields(t: &Tensor4<Fx16>) -> (Value, Value) {
    let dims = Value::Array(t.dims().iter().map(|&d| Value::U64(d as u64)).collect());
    let bits = Value::Array(
        t.as_slice()
            .iter()
            .map(|fx| Value::I64(i64::from(fx.to_bits())))
            .collect(),
    );
    (dims, bits)
}

fn tensor_from_fields(value: &Value) -> Result<Tensor4<Fx16>, ProtocolError> {
    let dims: Vec<u64> = field(value, "dims")?;
    let bits: Vec<i16> = field(value, "bits")?;
    let dims: [usize; 4] = dims
        .iter()
        .map(|&d| usize::try_from(d).map_err(|_| malformed("dimension out of range")))
        .collect::<Result<Vec<_>, _>>()?
        .try_into()
        .map_err(|_| malformed("dims must have exactly 4 entries"))?;
    let samples: Vec<Fx16> = bits.into_iter().map(Fx16::from_bits).collect();
    Tensor4::from_vec(dims, samples).map_err(|e| malformed(format!("tensor shape mismatch: {e}")))
}

fn malformed(message: impl Into<String>) -> ProtocolError {
    ProtocolError::Malformed(message.into())
}

fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, ProtocolError> {
    let inner = value
        .get_field(name)
        .ok_or_else(|| malformed(format!("missing field '{name}'")))?;
    T::from_value(inner).map_err(|e| malformed(format!("field '{name}': {e}")))
}

fn kind_of(value: &Value) -> Result<String, ProtocolError> {
    field(value, "kind")
}

impl WireRequest {
    /// Renders the request as one JSON payload.
    #[must_use]
    pub fn to_json(&self) -> String {
        let value = match self {
            WireRequest::Infer { input, deadline_ms } => {
                let (dims, bits) = tensor_to_fields(input);
                let mut fields = vec![
                    ("kind".to_owned(), Value::Str("infer".to_owned())),
                    ("dims".to_owned(), dims),
                    ("bits".to_owned(), bits),
                ];
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".to_owned(), Value::U64(*ms)));
                }
                Value::Object(fields)
            }
            WireRequest::Stats => {
                Value::Object(vec![("kind".to_owned(), Value::Str("stats".to_owned()))])
            }
        };
        serde_json::to_string(&value).expect("facade rendering is infallible")
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] for bad JSON, an unknown kind, or a
    /// shape mismatch.
    pub fn from_json(text: &str) -> Result<WireRequest, ProtocolError> {
        let value: Value = serde_json::from_str(text)?;
        match kind_of(&value)?.as_str() {
            "infer" => Ok(WireRequest::Infer {
                input: tensor_from_fields(&value)?,
                deadline_ms: match value.get_field("deadline_ms") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(
                        u64::from_value(v)
                            .map_err(|e| malformed(format!("field 'deadline_ms': {e}")))?,
                    ),
                },
            }),
            "stats" => Ok(WireRequest::Stats),
            other => Err(malformed(format!("unknown request kind '{other}'"))),
        }
    }
}

impl WireResponse {
    /// Renders the response as one JSON payload.
    #[must_use]
    pub fn to_json(&self) -> String {
        let value = match self {
            WireResponse::Ok {
                activations,
                counters,
                latency_us,
            } => {
                let (dims, bits) = tensor_to_fields(activations);
                Value::Object(vec![
                    ("kind".to_owned(), Value::Str("ok".to_owned())),
                    ("dims".to_owned(), dims),
                    ("bits".to_owned(), bits),
                    ("counters".to_owned(), counters.to_value()),
                    ("latency_us".to_owned(), Value::U64(*latency_us)),
                ])
            }
            WireResponse::Rejected { reason } => Value::Object(vec![
                ("kind".to_owned(), Value::Str("rejected".to_owned())),
                ("reason".to_owned(), Value::Str(reason.clone())),
            ]),
            WireResponse::Stats { metrics, telemetry } => Value::Object(vec![
                ("kind".to_owned(), Value::Str("stats".to_owned())),
                ("metrics".to_owned(), metrics.to_value()),
                ("telemetry".to_owned(), telemetry.to_value()),
            ]),
            WireResponse::Error { message } => Value::Object(vec![
                ("kind".to_owned(), Value::Str("error".to_owned())),
                ("message".to_owned(), Value::Str(message.clone())),
            ]),
        };
        serde_json::to_string(&value).expect("facade rendering is infallible")
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] for bad JSON, an unknown kind, or a
    /// shape mismatch.
    pub fn from_json(text: &str) -> Result<WireResponse, ProtocolError> {
        let value: Value = serde_json::from_str(text)?;
        match kind_of(&value)?.as_str() {
            "ok" => Ok(WireResponse::Ok {
                activations: tensor_from_fields(&value)?,
                counters: field(&value, "counters")?,
                latency_us: field(&value, "latency_us")?,
            }),
            "rejected" => Ok(WireResponse::Rejected {
                reason: field(&value, "reason")?,
            }),
            "stats" => Ok(WireResponse::Stats {
                metrics: field(&value, "metrics")?,
                telemetry: field(&value, "telemetry")?,
            }),
            "error" => Ok(WireResponse::Error {
                message: field(&value, "message")?,
            }),
            other => Err(malformed(format!("unknown response kind '{other}'"))),
        }
    }
}

/// Blocking request/response round-trip over any byte stream (the
/// client side of the protocol — used by the smoke tests and any
/// external caller).
///
/// # Errors
///
/// Transport failures or a malformed / truncated response.
pub fn roundtrip<S: Read + Write>(
    stream: &mut S,
    request: &WireRequest,
) -> Result<WireResponse, ProtocolError> {
    write_frame(stream, request.to_json().as_bytes())?;
    let frame =
        read_frame(stream)?.ok_or_else(|| malformed("connection closed before the response"))?;
    let text = std::str::from_utf8(&frame).map_err(|_| malformed("response is not UTF-8"))?;
    WireResponse::from_json(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn demo_tensor() -> Tensor4<Fx16> {
        Tensor4::from_fn([1, 2, 3, 3], |[_, c, y, x]| {
            Fx16::from_bits((c as i16 * 100 + y as i16 * 10 + x as i16) - 55)
        })
    }

    #[test]
    fn infer_request_round_trips_bit_exactly() {
        let request = WireRequest::Infer {
            input: demo_tensor(),
            deadline_ms: Some(250),
        };
        let back = WireRequest::from_json(&request.to_json()).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn stats_request_round_trips() {
        let text = WireRequest::Stats.to_json();
        assert_eq!(WireRequest::from_json(&text).unwrap(), WireRequest::Stats);
    }

    #[test]
    fn ok_response_round_trips() {
        let response = WireResponse::Ok {
            activations: demo_tensor(),
            counters: Counters {
                dense_macs: 42,
                multiplies: 10,
                ..Counters::new()
            },
            latency_us: 1234,
        };
        match WireResponse::from_json(&response.to_json()).unwrap() {
            WireResponse::Ok {
                activations,
                counters,
                latency_us,
            } => {
                assert_eq!(activations, demo_tensor());
                assert_eq!(counters.dense_macs, 42);
                assert_eq!(latency_us, 1234);
            }
            other => panic!("expected ok, got {other:?}"),
        }
    }

    #[test]
    fn stats_response_round_trips_with_telemetry() {
        use tfe_telemetry::{LayerSample, Sink, StageKind, TelemetryRegistry};
        let sink = Sink::enabled(vec!["c1".into(), "c2".into()], 16);
        for (layer, wall_ns) in [(0u32, 2_500u64), (1, 40_000), (0, 3_000)] {
            sink.record(&LayerSample {
                layer,
                stage: StageKind::Full,
                wall_ns,
                counters: Counters {
                    dense_macs: 64,
                    multiplies: 16,
                    ..Counters::new()
                },
            });
        }
        let telemetry = TelemetryRegistry::collect(&sink).snapshot();
        let response = WireResponse::Stats {
            metrics: Metrics::new().snapshot(0),
            telemetry: telemetry.clone(),
        };
        match WireResponse::from_json(&response.to_json()).unwrap() {
            WireResponse::Stats {
                telemetry: back, ..
            } => {
                assert_eq!(back, telemetry);
                assert_eq!(back.layers.len(), 2);
                assert_eq!(back.layers[0].label, "c1");
                assert_eq!(back.layers[0].runs, 2);
                assert_eq!(back.total.multiplies, 48);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(WireRequest::from_json("not json").is_err());
        assert!(WireRequest::from_json(r#"{"kind":"warp"}"#).is_err());
        // dims/bits disagreement.
        assert!(
            WireRequest::from_json(r#"{"kind":"infer","dims":[1,1,2,2],"bits":[0,0,0]}"#).is_err()
        );
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buffer: Vec<u8> = Vec::new();
        write_frame(&mut buffer, b"hello").unwrap();
        write_frame(&mut buffer, b"").unwrap();
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buffer: Vec<u8> = Vec::new();
        write_frame(&mut buffer, b"hello").unwrap();
        buffer.truncate(buffer.len() - 2);
        let mut cursor = io::Cursor::new(buffer);
        assert!(read_frame(&mut cursor).is_err());
    }
}
