//! A bounded multi-producer blocking queue — the admission-control and
//! hand-off primitive of the serving pipeline.
//!
//! Two instances appear in a running service:
//!
//! * the **request queue**, where [`try_push`](BoundedQueue::try_push)
//!   implements admission control: a full queue rejects the request
//!   immediately instead of building an unbounded backlog;
//! * the **batch queue** between the batcher and the executor pool, where
//!   [`push_blocking`](BoundedQueue::push_blocking) provides backpressure:
//!   when every executor is busy, the batcher stalls, the request queue
//!   fills, and new arrivals are shed at the front door.
//!
//! Closing the queue ([`close`](BoundedQueue::close)) rejects new pushes
//! but lets consumers drain everything already admitted, which is what
//! gives the service its graceful-shutdown semantics.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the item was not admitted.
    Full,
    /// The queue has been closed; no new work is accepted.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO queue with blocking pop and optional blocking push.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items at once.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (callers validate via `ServeConfig`).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Current number of queued items (the queue-depth gauge).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission bound this queue was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Non-blocking push: admits the item or refuses immediately,
    /// handing the refused item back so callers can recover or retry it
    /// without keeping a defensive clone on the admission hot path.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close) — each paired with the refused item.
    pub fn try_push(&self, item: T) -> Result<(), (PushError, T)> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        if inner.items.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space instead of refusing.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] if the queue is (or becomes) closed while
    /// waiting.
    pub fn push_blocking(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if inner.closed {
                return Err(PushError::Closed);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Blocking pop: waits until an item is available.
    ///
    /// Returns `None` once the queue is closed **and** drained — the
    /// consumer's signal that no more work will ever arrive.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Pop with a deadline: waits until an item arrives, the `deadline`
    /// passes, or the queue is closed and drained. Returns `None` in the
    /// latter two cases (the batcher treats both as "flush what you
    /// have").
    pub fn pop_until(&self, deadline: Instant) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("queue lock poisoned");
            inner = guard;
        }
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`PushError::Closed`]; already-admitted items remain poppable.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((PushError::Full, 3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_blocking(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop_blocking(), Some(2));
        assert_eq!(q.pop_blocking(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_rejects_new_but_drains_old() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err((PushError::Closed, "b")));
        assert_eq!(q.push_blocking("b"), Err(PushError::Closed));
        assert_eq!(q.pop_blocking(), Some("a"));
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn pop_until_times_out_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(q.pop_until(deadline), None);
        assert!(Instant::now() >= deadline);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(10u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(20).unwrap())
        };
        // Give the producer time to block, then make space.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop_blocking(), Some(10));
        producer.join().unwrap();
        assert_eq!(q.pop_blocking(), Some(20));
    }

    #[test]
    fn pop_blocking_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_blocking())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
