//! Service metrics: latency histograms, throughput/rejection counters,
//! queue-depth gauge, and merged simulator [`Counters`].
//!
//! The registry is lock-light — monotonic event counts are atomics; only
//! the latency histogram and the merged sim counters sit behind mutexes,
//! touched once per completed request / executed batch. A
//! [`MetricsSnapshot`] is a plain serializable struct, so the stats
//! request on the wire protocol and the load-generator report both emit
//! it as JSON via the vendored serde facade.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use tfe_sim::counters::Counters;

/// The fixed-bucket latency histogram now lives in [`tfe_telemetry`]
/// (the telemetry registry merges per-layer windows of the same type);
/// it is re-exported here at its historical path.
pub use tfe_telemetry::LatencyHistogram;

/// Shared metrics registry for one service instance.
#[derive(Debug, Default)]
pub struct Metrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    latency: Mutex<LatencyHistogram>,
    /// Cumulative sim counters since service start.
    total_counters: Mutex<Counters>,
    /// Sim counters since the last [`take_window`](Self::take_window).
    window_counters: Mutex<Counters>,
}

impl Metrics {
    /// A zeroed registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one arrival (admitted or not).
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one queue-full rejection.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts requests dropped because their deadline expired before
    /// they reached a batch slot.
    pub fn record_expired(&self, n: u64) {
        self.expired.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts requests that failed with a simulator error.
    pub fn record_failed(&self, n: u64) {
        self.failed.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one formed micro-batch of `n` requests.
    pub fn record_batch(&self, n: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one completed request and records its latency.
    pub fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency
            .lock()
            .expect("latency lock poisoned")
            .record(latency);
    }

    /// Folds one executed batch's merged sim counters into the
    /// cumulative and window accumulators.
    pub fn merge_counters(&self, counters: &Counters) {
        self.total_counters
            .lock()
            .expect("counters lock poisoned")
            .merge(counters);
        self.window_counters
            .lock()
            .expect("counters lock poisoned")
            .merge(counters);
    }

    /// Returns and resets the since-last-call window of merged sim
    /// counters (used by sweeps that want per-cell deltas).
    pub fn take_window(&self) -> Counters {
        let mut window = self.window_counters.lock().expect("counters lock poisoned");
        std::mem::take(&mut *window)
    }

    /// Number of completed requests so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// A clone of the live latency histogram. Snapshots carry only
    /// precomputed quantiles, which cannot be combined after the fact;
    /// the histogram itself merges exactly
    /// ([`LatencyHistogram::merge`]), so fleet shards fold replica
    /// histograms into per-model latency views.
    #[must_use]
    pub fn latency_histogram(&self) -> LatencyHistogram {
        self.latency.lock().expect("latency lock poisoned").clone()
    }

    /// Captures a consistent-enough snapshot for reporting. The caller
    /// supplies the current queue depth (the gauge lives with the queue).
    #[must_use]
    pub fn snapshot(&self, queue_depth: usize) -> MetricsSnapshot {
        let latency = self.latency.lock().expect("latency lock poisoned");
        let counters = *self.total_counters.lock().expect("counters lock poisoned");
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            queue_depth: queue_depth as u64,
            p50_us: latency.quantile_us(0.50),
            p95_us: latency.quantile_us(0.95),
            p99_us: latency.quantile_us(0.99),
            max_us: latency.max_us(),
            counters,
        }
    }
}

/// A point-in-time, JSON-serializable view of a [`Metrics`] registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Total arrivals, admitted or not.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Requests dropped after their deadline expired in the queue.
    pub expired: u64,
    /// Requests failed by a simulator error.
    pub failed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests that rode those batches (mean batch size =
    /// `batched_requests / batches`).
    pub batched_requests: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Median latency upper bound, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency upper bound, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency upper bound, microseconds.
    pub p99_us: u64,
    /// Exact maximum latency, microseconds.
    pub max_us: u64,
    /// Merged simulator counters across every executed request.
    pub counters: Counters,
}

impl MetricsSnapshot {
    /// Mean formed micro-batch size; 0 when no batch has run.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_serializes_with_counters() {
        let m = Metrics::new();
        m.record_submitted();
        m.record_completed(Duration::from_micros(250));
        m.record_batch(1);
        m.merge_counters(&Counters {
            dense_macs: 64,
            multiplies: 16,
            ..Counters::new()
        });
        let snap = m.snapshot(3);
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.counters.dense_macs, 64);
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn mean_batch_size_guards_the_empty_service() {
        // A snapshot taken before any batch has run must report 0.0,
        // not divide by zero.
        let m = Metrics::new();
        let empty = m.snapshot(0);
        assert_eq!(empty.batches, 0);
        assert_eq!(empty.mean_batch_size(), 0.0);
        // And the normal case still averages.
        m.record_batch(3);
        m.record_batch(5);
        assert_eq!(m.snapshot(0).mean_batch_size(), 4.0);
    }

    #[test]
    fn window_counters_reset_but_totals_accumulate() {
        let m = Metrics::new();
        let c = Counters {
            multiplies: 5,
            ..Counters::new()
        };
        m.merge_counters(&c);
        assert_eq!(m.take_window().multiplies, 5);
        m.merge_counters(&c);
        assert_eq!(m.take_window().multiplies, 5);
        assert_eq!(m.take_window().multiplies, 0);
        assert_eq!(m.snapshot(0).counters.multiplies, 10);
    }
}
