//! Service metrics: latency histograms, throughput/rejection counters,
//! queue-depth gauge, and merged simulator [`Counters`].
//!
//! The registry is lock-light — monotonic event counts are atomics; only
//! the latency histogram and the merged sim counters sit behind mutexes,
//! touched once per completed request / executed batch. A
//! [`MetricsSnapshot`] is a plain serializable struct, so the stats
//! request on the wire protocol and the load-generator report both emit
//! it as JSON via the vendored serde facade.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use tfe_sim::counters::Counters;

/// Number of latency buckets: powers of two from 1 µs to ~2¹⁵ seconds.
const BUCKETS: usize = 35;

/// Fixed-bucket latency histogram in microseconds.
///
/// Bucket `k` (for `k ≥ 1`) counts latencies in `[2^(k-1), 2^k)` µs;
/// bucket 0 counts sub-microsecond completions. Quantiles are reported
/// as the upper bound of the bucket holding the requested rank, clamped
/// to the exact maximum — a deterministic over-estimate that is at most
/// 2× the true quantile.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    fn bucket_index(us: u64) -> usize {
        ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one observed latency.
    pub fn record(&mut self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.counts[Self::bucket_index(us)] += 1;
        self.total += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The exact maximum recorded latency in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in microseconds, as the upper
    /// bound of the covering bucket; 0 when nothing was recorded.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cumulative = 0u64;
        for (k, count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                let upper = if k == 0 { 1 } else { 1u64 << k };
                return upper.min(self.max_us.max(1));
            }
        }
        self.max_us
    }
}

/// Shared metrics registry for one service instance.
#[derive(Debug, Default)]
pub struct Metrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    latency: Mutex<LatencyHistogram>,
    /// Cumulative sim counters since service start.
    total_counters: Mutex<Counters>,
    /// Sim counters since the last [`take_window`](Self::take_window).
    window_counters: Mutex<Counters>,
}

impl Metrics {
    /// A zeroed registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one arrival (admitted or not).
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one queue-full rejection.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts requests dropped because their deadline expired before
    /// they reached a batch slot.
    pub fn record_expired(&self, n: u64) {
        self.expired.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts requests that failed with a simulator error.
    pub fn record_failed(&self, n: u64) {
        self.failed.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one formed micro-batch of `n` requests.
    pub fn record_batch(&self, n: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one completed request and records its latency.
    pub fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency
            .lock()
            .expect("latency lock poisoned")
            .record(latency);
    }

    /// Folds one executed batch's merged sim counters into the
    /// cumulative and window accumulators.
    pub fn merge_counters(&self, counters: &Counters) {
        self.total_counters
            .lock()
            .expect("counters lock poisoned")
            .merge(counters);
        self.window_counters
            .lock()
            .expect("counters lock poisoned")
            .merge(counters);
    }

    /// Returns and resets the since-last-call window of merged sim
    /// counters (used by sweeps that want per-cell deltas).
    pub fn take_window(&self) -> Counters {
        let mut window = self.window_counters.lock().expect("counters lock poisoned");
        std::mem::take(&mut *window)
    }

    /// Number of completed requests so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Captures a consistent-enough snapshot for reporting. The caller
    /// supplies the current queue depth (the gauge lives with the queue).
    #[must_use]
    pub fn snapshot(&self, queue_depth: usize) -> MetricsSnapshot {
        let latency = self.latency.lock().expect("latency lock poisoned");
        let counters = *self.total_counters.lock().expect("counters lock poisoned");
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            queue_depth: queue_depth as u64,
            p50_us: latency.quantile_us(0.50),
            p95_us: latency.quantile_us(0.95),
            p99_us: latency.quantile_us(0.99),
            max_us: latency.max_us(),
            counters,
        }
    }
}

/// A point-in-time, JSON-serializable view of a [`Metrics`] registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Total arrivals, admitted or not.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Requests dropped after their deadline expired in the queue.
    pub expired: u64,
    /// Requests failed by a simulator error.
    pub failed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests that rode those batches (mean batch size =
    /// `batched_requests / batches`).
    pub batched_requests: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Median latency upper bound, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency upper bound, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency upper bound, microseconds.
    pub p99_us: u64,
    /// Exact maximum latency, microseconds.
    pub max_us: u64,
    /// Merged simulator counters across every executed request.
    pub counters: Counters,
}

impl MetricsSnapshot {
    /// Mean formed micro-batch size; 0 when no batch has run.
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [1u64, 2, 3, 100, 1000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.max_us(), 10_000);
        // Median rank 3 lands in the bucket holding 3 µs → upper bound 4.
        assert_eq!(h.quantile_us(0.5), 4);
        // p99 rank 6 lands in the 10 ms bucket → upper bound 2^14,
        // clamped to the exact max.
        assert_eq!(h.quantile_us(0.99), 10_000);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LatencyHistogram::new();
        let mut state = 1u64;
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(Duration::from_micros(state % 50_000));
        }
        let qs = [0.1, 0.5, 0.9, 0.95, 0.99, 1.0];
        for pair in qs.windows(2) {
            assert!(h.quantile_us(pair[0]) <= h.quantile_us(pair[1]));
        }
    }

    #[test]
    fn snapshot_serializes_with_counters() {
        let m = Metrics::new();
        m.record_submitted();
        m.record_completed(Duration::from_micros(250));
        m.record_batch(1);
        m.merge_counters(&Counters {
            dense_macs: 64,
            multiplies: 16,
            ..Counters::new()
        });
        let snap = m.snapshot(3);
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.counters.dense_macs, 64);
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn histogram_saturates_at_the_overflow_bucket() {
        // Latencies at or beyond 2^34 µs (~4.8 hours) — including
        // durations whose microsecond count does not even fit in u64 —
        // all land in the last bucket instead of indexing out of bounds.
        let mut h = LatencyHistogram::new();
        let huge = [
            Duration::from_micros(1 << 34),
            Duration::from_micros((1 << 34) + 123),
            Duration::from_micros(1 << 60),
            Duration::from_micros(u64::MAX),
            // as_micros() > u64::MAX: record() saturates the conversion.
            Duration::from_secs(u64::MAX),
        ];
        for d in huge {
            h.record(d);
        }
        assert_eq!(h.total(), huge.len() as u64);
        assert_eq!(h.max_us(), u64::MAX);
        // Every observation sits in the overflow bucket, so every
        // quantile reports that bucket's upper bound (clamped to max).
        let overflow_upper = 1u64 << 34;
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), overflow_upper, "q={q}");
        }
        // A small observation still resolves below the overflow bucket.
        h.record(Duration::from_micros(3));
        assert_eq!(h.quantile_us(0.01), 4);
    }

    #[test]
    fn window_counters_reset_but_totals_accumulate() {
        let m = Metrics::new();
        let c = Counters {
            multiplies: 5,
            ..Counters::new()
        };
        m.merge_counters(&c);
        assert_eq!(m.take_window().multiplies, 5);
        m.merge_counters(&c);
        assert_eq!(m.take_window().multiplies, 5);
        assert_eq!(m.take_window().multiplies, 0);
        assert_eq!(m.snapshot(0).counters.multiplies, 10);
    }
}
