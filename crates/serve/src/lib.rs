//! `tfe-serve` — a dynamic-batching inference service on the TFE
//! simulator.
//!
//! The ROADMAP's north star is a system that serves heavy traffic; this
//! crate supplies the serving story on top of the batched evaluation
//! engine (`tfe_sim::batch::run_batch`):
//!
//! * **Admission control & backpressure** — a bounded request queue
//!   rejects arrivals beyond capacity with a typed
//!   [`Rejected::QueueFull`]; per-request deadlines drop expired work
//!   before it wastes a batch slot; shutdown drains everything already
//!   admitted.
//! * **Dynamic micro-batching** — pending requests coalesce into
//!   batches, flushing at `max_batch_size` or after `max_batch_delay`,
//!   whichever comes first (the serving analogue of the paper's
//!   ping-pong input memory keeping the PE array fed).
//! * **Bit-identical results** — every batched request returns exactly
//!   the activations and counters that a direct
//!   [`FunctionalNetwork::run`](tfe_sim::network::FunctionalNetwork::run)
//!   call would produce; batching is invisible to the caller.
//! * **Two front-ends** — an in-process [`Client`] handle and a
//!   std-only [`TcpServer`] speaking a length-prefixed JSON protocol
//!   ([`protocol`]) over the vendored serde facades. The TCP server is
//!   generic over a [`Frontend`], so the `tfe-fleet` router serves the
//!   same wire protocol (v2: optional `model` routing field, per-model
//!   stats) through the same transport.
//! * **Metrics** — fixed-bucket latency histograms (p50/p95/p99),
//!   throughput/rejection counters, a queue-depth gauge, and merged
//!   simulator [`Counters`](tfe_sim::counters::Counters), exposed via a
//!   stats request on the same protocol.
//! * **Per-layer telemetry** — the compiled engine records one
//!   [`tfe_telemetry`] sample per stage per request into a lock-free
//!   ring; the stats request additionally returns a
//!   [`TelemetrySnapshot`] with live per-layer latency quantiles and
//!   reuse counters (one entry per compiled stage).
//!
//! # Example
//!
//! ```
//! use tfe_serve::{demo, Service, ServeConfig};
//!
//! let service = Service::start(demo::demo_network(7), ServeConfig::default()).unwrap();
//! let client = service.client();
//! let image = demo::demo_images(1, 42).remove(0);
//! let reply = client.infer(image).unwrap();
//! assert!(reply.counters.multiplies > 0);
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;

pub mod config;
pub mod demo;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod service;
pub mod tcp;

pub use config::ServeConfig;
pub use metrics::{LatencyHistogram, Metrics, MetricsSnapshot};
pub use protocol::{ModelStats, PROTOCOL_VERSION};
pub use service::{Client, InferenceReply, Rejected, ServeResult, Service, Ticket};
pub use tcp::{Frontend, TcpServer};
pub use tfe_telemetry::{LayerTelemetry, TelemetrySnapshot};
