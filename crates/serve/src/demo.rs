//! A small deterministic demo network and input pool shared by the
//! quickstart example, the load generator, the latency bench, and the
//! smoke tests.
//!
//! Whole ImageNet-scale networks are far too large for value-level
//! simulation, so serving demos use a purpose-built two-stage SCNN
//! network (the same topology the parity tests exercise). Weights and
//! images derive from an explicit seed through a fixed LCG, so every
//! run — and every host — sees identical values.

use tfe_sim::network::FunctionalNetwork;
use tfe_tensor::fixed::Fx16;
use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;
use tfe_transfer::TransferScheme;

/// Input geometry the demo network accepts: `[1, C, H, W]`.
pub const DEMO_INPUT_DIMS: [usize; 4] = [1, 3, 12, 12];

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

/// Builds the deterministic two-stage demo network (SCNN transfer,
/// conv 3→8 then conv 8→8 with 2×2 pooling).
#[must_use]
pub fn demo_network(seed: u32) -> FunctionalNetwork {
    let shapes = vec![
        (
            LayerShape::conv("serve1", 3, 8, 12, 12, 3, 1, 1).expect("static demo shape"),
            false,
        ),
        (
            LayerShape::conv("serve2", 8, 8, 12, 12, 3, 1, 1).expect("static demo shape"),
            true,
        ),
    ];
    let mut state = seed;
    FunctionalNetwork::random(&shapes, TransferScheme::Scnn, || det(&mut state))
        .expect("static demo network is well-formed")
}

/// Generates `count` deterministic demo input images.
#[must_use]
pub fn demo_images(count: usize, seed: u32) -> Vec<Tensor4<Fx16>> {
    let mut state = seed;
    (0..count)
        .map(|_| Tensor4::from_fn(DEMO_INPUT_DIMS, |_| Fx16::from_f32(det(&mut state))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_transfer::analysis::ReuseConfig;

    #[test]
    fn demo_network_is_deterministic_and_runs() {
        let a = demo_network(7);
        let b = demo_network(7);
        let images = demo_images(2, 99);
        let out_a = a.run(&images[0], ReuseConfig::FULL).unwrap();
        let out_b = b.run(&images[0], ReuseConfig::FULL).unwrap();
        assert_eq!(out_a.activations, out_b.activations);
        assert_eq!(out_a.counters, out_b.counters);
        assert_eq!(images[0].dims(), DEMO_INPUT_DIMS);
        assert_ne!(images[0], images[1]);
    }
}
