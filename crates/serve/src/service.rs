//! The inference service: admission control, micro-batching, a worker
//! pool, and graceful shutdown around one compiled [`Engine`].
//!
//! A [`Service`] owns three moving parts:
//!
//! 1. a bounded **request queue** (the private `queue` module) where
//!    [`Client::submit`] performs admission control;
//! 2. one **batcher** thread (the private `batcher` module) coalescing
//!    queued requests into micro-batches (flush on size or delay) and
//!    dropping expired work;
//! 3. an **executor pool** running each micro-batch through
//!    [`tfe_sim::batch::run_engine_batch`] against one
//!    [`Engine`] compiled **once** at
//!    [`Service::start`] — all weight-side work is amortized across
//!    every request the service ever handles, and executors reuse
//!    [`tfe_sim::engine::Scratch`] arenas from a shared pool bounded to
//!    the executor count, so the steady-state hot path allocates
//!    nothing. Responses stay bit-identical to calling
//!    [`FunctionalNetwork::run`] directly, regardless of how arrivals
//!    were packed into batches (`tests/serve_smoke.rs` asserts this
//!    under concurrent load).
//!
//! Every admitted request is guaranteed a response: if a request is
//! dropped on any path (including service teardown), its slot resolves
//! to [`Rejected::ShuttingDown`] rather than leaving the waiter hung.

use crate::batcher::{batcher_loop, executor_loop, MicroBatch};
use crate::config::ServeConfig;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{BoundedQueue, PushError};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tfe_sim::counters::Counters;
use tfe_sim::engine::{Engine, ScratchPool};
use tfe_sim::network::FunctionalNetwork;
use tfe_sim::SimError;
use tfe_telemetry::TelemetrySnapshot;
use tfe_tensor::fixed::Fx16;
use tfe_tensor::tensor::Tensor4;

/// Why a request did not produce an inference result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded request queue was at capacity; the request was never
    /// admitted.
    QueueFull {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The request's deadline expired while it waited in the queue; it
    /// was dropped before wasting a batch slot.
    DeadlineExceeded,
    /// The service is shutting down (or already gone) and accepts no new
    /// work.
    ShuttingDown,
    /// The request named a model this endpoint does not serve (raised by
    /// the `tfe-fleet` router; a single-model service never emits it).
    UnknownModel {
        /// The model id the request asked for.
        model: String,
    },
    /// The simulator rejected the request (bad geometry, invalid
    /// configuration, …).
    Failed(SimError),
}

impl Rejected {
    /// Stable wire-protocol identifier for the rejection class.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self {
            Rejected::QueueFull { .. } => "queue_full",
            Rejected::DeadlineExceeded => "deadline_exceeded",
            Rejected::ShuttingDown => "shutting_down",
            Rejected::UnknownModel { .. } => "unknown_model",
            Rejected::Failed(_) => "sim_error",
        }
    }
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            Rejected::DeadlineExceeded => write!(f, "deadline expired before execution"),
            Rejected::ShuttingDown => write!(f, "service is shutting down"),
            Rejected::UnknownModel { model } => write!(f, "unknown model '{model}'"),
            Rejected::Failed(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for Rejected {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Rejected::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// A completed inference.
#[derive(Debug, Clone)]
pub struct InferenceReply {
    /// Final network activations, bit-identical to
    /// [`FunctionalNetwork::run`] on the same input.
    pub activations: Tensor4<Fx16>,
    /// This request's own simulator counters.
    pub counters: Counters,
    /// Queue + batching + execution latency, admission to completion.
    pub latency: Duration,
}

/// What a request ultimately resolves to.
pub type ServeResult = Result<InferenceReply, Rejected>;

/// One-shot response slot shared between a waiting [`Ticket`] and the
/// pipeline. First write wins; later writes are ignored, which makes the
/// drop-safety net (resolve to `ShuttingDown` on teardown) idempotent.
pub(crate) struct Slot {
    state: Mutex<Option<ServeResult>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    pub(crate) fn fulfill(&self, result: ServeResult) {
        let mut state = self.state.lock().expect("slot lock poisoned");
        if state.is_none() {
            *state = Some(result);
            drop(state);
            self.ready.notify_all();
        }
    }

    fn wait(&self) -> ServeResult {
        let mut state = self.state.lock().expect("slot lock poisoned");
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self.ready.wait(state).expect("slot lock poisoned");
        }
    }
}

/// Handle to one in-flight request, returned by [`Client::submit`].
pub struct Ticket {
    slot: Arc<Slot>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the request resolves.
    pub fn wait(self) -> ServeResult {
        self.slot.wait()
    }
}

/// An admitted request traveling through the pipeline. Dropping a
/// `Pending` without completing it resolves its slot to
/// [`Rejected::ShuttingDown`] — no waiter can hang.
pub(crate) struct Pending {
    pub(crate) input: Tensor4<Fx16>,
    pub(crate) submitted: Instant,
    pub(crate) deadline: Option<Instant>,
    slot: Arc<Slot>,
}

impl Pending {
    pub(crate) fn complete(self, result: ServeResult) {
        self.slot.fulfill(result);
    }

    /// Takes the input tensor back out of a request that was never
    /// admitted — the recovery half of [`Client::submit_recovering`].
    /// The drop guard still resolves the slot, but no [`Ticket`] ever
    /// escaped for it, so nothing observes that resolution.
    pub(crate) fn recover_input(mut self) -> Tensor4<Fx16> {
        std::mem::replace(&mut self.input, Tensor4::zeros([0, 0, 0, 0]))
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        self.slot.fulfill(Err(Rejected::ShuttingDown));
    }
}

/// State shared by the client handles and the pipeline threads.
pub(crate) struct Shared {
    /// The network compiled once at startup; every request runs against
    /// this, never redoing weight-side work. Behind an [`Arc`] so a
    /// fleet shard can share one compiled engine across several replica
    /// services without duplicating the IR tables.
    pub(crate) engine: Arc<Engine>,
    /// Warm per-worker scratch arenas reused across micro-batches,
    /// bounded to one arena per executor.
    pub(crate) scratches: ScratchPool,
    pub(crate) config: ServeConfig,
    pub(crate) requests: BoundedQueue<Pending>,
    pub(crate) batches: BoundedQueue<MicroBatch>,
    pub(crate) metrics: Metrics,
}

/// A running inference service.
///
/// Obtain request handles with [`client`](Service::client); stop with
/// [`shutdown`](Service::shutdown), which drains everything already
/// admitted before returning. Dropping the service performs the same
/// drain.
pub struct Service {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    stopped: bool,
}

impl Service {
    /// Starts a service around a network.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for zero-sized knobs or an
    /// empty network.
    pub fn start(net: FunctionalNetwork, config: ServeConfig) -> Result<Service, SimError> {
        config.validate()?;
        if net.stages().is_empty() {
            return Err(SimError::InvalidConfig {
                what: "cannot serve a network with no stages",
            });
        }
        // Compile once: all weight-side work (row tables, orbit
        // expansion, bias folding) for the life of the service happens
        // here, before the first request. The telemetry sink rides the
        // engine, so every executor's runs feed one per-layer registry.
        let mut engine = Engine::compile(&net, config.reuse)?;
        engine.enable_telemetry(config.telemetry_ring);
        Service::start_with_engine(Arc::new(engine), config)
    }

    /// Starts a service around an already compiled, shared engine.
    ///
    /// This is the replica entry point for `tfe-fleet`: a shard compiles
    /// one [`Engine`] per (model × reuse configuration) and starts
    /// several replica services over the same [`Arc`], so the IR tables
    /// exist once per shard no matter how many replicas drain its
    /// traffic. The caller owns telemetry policy — attach a sink with
    /// [`Engine::enable_telemetry`] *before* wrapping the engine in the
    /// [`Arc`] (all replicas then feed one per-layer registry).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for zero-sized knobs, an
    /// engine with no stages, or a `config.reuse` that disagrees with
    /// the engine's compiled reuse configuration (batches must run under
    /// the configuration the IR was specialized for).
    pub fn start_with_engine(
        engine: Arc<Engine>,
        config: ServeConfig,
    ) -> Result<Service, SimError> {
        config.validate()?;
        if engine.stage_count() == 0 {
            return Err(SimError::InvalidConfig {
                what: "cannot serve an engine with no stages",
            });
        }
        if engine.reuse() != config.reuse {
            return Err(SimError::InvalidConfig {
                what: "config.reuse must match the engine's compiled reuse configuration",
            });
        }
        let shared = Arc::new(Shared {
            engine,
            scratches: ScratchPool::with_capacity(config.executors),
            requests: BoundedQueue::new(config.queue_capacity),
            // One formed batch of headroom per executor: when every
            // worker is busy the batcher stalls here, the request queue
            // fills, and admission control sheds load at the front door.
            batches: BoundedQueue::new(config.executors),
            metrics: Metrics::new(),
            config,
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tfe-serve-batcher".to_owned())
                .spawn(move || batcher_loop(&shared))
                .map_err(|_| SimError::InvalidConfig {
                    what: "failed to spawn the batcher thread",
                })?
        };
        let mut executors = Vec::with_capacity(shared.config.executors);
        for worker in 0..shared.config.executors {
            let shared_worker = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("tfe-serve-exec-{worker}"))
                .spawn(move || executor_loop(&shared_worker))
                .map_err(|_| SimError::InvalidConfig {
                    what: "failed to spawn an executor thread",
                })?;
            executors.push(handle);
        }
        Ok(Service {
            shared,
            batcher: Some(batcher),
            executors,
            stopped: false,
        })
    }

    /// A cloneable submission handle.
    #[must_use]
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Point-in-time metrics (including the live queue-depth gauge).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.requests.len())
    }

    /// The service's metrics registry (e.g. for
    /// [`Metrics::take_window`]).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Point-in-time per-layer telemetry from the engine's sink: one
    /// entry per compiled stage, with live latency quantiles and exact
    /// cumulative reuse counters.
    #[must_use]
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.shared.engine.telemetry().snapshot()
    }

    /// The compiled engine this service executes against (shared with
    /// every replica started over the same [`Arc`]).
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Stops admission and drains every in-flight request without
    /// consuming the service: the queue closes, the batcher flushes what
    /// was already admitted, the executors finish it, and the worker
    /// threads join. Idempotent; [`shutdown`](Service::shutdown) calls
    /// this internally. After draining, the final metrics (including
    /// requests that completed *during* the drain) remain readable via
    /// [`metrics`](Service::metrics) / [`snapshot`](Service::snapshot) —
    /// which is what a fleet shard needs to retire a replica without
    /// losing its history.
    pub fn drain(&mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        // Closing the request queue stops admission; the batcher drains
        // what is left, then closes the batch queue; the executors drain
        // that and exit. Every admitted request resolves.
        self.shared.requests.close();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: stop admitting, drain every in-flight batch,
    /// join the worker threads, and return the final metrics.
    #[must_use]
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_and_join();
        self.shared.metrics.snapshot(self.shared.requests.len())
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Cloneable handle submitting requests to a [`Service`].
///
/// Handles stay valid across service shutdown — submissions after the
/// fact resolve to [`Rejected::ShuttingDown`].
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    /// Submits one `[1, C, H, W]` image under the service's default
    /// deadline, returning a [`Ticket`] without waiting.
    ///
    /// # Errors
    ///
    /// [`Rejected::QueueFull`] under backpressure,
    /// [`Rejected::ShuttingDown`] after shutdown, or
    /// [`Rejected::Failed`] for geometry the network cannot accept
    /// (checked at admission so a malformed request can never poison a
    /// whole batch).
    pub fn submit(&self, input: Tensor4<Fx16>) -> Result<Ticket, Rejected> {
        self.submit_with_deadline(input, self.shared.config.default_deadline)
    }

    /// [`submit`](Self::submit) with an explicit per-request deadline
    /// (`None` = wait indefinitely). Expired requests are dropped at
    /// batch-formation time and resolve to
    /// [`Rejected::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// Same as [`submit`](Self::submit).
    pub fn submit_with_deadline(
        &self,
        input: Tensor4<Fx16>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, Rejected> {
        self.submit_inner(input, deadline).map_err(|(e, _)| e)
    }

    /// [`submit`](Self::submit)-style admission that hands the input
    /// back alongside any rejection, so routers retrying across a
    /// hot-swap boundary (the fleet's `Shard::submit`) never need a
    /// defensive per-request clone on the dispatch hot path.
    ///
    /// `deadline` semantics match [`submit`](Self::submit): `None` uses
    /// the service's configured default deadline.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](Self::submit), each paired with the refused
    /// input.
    pub fn submit_recovering(
        &self,
        input: Tensor4<Fx16>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, (Rejected, Tensor4<Fx16>)> {
        self.submit_inner(input, deadline.or(self.shared.config.default_deadline))
    }

    fn submit_inner(
        &self,
        input: Tensor4<Fx16>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, (Rejected, Tensor4<Fx16>)> {
        self.shared.metrics.record_submitted();
        if let Err(e) = self.validate_geometry(&input) {
            return Err((e, input));
        }
        let submitted = Instant::now();
        let slot = Slot::new();
        let pending = Pending {
            input,
            submitted,
            deadline: deadline.map(|d| submitted + d),
            slot: Arc::clone(&slot),
        };
        match self.shared.requests.try_push(pending) {
            Ok(()) => Ok(Ticket { slot }),
            Err((PushError::Full, pending)) => {
                self.shared.metrics.record_rejected();
                Err((
                    Rejected::QueueFull {
                        capacity: self.shared.requests.capacity(),
                    },
                    pending.recover_input(),
                ))
            }
            Err((PushError::Closed, pending)) => {
                Err((Rejected::ShuttingDown, pending.recover_input()))
            }
        }
    }

    /// Blocking round-trip: submit and wait for the result.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](Self::submit), plus any in-flight rejection.
    pub fn infer(&self, input: Tensor4<Fx16>) -> ServeResult {
        self.submit(input)?.wait()
    }

    /// Point-in-time metrics, the payload of the wire protocol's stats
    /// request.
    #[must_use]
    pub fn stats(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.requests.len())
    }

    /// Point-in-time per-layer telemetry (one entry per compiled
    /// stage) — the other half of the stats payload.
    #[must_use]
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.shared.engine.telemetry().snapshot()
    }

    /// A clone of the live request-latency histogram. Unlike the
    /// precomputed quantiles in [`stats`](Self::stats), histograms can
    /// be [`merged`](tfe_telemetry::LatencyHistogram::merge) — the fleet
    /// router folds every replica's histogram into one per-model (and
    /// one fleet-wide) latency view.
    #[must_use]
    pub fn latency_histogram(&self) -> tfe_telemetry::LatencyHistogram {
        self.shared.metrics.latency_histogram()
    }

    fn validate_geometry(&self, input: &Tensor4<Fx16>) -> Result<(), Rejected> {
        let first = self
            .shared
            .engine
            .stage_shape(0)
            .expect("service network has stages");
        let [batch, c, h, w] = input.dims();
        let checks = [
            ("request batch dimension", 1, batch),
            ("input channels", first.n(), c),
            ("input rows", first.h(), h),
            ("input columns", first.w(), w),
        ];
        for (what, expected, actual) in checks {
            if expected != actual {
                self.shared.metrics.record_failed(1);
                return Err(Rejected::Failed(SimError::OperandMismatch {
                    what,
                    expected,
                    actual,
                }));
            }
        }
        Ok(())
    }
}
