//! Serving knobs: batching, admission control, and worker sizing.

use std::time::Duration;
use tfe_sim::batch::BatchOptions;
use tfe_sim::SimError;
use tfe_transfer::analysis::ReuseConfig;

/// Configuration for one [`Service`](crate::service::Service) instance.
///
/// The two batching knobs mirror the paper's ping-pong input memory: a
/// micro-batch flushes as soon as it reaches [`max_batch_size`] images
/// (the "pong" buffer is full) **or** [`max_batch_delay`] elapses after
/// its first request (the datapath must not starve), whichever comes
/// first.
///
/// [`max_batch_size`]: ServeConfig::max_batch_size
/// [`max_batch_delay`]: ServeConfig::max_batch_delay
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush a forming micro-batch at this many requests.
    pub max_batch_size: usize,
    /// Flush a forming micro-batch this long after its first request.
    pub max_batch_delay: Duration,
    /// Bounded request-queue capacity; arrivals beyond it are rejected
    /// with [`Rejected::QueueFull`](crate::service::Rejected::QueueFull).
    pub queue_capacity: usize,
    /// Number of executor workers pulling formed batches.
    pub executors: usize,
    /// Worker-thread count handed to [`tfe_sim::batch::run_batch`] per
    /// batch; `None` uses the ambient budget.
    pub batch_threads: Option<usize>,
    /// Reuse configuration every request is evaluated under (fixed per
    /// service so whole batches share one datapath configuration).
    pub reuse: ReuseConfig,
    /// Deadline applied to requests that do not carry their own; `None`
    /// means requests wait as long as the queue holds them.
    pub default_deadline: Option<Duration>,
    /// Capacity of the per-layer telemetry sample ring attached to the
    /// compiled engine (samples, not requests: each request contributes
    /// one sample per stage). The ring overwrites its oldest samples
    /// when full; cumulative per-layer totals are exact regardless.
    pub telemetry_ring: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch_size: 8,
            max_batch_delay: Duration::from_millis(2),
            queue_capacity: 256,
            executors: 2,
            batch_threads: None,
            reuse: ReuseConfig::FULL,
            default_deadline: None,
            telemetry_ring: 4096,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for any zero-sized knob
    /// (batch size, queue capacity, executor count, or a pinned
    /// zero-thread batch pool).
    pub fn validate(&self) -> Result<(), SimError> {
        if self.max_batch_size == 0 {
            return Err(SimError::InvalidConfig {
                what: "max_batch_size must be at least 1",
            });
        }
        if self.queue_capacity == 0 {
            return Err(SimError::InvalidConfig {
                what: "queue_capacity must be at least 1",
            });
        }
        if self.executors == 0 {
            return Err(SimError::InvalidConfig {
                what: "executors must be at least 1",
            });
        }
        if self.batch_threads == Some(0) {
            return Err(SimError::InvalidConfig {
                what: "batch_threads must be at least 1 when pinned",
            });
        }
        if self.telemetry_ring == 0 {
            return Err(SimError::InvalidConfig {
                what: "telemetry_ring must be at least 1",
            });
        }
        Ok(())
    }

    /// The [`BatchOptions`] each executed micro-batch runs under.
    #[must_use]
    pub fn batch_options(&self) -> BatchOptions {
        BatchOptions {
            threads: self.batch_threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_knobs_are_rejected() {
        for broken in [
            ServeConfig {
                max_batch_size: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_capacity: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                executors: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                batch_threads: Some(0),
                ..ServeConfig::default()
            },
            ServeConfig {
                telemetry_ring: 0,
                ..ServeConfig::default()
            },
        ] {
            assert!(matches!(
                broken.validate(),
                Err(SimError::InvalidConfig { .. })
            ));
        }
    }
}
