//! `tfe-loadgen` — open-loop load generator for the serving stack.
//!
//! Drives a [`tfe_serve::Service`] (in-process, fully offline) with
//! Poisson-ish arrivals: exponential inter-arrival gaps drawn from the
//! vendored `rand` facade under a fixed seed, submitted open-loop — the
//! generator never waits for a response before the next arrival, so
//! overload shows up as queue-full rejections instead of silently
//! throttled offered load.
//!
//! ```sh
//! cargo run --release -p tfe-serve --bin tfe-loadgen -- \
//!     --rate 200 --duration 5 --seed 1
//! ```
//!
//! The report prints p50/p95/p99/max latency, achieved throughput,
//! rejection/expiry counts, the merged simulator counters, and a final
//! machine-readable JSON snapshot line.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use tfe_serve::{demo, Rejected, ServeConfig, Service, TelemetrySnapshot};

struct Args {
    rate: f64,
    duration: f64,
    seed: u64,
    batch_size: usize,
    delay_us: u64,
    queue: usize,
    executors: usize,
    threads: Option<usize>,
    deadline_ms: Option<u64>,
    stats: bool,
    stats_interval_ms: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            rate: 200.0,
            duration: 5.0,
            seed: 1,
            batch_size: 8,
            delay_us: 2000,
            queue: 256,
            executors: 2,
            threads: None,
            deadline_ms: None,
            stats: false,
            stats_interval_ms: 1000,
        }
    }
}

const USAGE: &str = "\
tfe-loadgen: open-loop Poisson load generator for the TFE serving stack

USAGE:
    tfe-loadgen [--rate R] [--duration S] [--seed N] [--batch-size B]
                [--delay-us U] [--queue Q] [--executors E] [--threads T]
                [--deadline-ms D] [--stats] [--stats-interval-ms I]

OPTIONS:
    --rate R         offered arrival rate, requests/second   [default: 200]
    --duration S     run length in seconds                   [default: 5]
    --seed N         RNG seed for arrivals and inputs        [default: 1]
    --batch-size B   micro-batch flush size                  [default: 8]
    --delay-us U     micro-batch flush delay, microseconds   [default: 2000]
    --queue Q        request-queue capacity                  [default: 256]
    --executors E    executor worker count                   [default: 2]
    --threads T      worker threads per batch                [default: ambient]
    --deadline-ms D  per-request deadline, milliseconds      [default: none]
    --stats          poll and print per-layer telemetry tables (latency
                     p50/p95/p99 + reuse ratios) while the load runs
    --stats-interval-ms I
                     telemetry poll period with --stats      [default: 1000]
";

fn parse_to<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value '{value}' for {flag}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--stats" {
            args.stats = true;
            continue;
        }
        let value = argv
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--rate" => args.rate = parse_to(&value, &flag)?,
            "--duration" => args.duration = parse_to(&value, &flag)?,
            "--seed" => args.seed = parse_to(&value, &flag)?,
            "--batch-size" => args.batch_size = parse_to(&value, &flag)?,
            "--delay-us" => args.delay_us = parse_to(&value, &flag)?,
            "--queue" => args.queue = parse_to(&value, &flag)?,
            "--executors" => args.executors = parse_to(&value, &flag)?,
            "--threads" => args.threads = Some(parse_to(&value, &flag)?),
            "--deadline-ms" => args.deadline_ms = Some(parse_to(&value, &flag)?),
            "--stats-interval-ms" => args.stats_interval_ms = parse_to(&value, &flag)?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    // `is_finite` + `<= 0.0` also rejects NaN, which `> 0.0` alone lets
    // through via negation.
    if !args.rate.is_finite() || args.rate <= 0.0 {
        return Err("--rate must be positive".to_owned());
    }
    if !args.duration.is_finite() || args.duration <= 0.0 {
        return Err("--duration must be positive".to_owned());
    }
    if args.stats_interval_ms == 0 {
        return Err("--stats-interval-ms must be positive".to_owned());
    }
    Ok(args)
}

/// Prints the two per-layer tables of one telemetry poll: stage latency
/// quantiles over the ring window, then reuse effectiveness from the
/// exact cumulative counters.
fn print_telemetry(elapsed: Duration, snap: &TelemetrySnapshot) {
    println!();
    println!(
        "per-layer telemetry @ {:.1}s ({} samples recorded, {} dropped from the window)",
        elapsed.as_secs_f64(),
        snap.recorded,
        snap.dropped
    );
    println!("  layer  label         runs  p50_us  p95_us  p99_us  max_us");
    for l in &snap.layers {
        println!(
            "  {:<5}  {:<10}  {:>6}  {:>6}  {:>6}  {:>6}  {:>6}",
            l.layer, l.label, l.runs, l.p50_us, l.p95_us, l.p99_us, l.max_us
        );
    }
    println!("  layer  label       mac_red  multiplies  dense_macs  sram/mul  reg/mul");
    for l in &snap.layers {
        let per_mul = |n: u64| n as f64 / l.counters.multiplies.max(1) as f64;
        println!(
            "  {:<5}  {:<10}  {:>7.2}  {:>10}  {:>10}  {:>8.2}  {:>7.2}",
            l.layer,
            l.label,
            l.mac_reduction,
            l.counters.multiplies,
            l.counters.dense_macs,
            per_mul(l.counters.sram_accesses()),
            per_mul(l.counters.register_accesses()),
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| format!("{e}\n\n{USAGE}"))?;

    let net = demo::demo_network(args.seed as u32 ^ 0x5eed);
    let config = ServeConfig {
        max_batch_size: args.batch_size,
        max_batch_delay: Duration::from_micros(args.delay_us),
        queue_capacity: args.queue,
        executors: args.executors,
        batch_threads: args.threads,
        default_deadline: args.deadline_ms.map(Duration::from_millis),
        ..ServeConfig::default()
    };
    let service = Service::start(net, config)?;
    let client = service.client();

    let images = demo::demo_images(64, args.seed as u32 ^ 0x1a6e);
    let mut rng = StdRng::seed_from_u64(args.seed);

    println!(
        "offering ~{:.0} req/s for {:.1}s (seed {}, batch ≤{}, delay {}µs, queue {}, {} executor(s))",
        args.rate, args.duration, args.seed, args.batch_size, args.delay_us, args.queue,
        args.executors
    );

    let start = Instant::now();
    let end = start + Duration::from_secs_f64(args.duration);
    let stats_interval = Duration::from_millis(args.stats_interval_ms);
    let mut next_stats = start + stats_interval;
    let mut next_arrival = start;
    let mut offered = 0u64;
    let mut rejected_at_submit = 0u64;
    let mut tickets = Vec::new();

    loop {
        // Exponential inter-arrival gap: -ln(1 - U) / rate.
        let u: f64 = rng.gen();
        let gap = -(1.0 - u).ln() / args.rate;
        next_arrival += Duration::from_secs_f64(gap);
        if next_arrival >= end {
            break;
        }
        // Wait out the gap stats-aware: sleep only to the nearer of the
        // next arrival and the next poll, so low --rate runs keep a
        // steady poll cadence instead of lagging up to a full gap and
        // then bursting one poll per arrival to catch up.
        loop {
            let now = Instant::now();
            if args.stats && now >= next_stats {
                print_telemetry(start.elapsed(), &client.telemetry());
                // Advance monotonically past now; a stall longer than
                // the interval skips the missed polls instead of
                // replaying them back-to-back.
                while next_stats <= Instant::now() {
                    next_stats += stats_interval;
                }
                continue;
            }
            if now >= next_arrival {
                break;
            }
            let wake = if args.stats && next_stats < next_arrival {
                next_stats
            } else {
                next_arrival
            };
            std::thread::sleep(wake - now);
        }
        let image = images[offered as usize % images.len()].clone();
        offered += 1;
        match client.submit(image) {
            Ok(ticket) => tickets.push(ticket),
            Err(Rejected::QueueFull { .. }) => rejected_at_submit += 1,
            Err(other) => return Err(other.into()),
        }
    }
    let offered_window = start.elapsed();

    // Open loop is over; now settle every outstanding request.
    let mut completed = 0u64;
    let mut expired = 0u64;
    let mut other_failures = 0u64;
    for ticket in tickets {
        match ticket.wait() {
            Ok(_) => completed += 1,
            Err(Rejected::DeadlineExceeded) => expired += 1,
            Err(_) => other_failures += 1,
        }
    }
    let telemetry = service.telemetry();
    let snapshot = service.shutdown();

    let achieved = completed as f64 / offered_window.as_secs_f64();
    println!();
    println!(
        "offered:     {offered} requests ({:.1} req/s)",
        offered as f64 / offered_window.as_secs_f64()
    );
    println!("completed:   {completed} ({achieved:.1} req/s)");
    println!("rejected:    {rejected_at_submit} (queue full)");
    println!("expired:     {expired} (deadline)");
    if other_failures > 0 {
        println!("failed:      {other_failures}");
    }
    println!(
        "batches:     {} (mean size {:.2})",
        snapshot.batches,
        snapshot.mean_batch_size()
    );
    println!("latency p50: {} µs", snapshot.p50_us);
    println!("latency p95: {} µs", snapshot.p95_us);
    println!("latency p99: {} µs", snapshot.p99_us);
    println!("latency max: {} µs", snapshot.max_us);
    println!(
        "sim MACs:    {} of {} dense ({:.2}x reduction)",
        snapshot.counters.multiplies,
        snapshot.counters.dense_macs,
        snapshot.counters.mac_reduction()
    );
    println!(
        "sim memory:  {} SRAM word accesses, {} register accesses",
        snapshot.counters.sram_accesses(),
        snapshot.counters.register_accesses()
    );
    if args.stats {
        print_telemetry(start.elapsed(), &telemetry);
    }
    println!();
    println!("{}", serde_json::to_string(&snapshot)?);
    if args.stats {
        println!("{}", serde_json::to_string(&telemetry)?);
    }
    Ok(())
}
