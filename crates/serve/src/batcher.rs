//! Micro-batch formation and execution — the analogue of the paper's
//! ping-pong input memory feeding the PE array.
//!
//! The **batcher** thread pops admitted requests and coalesces them into
//! micro-batches, flushing when the batch reaches
//! [`max_batch_size`](crate::config::ServeConfig::max_batch_size) or
//! [`max_batch_delay`](crate::config::ServeConfig::max_batch_delay)
//! after the batch's first request — whichever comes first. Requests
//! whose deadline expired while queued are dropped at formation time so
//! they never waste a batch slot.
//!
//! **Executor** workers pull formed batches and run them through
//! [`run_engine_batch`] against the service's compile-once
//! [`tfe_sim::engine::Engine`], checking warm scratch arenas out of the
//! shared pool — batching changes latency and throughput, never values
//! or per-request counters.

use crate::service::{InferenceReply, Pending, Rejected, Shared};
use std::time::Instant;
use tfe_sim::batch::run_engine_batch;
use tfe_sim::counters::Counters;
use tfe_tensor::fixed::Fx16;
use tfe_tensor::tensor::Tensor4;

/// A formed micro-batch traveling from the batcher to an executor.
pub(crate) struct MicroBatch {
    pub(crate) requests: Vec<Pending>,
}

/// Coalesces queued requests into micro-batches until the request queue
/// is closed and drained, then closes the batch queue behind itself.
pub(crate) fn batcher_loop(shared: &Shared) {
    while let Some(first) = shared.requests.pop_blocking() {
        let flush_at = Instant::now() + shared.config.max_batch_delay;
        let mut formed = vec![first];
        while formed.len() < shared.config.max_batch_size {
            match shared.requests.pop_until(flush_at) {
                Some(pending) => formed.push(pending),
                // Delay elapsed, or the queue closed and drained — flush.
                None => break,
            }
        }

        // Shed expired work before it occupies a batch slot.
        let now = Instant::now();
        let mut live = Vec::with_capacity(formed.len());
        let mut expired = 0u64;
        for pending in formed {
            if pending.deadline.is_some_and(|d| d <= now) {
                expired += 1;
                pending.complete(Err(Rejected::DeadlineExceeded));
            } else {
                live.push(pending);
            }
        }
        if expired > 0 {
            shared.metrics.record_expired(expired);
        }
        if live.is_empty() {
            continue;
        }

        shared.metrics.record_batch(live.len() as u64);
        // Blocking push: when every executor is busy this stalls, the
        // request queue fills, and admission control rejects new
        // arrivals — the backpressure chain. On the (teardown-only)
        // closed path the dropped batch resolves its requests to
        // `ShuttingDown` via `Pending`'s drop guard.
        let _ = shared.batches.push_blocking(MicroBatch { requests: live });
    }
    shared.batches.close();
}

/// Executes formed micro-batches until the batch queue is closed and
/// drained.
pub(crate) fn executor_loop(shared: &Shared) {
    while let Some(batch) = shared.batches.pop_blocking() {
        let inputs: Vec<Tensor4<Fx16>> = batch
            .requests
            .iter()
            .map(|pending| pending.input.clone())
            .collect();
        match run_engine_batch(
            &shared.engine,
            &inputs,
            shared.config.batch_options(),
            &shared.scratches,
        ) {
            Ok(out) => {
                let mut merged = Counters::new();
                for (pending, output) in batch.requests.into_iter().zip(out.outputs) {
                    merged.merge(&output.counters);
                    let latency = pending.submitted.elapsed();
                    shared.metrics.record_completed(latency);
                    pending.complete(Ok(InferenceReply {
                        activations: output.activations,
                        counters: output.counters,
                        latency,
                    }));
                }
                shared.metrics.merge_counters(&merged);
            }
            Err(error) => {
                // Admission-time geometry checks make this unreachable
                // for shape errors; it remains the catch-all for any
                // other simulator failure.
                shared.metrics.record_failed(batch.requests.len() as u64);
                for pending in batch.requests {
                    pending.complete(Err(Rejected::Failed(error.clone())));
                }
            }
        }
    }
}
