//! Micro-batch formation and execution — the analogue of the paper's
//! ping-pong input memory feeding the PE array.
//!
//! The **batcher** thread pops admitted requests and coalesces them into
//! micro-batches, flushing when the batch reaches
//! [`max_batch_size`](crate::config::ServeConfig::max_batch_size) or
//! [`max_batch_delay`](crate::config::ServeConfig::max_batch_delay)
//! after the batch's first request — whichever comes first. Requests
//! whose deadline expired while queued are dropped at formation time so
//! they never waste a batch slot.
//!
//! **Executor** workers pull formed batches and pack each one into a
//! single `[B, C, H, W]` tensor executed as **one filter-stationary
//! batched sweep** ([`tfe_sim::engine::Engine::run_batched`]) against
//! the service's compile-once engine, checking a warm scratch arena out
//! of the shared pool. Outputs and per-image counters split back out
//! per request — batching changes latency and throughput, never values
//! or per-request counters (each request's reply is bit-identical to a
//! lone [`tfe_sim::engine::Engine::run`], see `tests/serve_smoke.rs`).
//! [`ServeConfig::batch_threads`](crate::config::ServeConfig::batch_threads)
//! is the intra-run worker budget of each sweep (ambient parallelism
//! when unset).

use crate::service::{InferenceReply, Pending, Rejected, Shared};
use std::time::Instant;
use tfe_sim::counters::Counters;
use tfe_sim::engine::{Engine, Scratch};
use tfe_sim::SimError;
use tfe_tensor::fixed::Fx16;
use tfe_tensor::tensor::Tensor4;

/// A formed micro-batch traveling from the batcher to an executor.
pub(crate) struct MicroBatch {
    pub(crate) requests: Vec<Pending>,
}

/// Coalesces queued requests into micro-batches until the request queue
/// is closed and drained, then closes the batch queue behind itself.
pub(crate) fn batcher_loop(shared: &Shared) {
    while let Some(first) = shared.requests.pop_blocking() {
        let flush_at = Instant::now() + shared.config.max_batch_delay;
        let mut formed = vec![first];
        while formed.len() < shared.config.max_batch_size {
            match shared.requests.pop_until(flush_at) {
                Some(pending) => formed.push(pending),
                // Delay elapsed, or the queue closed and drained — flush.
                None => break,
            }
        }

        // Shed expired work before it occupies a batch slot.
        let now = Instant::now();
        let mut live = Vec::with_capacity(formed.len());
        let mut expired = 0u64;
        for pending in formed {
            if pending.deadline.is_some_and(|d| d <= now) {
                expired += 1;
                pending.complete(Err(Rejected::DeadlineExceeded));
            } else {
                live.push(pending);
            }
        }
        if expired > 0 {
            shared.metrics.record_expired(expired);
        }
        if live.is_empty() {
            continue;
        }

        shared.metrics.record_batch(live.len() as u64);
        // Blocking push: when every executor is busy this stalls, the
        // request queue fills, and admission control rejects new
        // arrivals — the backpressure chain. On the (teardown-only)
        // closed path the dropped batch resolves its requests to
        // `ShuttingDown` via `Pending`'s drop guard.
        let _ = shared.batches.push_blocking(MicroBatch { requests: live });
    }
    shared.batches.close();
}

/// Executes formed micro-batches until the batch queue is closed and
/// drained: each batch runs as one packed filter-stationary sweep.
pub(crate) fn executor_loop(shared: &Shared) {
    let workers = shared
        .config
        .batch_threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    while let Some(batch) = shared.batches.pop_blocking() {
        let mut scratch = shared.scratches.checkout();
        let result = run_micro_batch(&shared.engine, &batch.requests, &mut scratch, workers);
        shared.scratches.restore(scratch);
        match result {
            Ok(replies) => {
                let mut merged = Counters::new();
                for (pending, (activations, counters)) in batch.requests.into_iter().zip(replies) {
                    merged.merge(&counters);
                    let latency = pending.submitted.elapsed();
                    shared.metrics.record_completed(latency);
                    pending.complete(Ok(InferenceReply {
                        activations,
                        counters,
                        latency,
                    }));
                }
                shared.metrics.merge_counters(&merged);
            }
            Err(error) => {
                // Admission-time geometry checks make this unreachable
                // for shape errors; it remains the catch-all for any
                // other simulator failure.
                shared.metrics.record_failed(batch.requests.len() as u64);
                for pending in batch.requests {
                    pending.complete(Err(Rejected::Failed(error.clone())));
                }
            }
        }
    }
}

/// Packs a micro-batch's requests into one `[B, C, H, W]` tensor, runs a
/// single batched sweep, and splits activations plus per-image counters
/// back out per request, in request order.
///
/// A lone request skips the pack/split copies. Requests whose
/// `(C, H, W)` differ cannot share a pack — admission control prevents
/// that for live traffic, but the fallback keeps the executor total: it
/// runs them sequentially (bit-identical either way).
fn run_micro_batch(
    engine: &Engine,
    requests: &[Pending],
    scratch: &mut Scratch,
    workers: usize,
) -> Result<Vec<(Tensor4<Fx16>, Counters)>, SimError> {
    let Some(first) = requests.first() else {
        return Ok(Vec::new());
    };
    let [_, c, h, w] = first.input.dims();
    if requests.len() == 1 {
        let out = engine.run(&first.input, scratch)?;
        return Ok(vec![(out.activations, out.counters)]);
    }
    if requests.iter().any(|p| {
        let [_, pc, ph, pw] = p.input.dims();
        (pc, ph, pw) != (c, h, w)
    }) {
        return requests
            .iter()
            .map(|p| {
                engine
                    .run(&p.input, scratch)
                    .map(|out| (out.activations, out.counters))
            })
            .collect();
    }
    let lens: Vec<usize> = requests.iter().map(|p| p.input.dims()[0]).collect();
    let total: usize = lens.iter().sum();
    let mut packed = Vec::with_capacity(total * c * h * w);
    for pending in requests {
        packed.extend_from_slice(pending.input.as_slice());
    }
    let packed = Tensor4::from_vec([total, c, h, w], packed)
        .expect("packed micro-batch dims match the concatenated requests");
    let run = engine.run_batched(&packed, scratch, workers)?;
    let [_, oc, oh, ow] = run.activations.dims();
    let mut replies = Vec::with_capacity(requests.len());
    let mut b0 = 0usize;
    for len in lens {
        let activations = Tensor4::from_fn([len, oc, oh, ow], |[b, ci, y, x]| {
            run.activations.get([b0 + b, ci, y, x])
        });
        let mut counters = Counters::new();
        for image in &run.per_image[b0..b0 + len] {
            counters.merge(image);
        }
        replies.push((activations, counters));
        b0 += len;
    }
    Ok(replies)
}
