//! Engine facade: one call from network name + scheme to the full set of
//! paper metrics.
//!
//! [`Engine`] wires the subsystem crates together — plan construction
//! (`tfe-nets`), the TFE performance model (`tfe-sim`), the Eyeriss
//! baseline (`tfe-eyeriss`) and the energy model (`tfe-energy`) — and
//! produces a serializable [`NetworkReport`] carrying every number the
//! paper's figures plot for that (network, scheme) pair.
//!
//! # Example
//!
//! ```
//! use tfe_core::{Engine, TransferScheme};
//!
//! # fn main() -> Result<(), tfe_core::EngineError> {
//! let engine = Engine::new();
//! let report = engine.run_network("VGGNet", TransferScheme::Scnn)?;
//! assert!(report.conv_speedup_vs_eyeriss() > 3.0);
//! assert!(report.param_reduction > 3.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;
use tfe_energy::power::{energy_efficiency_improvement, EYERISS_POWER_MW};
use tfe_energy::{AreaModel, EnergyModel};
use tfe_eyeriss::{EyerissConfig, EyerissPerf};
use tfe_nets::{zoo, Network};
use tfe_sim::memory;
use tfe_sim::perf::{NetworkPerf, PerfConfig};
use tfe_transfer::analysis::ReuseConfig;

pub use tfe_transfer::TransferScheme;

/// Error type of the engine facade.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The requested network is not in the zoo.
    UnknownNetwork {
        /// The name that failed to resolve.
        name: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownNetwork { name } => {
                write!(f, "unknown network '{name}' (see tfe_nets::zoo::by_name)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The full metric set for one (network, scheme) evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Network name.
    pub network: String,
    /// Transfer scheme label.
    pub scheme: String,
    /// Eyeriss cycles (conv layers, normalized PE count).
    pub eyeriss_conv_cycles: u64,
    /// Eyeriss cycles (all layers).
    pub eyeriss_total_cycles: u64,
    /// TFE cycles (conv layers).
    pub tfe_conv_cycles: u64,
    /// TFE cycles (all layers).
    pub tfe_total_cycles: u64,
    /// CONV-layer speedup over Eyeriss (Fig. 15(a)).
    pub conv_speedup: f64,
    /// Overall speedup over Eyeriss (Fig. 15(b)).
    pub overall_speedup: f64,
    /// Parameter reduction of the transferred conv layers (Figs. 16/17).
    pub param_reduction: f64,
    /// MAC reduction on conv layers with full reuse (Fig. 19).
    pub conv_mac_reduction: f64,
    /// Off-chip access reduction (Fig. 20).
    pub offchip_reduction: f64,
    /// Modelled TFE on-chip power on this network, mW.
    pub tfe_power_mw: f64,
    /// Energy-efficiency improvement over Eyeriss (Fig. 18).
    pub energy_efficiency: f64,
}

impl NetworkReport {
    /// CONV-layer speedup over Eyeriss (accessor form used in examples).
    #[must_use]
    pub fn conv_speedup_vs_eyeriss(&self) -> f64 {
        self.conv_speedup
    }
}

/// The evaluation engine.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    perf_cfg: PerfConfig,
    eyeriss_cfg: EyerissConfig,
    energy: EnergyModel,
    area: AreaModel,
}

impl Engine {
    /// An engine with the paper's default configuration (full reuse).
    #[must_use]
    pub fn new() -> Self {
        Engine::default()
    }

    /// An engine with a specific reuse configuration (Fig. 19 ablation).
    #[must_use]
    pub fn with_reuse(reuse: ReuseConfig) -> Self {
        Engine {
            perf_cfg: PerfConfig::with_reuse(reuse),
            ..Engine::default()
        }
    }

    /// The TFE performance-model configuration in force.
    #[must_use]
    pub fn perf_config(&self) -> &PerfConfig {
        &self.perf_cfg
    }

    /// The Eyeriss baseline configuration in force.
    #[must_use]
    pub fn eyeriss_config(&self) -> &EyerissConfig {
        &self.eyeriss_cfg
    }

    /// The energy model in force.
    #[must_use]
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The area model in force.
    #[must_use]
    pub fn area_model(&self) -> &AreaModel {
        &self.area
    }

    /// Runs a zoo network by name.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownNetwork`] if the name does not
    /// resolve (see [`tfe_nets::zoo::by_name`] for accepted aliases).
    pub fn run_network(
        &self,
        name: &str,
        scheme: TransferScheme,
    ) -> Result<NetworkReport, EngineError> {
        let network = zoo::by_name(name).ok_or_else(|| EngineError::UnknownNetwork {
            name: name.to_owned(),
        })?;
        Ok(self.run(&network, scheme))
    }

    /// Runs an arbitrary network under a scheme.
    #[must_use]
    pub fn run(&self, network: &Network, scheme: TransferScheme) -> NetworkReport {
        let plan = network.plan(scheme);
        let tfe = NetworkPerf::evaluate(&plan, &self.perf_cfg);
        let eyeriss = EyerissPerf::evaluate(network, &self.eyeriss_cfg);
        let conv_speedup = eyeriss.conv_cycles() as f64 / tfe.conv_cycles().max(1) as f64;
        let overall_speedup = eyeriss.total_cycles() as f64 / tfe.total_cycles().max(1) as f64;
        let tfe_power_mw = self
            .energy
            .onchip_power_mw(&tfe.total_counters(), tfe.runtime_seconds());
        NetworkReport {
            network: network.name().to_owned(),
            scheme: scheme.label(),
            eyeriss_conv_cycles: eyeriss.conv_cycles(),
            eyeriss_total_cycles: eyeriss.total_cycles(),
            tfe_conv_cycles: tfe.conv_cycles(),
            tfe_total_cycles: tfe.total_cycles(),
            conv_speedup,
            overall_speedup,
            param_reduction: plan.conv_param_reduction(),
            conv_mac_reduction: tfe.conv_mac_reduction(),
            offchip_reduction: memory::offchip_reduction(&plan, &self.perf_cfg.offchip),
            tfe_power_mw,
            energy_efficiency: energy_efficiency_improvement(
                overall_speedup,
                tfe_power_mw,
                EYERISS_POWER_MW,
            ),
        }
    }

    /// Runs every zoo benchmark network under every scheme — the full
    /// evaluation sweep, ready for serialization.
    #[must_use]
    pub fn run_all(&self) -> Vec<NetworkReport> {
        let mut reports = Vec::new();
        for network in zoo::all() {
            for scheme in [
                TransferScheme::DCNN4,
                TransferScheme::DCNN6,
                TransferScheme::Scnn,
            ] {
                reports.push(self.run(&network, scheme));
            }
        }
        reports
    }

    /// The TFE per-layer performance result for a network and scheme
    /// (exposing intermediate results, C-INTERMEDIATE).
    #[must_use]
    pub fn tfe_perf(&self, network: &Network, scheme: TransferScheme) -> NetworkPerf {
        NetworkPerf::evaluate(&network.plan(scheme), &self.perf_cfg)
    }

    /// The Eyeriss per-layer performance result for a network.
    #[must_use]
    pub fn eyeriss_perf(&self, network: &Network) -> EyerissPerf {
        EyerissPerf::evaluate(network, &self.eyeriss_cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_network_is_an_error() {
        let engine = Engine::new();
        let err = engine
            .run_network("EfficientNet", TransferScheme::Scnn)
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownNetwork { .. }));
        assert!(err.to_string().contains("EfficientNet"));
    }

    #[test]
    fn vgg_scnn_report_matches_paper_shape() {
        let engine = Engine::new();
        let r = engine.run_network("VGGNet", TransferScheme::Scnn).unwrap();
        // Paper: conv 3.45x, overall 3.2-3.4x, params 4x, EE ~13x.
        assert!(
            (3.0..3.8).contains(&r.conv_speedup),
            "conv {}",
            r.conv_speedup
        );
        assert!(r.overall_speedup < r.conv_speedup);
        assert!(
            (3.8..=4.0).contains(&r.param_reduction),
            "params {}",
            r.param_reduction
        );
        assert!(
            (10.0..18.0).contains(&r.energy_efficiency),
            "ee {}",
            r.energy_efficiency
        );
    }

    #[test]
    fn scheme_ordering_holds_on_average() {
        // Paper averages: SCNN > DCNN6x6 > DCNN4x4 for conv speedup.
        let engine = Engine::new();
        let avg = |scheme: TransferScheme| -> f64 {
            let nets = ["AlexNet", "VGGNet", "GoogLeNet", "ResNet"];
            nets.iter()
                .map(|n| engine.run_network(n, scheme).unwrap().conv_speedup)
                .sum::<f64>()
                / nets.len() as f64
        };
        let d4 = avg(TransferScheme::DCNN4);
        let d6 = avg(TransferScheme::DCNN6);
        let scnn = avg(TransferScheme::Scnn);
        assert!(scnn > d6 && d6 > d4, "{d4} {d6} {scnn}");
    }

    #[test]
    fn ablation_engine_reduces_less() {
        let full = Engine::new();
        let ppsr = Engine::with_reuse(ReuseConfig::PPSR_ONLY);
        let rf = full.run_network("VGGNet", TransferScheme::DCNN6).unwrap();
        let rp = ppsr.run_network("VGGNet", TransferScheme::DCNN6).unwrap();
        assert!(rf.conv_mac_reduction > rp.conv_mac_reduction);
        assert!((rp.conv_mac_reduction - 2.0).abs() < 0.05);
    }

    #[test]
    fn run_all_covers_the_sweep() {
        let reports = Engine::new().run_all();
        assert_eq!(reports.len(), 7 * 3);
        assert!(reports.iter().all(|r| r.conv_speedup > 0.9));
    }

    #[test]
    fn report_serializes_to_json() {
        let engine = Engine::new();
        let r = engine.run_network("ResNet", TransferScheme::DCNN4).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"network\":\"ResNet\""));
        assert!(json.contains("conv_speedup"));
        // Round trip: external tooling can load reports back.
        let back: NetworkReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn accessors_expose_subsystems() {
        let engine = Engine::new();
        assert_eq!(engine.eyeriss_config().normalized_pes, 256);
        assert_eq!(engine.perf_config().hw.pes(), 256);
        let net = zoo::resnet56();
        let perf = engine.tfe_perf(&net, TransferScheme::Scnn);
        assert!(!perf.layers().is_empty());
        let ey = engine.eyeriss_perf(&net);
        assert_eq!(ey.layers().len(), net.layers().len());
    }
}
