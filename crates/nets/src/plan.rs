//! Execution plans: what the TFE actually runs for each layer.
//!
//! A [`NetworkPlan`] fixes, per layer, whether the engine runs in
//! conventional mode or in one of the transferred modes. The simulators
//! consume plans; the analysis crate's formulas are evaluated over plans
//! so that every experiment applies exactly one, shared, per-layer policy.

use crate::layer::NetworkLayer;
use tfe_transfer::analysis::{self, ReuseConfig};
use tfe_transfer::{Policy, TransferScheme};

/// The execution mode chosen for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferMode {
    /// Conventional convolution (dense weights, no reuse machinery).
    Conventional,
    /// DCNN with the given effective meta extent.
    Dcnn {
        /// Meta filter extent used for this layer.
        z: usize,
    },
    /// SCNN orbit mode.
    Scnn,
}

impl TransferMode {
    /// Whether this layer benefits from the transferred-filter machinery.
    #[must_use]
    pub fn is_transferred(self) -> bool {
        self != TransferMode::Conventional
    }
}

/// One planned layer: the network layer, its chosen mode, and the
/// transfer [`Policy`] that produced the mode (so dense fallbacks for
/// depth-wise/grouped geometry are recorded with their reason).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPlan {
    layer: NetworkLayer,
    mode: TransferMode,
    policy: Policy,
}

impl LayerPlan {
    /// Pairs a layer with its execution mode. The policy is derived from
    /// the mode; use [`LayerPlan::with_policy`] to record the specific
    /// dense-fallback reason.
    #[must_use]
    pub fn new(layer: NetworkLayer, mode: TransferMode) -> Self {
        let policy = if mode.is_transferred() {
            Policy::Transfer
        } else {
            Policy::Dense {
                reason: "planned for conventional execution",
            }
        };
        LayerPlan {
            layer,
            mode,
            policy,
        }
    }

    /// Pairs a layer with its execution mode and the explicit transfer
    /// policy that produced it.
    #[must_use]
    pub fn with_policy(layer: NetworkLayer, mode: TransferMode, policy: Policy) -> Self {
        LayerPlan {
            layer,
            mode,
            policy,
        }
    }

    /// The underlying network layer.
    #[must_use]
    pub fn layer(&self) -> &NetworkLayer {
        &self.layer
    }

    /// The chosen execution mode.
    #[must_use]
    pub fn mode(&self) -> TransferMode {
        self.mode
    }

    /// The transfer policy recorded for this layer (why it transferred or
    /// stayed dense).
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Dense MACs of this layer (what Eyeriss or a direct implementation
    /// executes).
    #[must_use]
    pub fn dense_macs(&self) -> u64 {
        self.layer.macs()
    }

    /// MACs the TFE executes for this layer under a reuse configuration.
    #[must_use]
    pub fn tfe_macs(&self, reuse: ReuseConfig) -> u64 {
        let pf = self.layer.per_filter_shape();
        match self.mode {
            TransferMode::Conventional => self.dense_macs(),
            TransferMode::Dcnn { z } => analysis::dcnn_macs_with(&pf, z, reuse),
            TransferMode::Scnn => analysis::scnn_macs_with(&pf, reuse),
        }
    }

    /// Parameters stored for this layer under the plan.
    #[must_use]
    pub fn stored_params(&self) -> u64 {
        let pf = self.layer.per_filter_shape();
        match self.mode {
            TransferMode::Conventional => self.layer.params(),
            TransferMode::Dcnn { z } => analysis::dcnn_params(&pf, z),
            TransferMode::Scnn => analysis::scnn_params(&pf),
        }
    }
}

/// The full plan for one network under one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkPlan {
    network_name: String,
    scheme: TransferScheme,
    layers: Vec<LayerPlan>,
}

impl NetworkPlan {
    /// Assembles a plan from planned layers.
    #[must_use]
    pub fn new(network_name: &str, scheme: TransferScheme, layers: Vec<LayerPlan>) -> Self {
        NetworkPlan {
            network_name: network_name.to_owned(),
            scheme,
            layers,
        }
    }

    /// The source network's name.
    #[must_use]
    pub fn network_name(&self) -> &str {
        &self.network_name
    }

    /// The scheme this plan was built for.
    #[must_use]
    pub fn scheme(&self) -> TransferScheme {
        self.scheme
    }

    /// The planned layers in execution order.
    #[must_use]
    pub fn layers(&self) -> &[LayerPlan] {
        &self.layers
    }

    /// Dense MACs across all layers.
    #[must_use]
    pub fn dense_macs(&self) -> u64 {
        self.layers.iter().map(LayerPlan::dense_macs).sum()
    }

    /// TFE MACs across all layers under a reuse configuration.
    #[must_use]
    pub fn tfe_macs(&self, reuse: ReuseConfig) -> u64 {
        self.layers.iter().map(|l| l.tfe_macs(reuse)).sum()
    }

    /// Stored parameters across all layers.
    #[must_use]
    pub fn stored_params(&self) -> u64 {
        self.layers.iter().map(LayerPlan::stored_params).sum()
    }

    /// Dense parameters across all layers (the uncompressed model size).
    #[must_use]
    pub fn dense_params(&self) -> u64 {
        self.layers.iter().map(|l| l.layer().params()).sum()
    }

    /// Network-level parameter reduction factor including FC layers.
    #[must_use]
    pub fn param_reduction(&self) -> f64 {
        self.dense_params() as f64 / self.stored_params() as f64
    }

    /// Parameter reduction over the convolutional layers only — the
    /// metric Figs. 16/17 plot (FC weights are untouched by the transfer
    /// and would swamp the ratio on VGG/AlexNet).
    #[must_use]
    pub fn conv_param_reduction(&self) -> f64 {
        let conv = |l: &&LayerPlan| !l.layer().is_fc();
        let dense: u64 = self
            .layers
            .iter()
            .filter(conv)
            .map(|l| l.layer().params())
            .sum();
        let stored: u64 = self
            .layers
            .iter()
            .filter(conv)
            .map(LayerPlan::stored_params)
            .sum();
        dense as f64 / stored as f64
    }

    /// Network-level MAC reduction with full reuse (Fig. 19).
    #[must_use]
    pub fn mac_reduction(&self, reuse: ReuseConfig) -> f64 {
        self.dense_macs() as f64 / self.tfe_macs(reuse) as f64
    }

    /// Fraction of dense MACs that sit in transferred layers — the
    /// quantity that bounds the achievable network-level speedup (Amdahl).
    #[must_use]
    pub fn transferred_fraction_of_macs(&self) -> f64 {
        let transferred: u64 = self
            .layers
            .iter()
            .filter(|l| l.mode().is_transferred())
            .map(LayerPlan::dense_macs)
            .sum();
        transferred as f64 / self.dense_macs() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use tfe_tensor::shape::LayerShape;

    fn all_3x3() -> Network {
        // 16 filters: divisible by the DCNN6 group (16) and SCNN orbit (8),
        // so the ideal reductions are exact.
        Network::new(
            "All3",
            vec![
                NetworkLayer::new(LayerShape::conv("a", 8, 16, 16, 16, 3, 1, 1).unwrap()),
                NetworkLayer::new(LayerShape::conv("b", 8, 16, 16, 16, 3, 1, 1).unwrap()),
            ],
        )
    }

    #[test]
    fn fully_transferable_network_hits_ideal_reduction() {
        let plan = all_3x3().plan(TransferScheme::DCNN6);
        assert!((plan.mac_reduction(ReuseConfig::FULL) - 4.0).abs() < 1e-9);
        assert!((plan.param_reduction() - 4.0).abs() < 1e-9);
        assert!((plan.transferred_fraction_of_macs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conventional_layers_dilute_reduction() {
        let net = Network::new(
            "Mixed",
            vec![
                NetworkLayer::new(LayerShape::conv("a", 8, 8, 16, 16, 3, 1, 1).unwrap()),
                NetworkLayer::new(LayerShape::conv("pw", 8, 8, 16, 16, 1, 1, 0).unwrap()),
            ],
        );
        let plan = net.plan(TransferScheme::Scnn);
        let red = plan.mac_reduction(ReuseConfig::FULL);
        assert!(red > 1.0 && red < 4.0, "got {red}");
        assert!(plan.transferred_fraction_of_macs() < 1.0);
    }

    #[test]
    fn no_reuse_means_no_mac_savings() {
        let plan = all_3x3().plan(TransferScheme::DCNN4);
        assert_eq!(plan.tfe_macs(ReuseConfig::NONE), plan.dense_macs());
        // But parameters are still compressed (compression is a property of
        // the algorithm, not the datapath).
        assert!(plan.param_reduction() > 2.0);
    }

    #[test]
    fn scheme_recorded_on_plan() {
        let plan = all_3x3().plan(TransferScheme::Scnn);
        assert_eq!(plan.scheme(), TransferScheme::Scnn);
        assert_eq!(plan.network_name(), "All3");
    }
}
