//! A whole benchmark network: an ordered list of layers with aggregate
//! accounting.

use crate::layer::NetworkLayer;
use crate::plan::{LayerPlan, NetworkPlan, TransferMode};
use tfe_transfer::TransferScheme;

/// An ordered sequence of network layers, with convenience aggregates over
/// MACs and parameters — the quantities every experiment in the paper is
/// normalized by.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    name: String,
    layers: Vec<NetworkLayer>,
}

impl Network {
    /// Creates a network from its layer list.
    #[must_use]
    pub fn new(name: &str, layers: Vec<NetworkLayer>) -> Self {
        Network {
            name: name.to_owned(),
            layers,
        }
    }

    /// The network's display name (e.g. `"VGGNet"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All layers in execution order.
    #[must_use]
    pub fn layers(&self) -> &[NetworkLayer] {
        &self.layers
    }

    /// Iterates over the convolutional layers only.
    pub fn conv_layers(&self) -> impl Iterator<Item = &NetworkLayer> {
        self.layers.iter().filter(|l| !l.is_fc())
    }

    /// Iterates over the fully connected layers only.
    pub fn fc_layers(&self) -> impl Iterator<Item = &NetworkLayer> {
        self.layers.iter().filter(|l| l.is_fc())
    }

    /// Total MACs across all layers.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(NetworkLayer::macs).sum()
    }

    /// MACs of convolutional layers only.
    #[must_use]
    pub fn conv_macs(&self) -> u64 {
        self.conv_layers().map(NetworkLayer::macs).sum()
    }

    /// MACs of fully connected layers only.
    #[must_use]
    pub fn fc_macs(&self) -> u64 {
        self.fc_layers().map(NetworkLayer::macs).sum()
    }

    /// Total dense parameter count.
    #[must_use]
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(NetworkLayer::params).sum()
    }

    /// Dense parameter count of convolutional layers only.
    #[must_use]
    pub fn conv_params(&self) -> u64 {
        self.conv_layers().map(NetworkLayer::params).sum()
    }

    /// Builds the execution plan for this network under a transfer scheme,
    /// applying the paper's per-layer policy (Section V.C): 1×1 and FC
    /// layers run conventionally, 5×5 layers use heterogeneous 6×6 meta
    /// filters under DCNN, and large first-layer filters stay dense.
    #[must_use]
    pub fn plan(&self, scheme: TransferScheme) -> NetworkPlan {
        let layers = self
            .layers
            .iter()
            .map(|layer| {
                let pf = layer.per_filter_shape();
                let policy = scheme.policy_for(&pf);
                let mode = if !policy.transfers() {
                    TransferMode::Conventional
                } else {
                    match scheme {
                        TransferScheme::Dcnn { .. } => TransferMode::Dcnn {
                            z: scheme
                                .effective_meta(pf.k())
                                .expect("transfer policy implies effective meta"),
                        },
                        TransferScheme::Scnn => TransferMode::Scnn,
                    }
                };
                LayerPlan::with_policy(layer.clone(), mode, policy)
            })
            .collect();
        NetworkPlan::new(&self.name, scheme, layers)
    }

    /// The magnitude-pruned variant of this network: every conv layer is
    /// annotated with `sparsity` as its pruning target
    /// ([`NetworkLayer::target_sparsity`]) and the name gains a
    /// `-p<percent>` suffix (e.g. `"AlexNet-p90"`). FC layers keep their
    /// shape untouched — the engine modes only execute conv stages.
    ///
    /// The sparsity is a hint, not yet validated: pruning happens where
    /// weights exist (`tfe_baselines`' `SparseFilterBank::prune`, a
    /// typed error outside `[0, 1]`).
    #[must_use]
    pub fn pruned(&self, sparsity: f64) -> Network {
        let pct = (sparsity * 100.0).round() as i64;
        let layers = self
            .layers
            .iter()
            .map(|layer| {
                if layer.is_fc() {
                    layer.clone()
                } else {
                    layer.clone().with_target_sparsity(sparsity)
                }
            })
            .collect();
        Network {
            name: format!("{}-p{pct}", self.name),
            layers,
        }
    }

    /// The largest conv-layer pruning target (0 when unpruned) — what
    /// consumers that build one weight bank per network (the fleet demo
    /// miniatures) prune to.
    #[must_use]
    pub fn max_target_sparsity(&self) -> f64 {
        self.conv_layers()
            .map(NetworkLayer::target_sparsity)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_tensor::shape::LayerShape;

    fn toy() -> Network {
        Network::new(
            "Toy",
            vec![
                NetworkLayer::new(LayerShape::conv("c1", 3, 16, 16, 16, 3, 1, 1).unwrap()),
                NetworkLayer::new(LayerShape::conv("pw", 16, 32, 16, 16, 1, 1, 0).unwrap()),
                NetworkLayer::new(LayerShape::fully_connected("fc", 512, 10).unwrap()),
            ],
        )
    }

    #[test]
    fn aggregates_split_conv_and_fc() {
        let net = toy();
        assert_eq!(net.total_macs(), net.conv_macs() + net.fc_macs());
        assert_eq!(net.conv_layers().count(), 2);
        assert_eq!(net.fc_layers().count(), 1);
        assert_eq!(net.fc_macs(), 512 * 10);
    }

    #[test]
    fn plan_assigns_modes_per_policy() {
        let net = toy();
        let plan = net.plan(TransferScheme::Scnn);
        let modes: Vec<_> = plan.layers().iter().map(LayerPlan::mode).collect();
        assert_eq!(
            modes,
            vec![
                TransferMode::Scnn,
                TransferMode::Conventional, // 1x1
                TransferMode::Conventional, // FC
            ]
        );
    }

    #[test]
    fn dcnn_plan_uses_heterogeneous_meta() {
        let net = Network::new(
            "Five",
            vec![NetworkLayer::new(
                LayerShape::conv("c5", 16, 32, 14, 14, 5, 1, 2).unwrap(),
            )],
        );
        let plan = net.plan(TransferScheme::DCNN4);
        assert_eq!(plan.layers()[0].mode(), TransferMode::Dcnn { z: 6 });
    }
}
