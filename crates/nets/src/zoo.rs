//! Layer tables for the paper's seven benchmark networks.
//!
//! Mainstream set (Fig. 15): AlexNet, VGGNet (VGG-16), GoogLeNet,
//! ResNet-56. Recent set (Table V): DenseNet-121, SqueezeNet v1.0 and the
//! Residual Attention Network (Attention-56, "ResANet").
//!
//! Shapes follow the original publications. Two modelling notes:
//!
//! * AlexNet uses the grouped (two-tower) convolutions of the original
//!   paper, which is what makes its FC layers exceed 8 % of total MACs —
//!   the property Section V.C.1 calls out.
//! * ResANet's attention modules are approximated: each module is encoded
//!   as pre/trunk/post bottleneck units plus a four-unit soft-mask branch
//!   at halved resolution and two 1×1 mask-output convolutions. This
//!   preserves the 3×3-vs-1×1 MAC mix that determines TFE speedup.

use crate::layer::NetworkLayer;
use crate::network::Network;
use tfe_tensor::pool::{PoolKind, PoolSpec};
use tfe_tensor::shape::LayerShape;

fn conv(name: &str, n: usize, m: usize, hw: usize, k: usize, s: usize, p: usize) -> NetworkLayer {
    NetworkLayer::new(
        LayerShape::conv(name, n, m, hw, hw, k, s, p)
            .unwrap_or_else(|e| panic!("zoo table entry {name} invalid: {e}")),
    )
}

fn fc(name: &str, inputs: usize, outputs: usize) -> NetworkLayer {
    NetworkLayer::new(
        LayerShape::fully_connected(name, inputs, outputs)
            .unwrap_or_else(|e| panic!("zoo table entry {name} invalid: {e}")),
    )
}

fn max_pool(window: usize, stride: usize) -> PoolSpec {
    PoolSpec {
        kind: PoolKind::Max,
        window,
        stride,
    }
}

/// AlexNet (Krizhevsky et al. 2012), 227×227 input, grouped convolutions.
#[must_use]
pub fn alexnet() -> Network {
    Network::new(
        "AlexNet",
        vec![
            conv("conv1", 3, 96, 227, 11, 4, 0).with_pool(max_pool(3, 2)),
            conv("conv2", 96, 256, 27, 5, 1, 2)
                .with_groups(2)
                .with_pool(max_pool(3, 2)),
            conv("conv3", 256, 384, 13, 3, 1, 1),
            conv("conv4", 384, 384, 13, 3, 1, 1).with_groups(2),
            conv("conv5", 384, 256, 13, 3, 1, 1)
                .with_groups(2)
                .with_pool(max_pool(3, 2)),
            fc("fc6", 256 * 6 * 6, 4096),
            fc("fc7", 4096, 4096),
            fc("fc8", 4096, 1000),
        ],
    )
}

/// VGG-16 (Simonyan & Zisserman 2014), 224×224 input.
#[must_use]
pub fn vgg16() -> Network {
    let mut layers = Vec::new();
    let blocks: [(usize, usize, usize, usize); 5] = [
        // (block index, conv count, in channels, spatial)
        (1, 2, 3, 224),
        (2, 2, 64, 112),
        (3, 3, 128, 56),
        (4, 3, 256, 28),
        (5, 3, 512, 14),
    ];
    let widths = [64, 128, 256, 512, 512];
    for &(b, count, cin, hw) in &blocks {
        let cout = widths[b - 1];
        for i in 1..=count {
            let n = if i == 1 { cin } else { cout };
            let mut layer = conv(&format!("conv{b}_{i}"), n, cout, hw, 3, 1, 1);
            if i == count {
                layer = layer.with_pool(max_pool(2, 2));
            }
            layers.push(layer);
        }
    }
    layers.push(fc("fc6", 512 * 7 * 7, 4096));
    layers.push(fc("fc7", 4096, 4096));
    layers.push(fc("fc8", 4096, 1000));
    Network::new("VGGNet", layers)
}

/// VGG-19 (Simonyan & Zisserman 2014, configuration E): VGG-16 with one
/// extra conv in each of blocks 3-5.
#[must_use]
pub fn vgg19() -> Network {
    let mut layers = Vec::new();
    let blocks: [(usize, usize, usize, usize); 5] = [
        (1, 2, 3, 224),
        (2, 2, 64, 112),
        (3, 4, 128, 56),
        (4, 4, 256, 28),
        (5, 4, 512, 14),
    ];
    let widths = [64, 128, 256, 512, 512];
    for &(b, count, cin, hw) in &blocks {
        let cout = widths[b - 1];
        for i in 1..=count {
            let n = if i == 1 { cin } else { cout };
            let mut layer = conv(&format!("conv{b}_{i}"), n, cout, hw, 3, 1, 1);
            if i == count {
                layer = layer.with_pool(max_pool(2, 2));
            }
            layers.push(layer);
        }
    }
    layers.push(fc("fc6", 512 * 7 * 7, 4096));
    layers.push(fc("fc7", 4096, 4096));
    layers.push(fc("fc8", 4096, 1000));
    Network::new("VGG-19", layers)
}

/// One GoogLeNet inception module: four parallel towers over `cin`
/// channels at `hw × hw` resolution.
#[allow(clippy::too_many_arguments)]
fn inception(
    layers: &mut Vec<NetworkLayer>,
    name: &str,
    hw: usize,
    cin: usize,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    pp: usize,
) {
    layers.push(conv(&format!("{name}/1x1"), cin, c1, hw, 1, 1, 0));
    layers.push(conv(&format!("{name}/3x3_reduce"), cin, c3r, hw, 1, 1, 0));
    layers.push(conv(&format!("{name}/3x3"), c3r, c3, hw, 3, 1, 1));
    layers.push(conv(&format!("{name}/5x5_reduce"), cin, c5r, hw, 1, 1, 0));
    layers.push(conv(&format!("{name}/5x5"), c5r, c5, hw, 5, 1, 2));
    layers.push(conv(&format!("{name}/pool_proj"), cin, pp, hw, 1, 1, 0));
}

/// GoogLeNet (Szegedy et al. 2015), 224×224 input, nine inception modules.
#[must_use]
pub fn googlenet() -> Network {
    let mut layers = vec![
        conv("conv1/7x7_s2", 3, 64, 224, 7, 2, 3).with_pool(max_pool(3, 2)),
        conv("conv2/3x3_reduce", 64, 64, 56, 1, 1, 0),
        conv("conv2/3x3", 64, 192, 56, 3, 1, 1).with_pool(max_pool(3, 2)),
    ];
    inception(
        &mut layers,
        "inception_3a",
        28,
        192,
        64,
        96,
        128,
        16,
        32,
        32,
    );
    inception(
        &mut layers,
        "inception_3b",
        28,
        256,
        128,
        128,
        192,
        32,
        96,
        64,
    );
    inception(
        &mut layers,
        "inception_4a",
        14,
        480,
        192,
        96,
        208,
        16,
        48,
        64,
    );
    inception(
        &mut layers,
        "inception_4b",
        14,
        512,
        160,
        112,
        224,
        24,
        64,
        64,
    );
    inception(
        &mut layers,
        "inception_4c",
        14,
        512,
        128,
        128,
        256,
        24,
        64,
        64,
    );
    inception(
        &mut layers,
        "inception_4d",
        14,
        512,
        112,
        144,
        288,
        32,
        64,
        64,
    );
    inception(
        &mut layers,
        "inception_4e",
        14,
        528,
        256,
        160,
        320,
        32,
        128,
        128,
    );
    inception(
        &mut layers,
        "inception_5a",
        7,
        832,
        256,
        160,
        320,
        32,
        128,
        128,
    );
    inception(
        &mut layers,
        "inception_5b",
        7,
        832,
        384,
        192,
        384,
        48,
        128,
        128,
    );
    layers.push(fc("fc", 1024, 1000));
    Network::new("GoogLeNet", layers)
}

/// The CIFAR ResNet family (He et al. 2016): depth `6n + 2` with `n`
/// basic blocks per stage, 32×32 input, identity shortcuts (option A —
/// no projection convolutions). `resnet_cifar(9)` is the paper's
/// ResNet-56.
///
/// # Panics
///
/// Panics if `blocks_per_stage` is zero.
#[must_use]
pub fn resnet_cifar(blocks_per_stage: usize) -> Network {
    assert!(
        blocks_per_stage > 0,
        "a ResNet needs at least one block per stage"
    );
    let depth = 6 * blocks_per_stage + 2;
    let mut layers = vec![conv("conv1", 3, 16, 32, 3, 1, 1)];
    let stages: [(usize, usize, usize); 3] = [(16, 32, 1), (32, 16, 2), (64, 8, 3)];
    for &(width, hw, stage) in &stages {
        for block in 0..blocks_per_stage {
            let first_of_stage = block == 0 && stage > 1;
            let (n, stride, in_hw) = if first_of_stage {
                (width / 2, 2, hw * 2)
            } else {
                (width, 1, hw)
            };
            layers.push(conv(
                &format!("conv{stage}_{block}a"),
                n,
                width,
                in_hw,
                3,
                stride,
                1,
            ));
            layers.push(conv(
                &format!("conv{stage}_{block}b"),
                width,
                width,
                hw,
                3,
                1,
                1,
            ));
        }
    }
    layers.push(fc("fc", 64, 10));
    let name = if depth == 56 {
        "ResNet".to_owned() // the paper's evaluation name
    } else {
        format!("ResNet-{depth}")
    };
    Network::new(&name, layers)
}

/// ResNet-56 — the paper's evaluated configuration.
#[must_use]
pub fn resnet56() -> Network {
    resnet_cifar(9)
}

/// DenseNet-121 (Huang et al. 2017), 224×224 input, growth rate 32,
/// bottleneck width 128.
#[must_use]
pub fn densenet121() -> Network {
    const GROWTH: usize = 32;
    const BOTTLENECK: usize = 4 * GROWTH;
    let mut layers = vec![conv("conv1", 3, 64, 224, 7, 2, 3).with_pool(max_pool(3, 2))];
    let mut channels = 64;
    let mut hw = 56;
    let block_sizes = [6usize, 12, 24, 16];
    for (b, &len) in block_sizes.iter().enumerate() {
        for l in 0..len {
            layers.push(conv(
                &format!("block{}/layer{}/1x1", b + 1, l + 1),
                channels + l * GROWTH,
                BOTTLENECK,
                hw,
                1,
                1,
                0,
            ));
            layers.push(conv(
                &format!("block{}/layer{}/3x3", b + 1, l + 1),
                BOTTLENECK,
                GROWTH,
                hw,
                3,
                1,
                1,
            ));
        }
        channels += len * GROWTH;
        if b + 1 < block_sizes.len() {
            layers.push(
                conv(
                    &format!("transition{}", b + 1),
                    channels,
                    channels / 2,
                    hw,
                    1,
                    1,
                    0,
                )
                .with_pool(PoolSpec {
                    kind: PoolKind::Average,
                    window: 2,
                    stride: 2,
                }),
            );
            channels /= 2;
            hw /= 2;
        }
    }
    layers.push(fc("fc", channels, 1000));
    Network::new("DenseNet", layers)
}

fn fire(layers: &mut Vec<NetworkLayer>, name: &str, hw: usize, cin: usize, s: usize, e: usize) {
    layers.push(conv(&format!("{name}/squeeze1x1"), cin, s, hw, 1, 1, 0));
    layers.push(conv(&format!("{name}/expand1x1"), s, e, hw, 1, 1, 0));
    layers.push(conv(&format!("{name}/expand3x3"), s, e, hw, 3, 1, 1));
}

/// SqueezeNet v1.0 (Iandola et al. 2016), 227×227 input.
#[must_use]
pub fn squeezenet() -> Network {
    let mut layers = vec![conv("conv1", 3, 96, 227, 7, 2, 0).with_pool(max_pool(3, 2))];
    fire(&mut layers, "fire2", 55, 96, 16, 64);
    fire(&mut layers, "fire3", 55, 128, 16, 64);
    fire(&mut layers, "fire4", 55, 128, 32, 128);
    if let Some(last) = layers.pop() {
        layers.push(last.with_pool(max_pool(3, 2)));
    }
    fire(&mut layers, "fire5", 27, 256, 32, 128);
    fire(&mut layers, "fire6", 27, 256, 48, 192);
    fire(&mut layers, "fire7", 27, 384, 48, 192);
    fire(&mut layers, "fire8", 27, 384, 64, 256);
    if let Some(last) = layers.pop() {
        layers.push(last.with_pool(max_pool(3, 2)));
    }
    fire(&mut layers, "fire9", 13, 512, 64, 256);
    layers.push(conv("conv10", 512, 1000, 13, 1, 1, 0));
    Network::new("SqueezeNet", layers)
}

/// One pre-activation bottleneck residual unit (1×1 → 3×3 → 1×1), with a
/// projection shortcut when the channel count or stride changes.
fn residual_unit(
    layers: &mut Vec<NetworkLayer>,
    name: &str,
    hw: usize,
    cin: usize,
    cmid: usize,
    cout: usize,
    stride: usize,
) {
    layers.push(conv(&format!("{name}/1x1a"), cin, cmid, hw, 1, 1, 0));
    layers.push(conv(&format!("{name}/3x3"), cmid, cmid, hw, 3, stride, 1));
    let out_hw = hw / stride;
    layers.push(conv(&format!("{name}/1x1b"), cmid, cout, out_hw, 1, 1, 0));
    if cin != cout || stride != 1 {
        layers.push(conv(
            &format!("{name}/shortcut"),
            cin,
            cout,
            hw,
            1,
            stride,
            0,
        ));
    }
}

/// One attention module (approximated — see module docs): pre unit, two
/// trunk units, post unit, a four-unit soft-mask branch at halved
/// resolution, and two 1×1 mask-output convolutions.
fn attention_module(layers: &mut Vec<NetworkLayer>, name: &str, hw: usize, c: usize) {
    // Basic-block width (mid = c, rather than the ImageNet bottleneck's
    // c/4) keeps the module's 3×3 MAC share representative of the network
    // the paper benchmarks; Table V's 2.2-2.6x conv speedups require 3×3
    // layers to dominate the attention modules.
    let mid = c;
    residual_unit(layers, &format!("{name}/pre"), hw, c, mid, c, 1);
    residual_unit(layers, &format!("{name}/trunk1"), hw, c, mid, c, 1);
    residual_unit(layers, &format!("{name}/trunk2"), hw, c, mid, c, 1);
    let mask_hw = hw / 2;
    for i in 1..=4 {
        residual_unit(layers, &format!("{name}/mask{i}"), mask_hw, c, mid, c, 1);
    }
    layers.push(conv(&format!("{name}/mask_out"), c, c, hw, 1, 1, 0));
    residual_unit(layers, &format!("{name}/post"), hw, c, mid, c, 1);
}

/// Residual Attention Network ("ResANet", Wang et al. 2017, Attention-56
/// approximation), 224×224 input.
#[must_use]
pub fn resanet() -> Network {
    let mut layers = vec![conv("conv1", 3, 64, 224, 7, 2, 3).with_pool(max_pool(3, 2))];
    residual_unit(&mut layers, "res1", 56, 64, 128, 256, 1);
    attention_module(&mut layers, "attention1", 56, 256);
    residual_unit(&mut layers, "res2", 56, 256, 256, 512, 2);
    attention_module(&mut layers, "attention2", 28, 512);
    residual_unit(&mut layers, "res3", 28, 512, 512, 1024, 2);
    attention_module(&mut layers, "attention3", 14, 1024);
    residual_unit(&mut layers, "res4_1", 14, 1024, 1024, 2048, 2);
    residual_unit(&mut layers, "res4_2", 7, 2048, 1024, 2048, 1);
    residual_unit(&mut layers, "res4_3", 7, 2048, 1024, 2048, 1);
    layers.push(fc("fc", 2048, 1000));
    Network::new("ResANet", layers)
}

fn depthwise(name: &str, channels: usize, hw: usize, stride: usize) -> NetworkLayer {
    NetworkLayer::new(
        LayerShape::depthwise(name, channels, hw, hw, 3, stride, 1)
            .unwrap_or_else(|e| panic!("zoo table entry {name} invalid: {e}")),
    )
}

/// MobileNet v1 (Howard et al. 2017), 224×224 input — the network family
/// the paper explicitly *excludes*: depth-wise separable convolution
/// removes the cross-filter redundancy transferred filters exploit, so
/// the TFE runs it conventionally with no benefit. Included to exercise
/// that boundary.
#[must_use]
pub fn mobilenet() -> Network {
    let mut layers = vec![conv("conv1", 3, 32, 224, 3, 2, 1)];
    let blocks: [(usize, usize, usize, usize); 13] = [
        // (in channels, out channels, input hw, dw stride)
        (32, 64, 112, 1),
        (64, 128, 112, 2),
        (128, 128, 56, 1),
        (128, 256, 56, 2),
        (256, 256, 28, 1),
        (256, 512, 28, 2),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 1024, 14, 2),
        (1024, 1024, 7, 1),
    ];
    for (i, &(cin, cout, hw, stride)) in blocks.iter().enumerate() {
        layers.push(depthwise(&format!("dw{}", i + 1), cin, hw, stride));
        layers.push(conv(
            &format!("pw{}", i + 1),
            cin,
            cout,
            hw / stride,
            1,
            1,
            0,
        ));
    }
    layers.push(fc("fc", 1024, 1000));
    Network::new("MobileNet", layers)
}

/// A miniature depthwise-separable network in the MobileNet style,
/// 32×32 input — small enough to compile and run end-to-end through the
/// cycle-faithful engine (and to serve through `tfe-fleet`), proving the
/// depth-wise boundary is an execution-policy decision, not a
/// capability gap.
#[must_use]
pub fn mobilenet_mini() -> Network {
    let mut layers = vec![conv("conv1", 3, 8, 32, 3, 2, 1)];
    let blocks: [(usize, usize, usize, usize); 3] = [
        // (in channels, out channels, input hw, dw stride)
        (8, 16, 16, 1),
        (16, 24, 16, 2),
        (24, 32, 8, 2),
    ];
    for (i, &(cin, cout, hw, stride)) in blocks.iter().enumerate() {
        layers.push(depthwise(&format!("dw{}", i + 1), cin, hw, stride));
        layers.push(conv(
            &format!("pw{}", i + 1),
            cin,
            cout,
            hw / stride,
            1,
            1,
            0,
        ));
    }
    layers.push(fc("fc", 32 * 4 * 4, 10));
    Network::new("MobileNet-Mini", layers)
}

/// The four mainstream networks of Fig. 15, in the paper's order.
#[must_use]
pub fn mainstream() -> Vec<Network> {
    vec![alexnet(), vgg16(), googlenet(), resnet56()]
}

/// The three recent networks of Table V, in the paper's order.
#[must_use]
pub fn recent() -> Vec<Network> {
    vec![densenet121(), squeezenet(), resanet()]
}

/// All seven benchmark networks.
#[must_use]
pub fn all() -> Vec<Network> {
    let mut nets = mainstream();
    nets.extend(recent());
    nets
}

/// The canonical id of every network [`by_name`] resolves (primary
/// names, not aliases) — what a fleet registry or CLI enumerates when
/// listing servable models.
#[must_use]
pub fn names() -> &'static [&'static str] {
    &[
        "alexnet",
        "vgg16",
        "vgg19",
        "googlenet",
        "resnet20",
        "resnet32",
        "resnet56",
        "resnet110",
        "densenet121",
        "squeezenet",
        "resanet",
        "mobilenet",
        "mobilenet-mini",
    ]
}

/// Looks a network up by its paper name (case-insensitive; accepts a few
/// aliases such as `"vgg16"` and `"resnet56"`).
///
/// A `-p<percent>` suffix resolves the magnitude-pruned variant of the
/// base network ([`Network::pruned`]): `"alexnet-p90"` is AlexNet with
/// every conv layer annotated to 90% pruning sparsity. Percent must be
/// in `1..=99` — `-p0` and `-p100` are not pruned-variant names.
#[must_use]
pub fn by_name(name: &str) -> Option<Network> {
    if let Some((base, pct)) = name.rsplit_once("-p") {
        if let Ok(pct @ 1..=99) = pct.parse::<u32>() {
            return Some(by_name(base)?.pruned(f64::from(pct) / 100.0));
        }
    }
    match name.to_ascii_lowercase().as_str() {
        "alexnet" => Some(alexnet()),
        "vgg" | "vgg16" | "vggnet" => Some(vgg16()),
        "vgg19" | "vgg-19" => Some(vgg19()),
        "resnet20" | "resnet-20" => Some(resnet_cifar(3)),
        "resnet32" | "resnet-32" => Some(resnet_cifar(5)),
        "resnet110" | "resnet-110" => Some(resnet_cifar(18)),
        "googlenet" => Some(googlenet()),
        "resnet" | "resnet56" | "resnet-56" => Some(resnet56()),
        "densenet" | "densenet121" | "densenet-121" => Some(densenet121()),
        "squeezenet" => Some(squeezenet()),
        "resanet" | "attention56" | "attention-56" => Some(resanet()),
        "mobilenet" | "mobilenet-v1" => Some(mobilenet()),
        "mobilenet-mini" | "mobilenet_mini" | "mobilenetmini" => Some(mobilenet_mini()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_variants_resolve_by_suffix() {
        let p = by_name("alexnet-p90").unwrap();
        assert!(p.name().ends_with("-p90"), "{}", p.name());
        assert!(p
            .conv_layers()
            .all(|l| (l.target_sparsity() - 0.9).abs() < 1e-12));
        assert!(p.fc_layers().all(|l| l.target_sparsity() == 0.0));
        assert!((p.max_target_sparsity() - 0.9).abs() < 1e-12);
        // Aliases compose with the suffix; degenerate percents do not.
        assert!(by_name("vgg-p50").is_some());
        assert!(by_name("alexnet-p0").is_none());
        assert!(by_name("alexnet-p100").is_none());
        assert!(by_name("nonexistent-p90").is_none());
    }

    const GMAC: u64 = 1_000_000_000;
    const MMAC: u64 = 1_000_000;

    #[test]
    fn vgg16_totals_match_literature() {
        let net = vgg16();
        // ~15.35 GMAC conv, ~123.6 M FC params, 13 conv + 3 fc layers.
        assert!(
            (15 * GMAC..16 * GMAC).contains(&net.conv_macs()),
            "{}",
            net.conv_macs()
        );
        assert_eq!(net.conv_layers().count(), 13);
        assert_eq!(net.fc_layers().count(), 3);
        assert!(
            (123_000_000..124_000_000).contains(&net.fc_layers().map(|l| l.params()).sum::<u64>())
        );
        // Conv params ~14.7 M.
        assert!((14 * MMAC..15 * MMAC).contains(&net.conv_params()));
    }

    #[test]
    fn alexnet_fc_fraction_exceeds_eight_percent() {
        // Section V.C.1: "For AlexNet, where FC layers consume more than
        // 8% of the computations…"
        let net = alexnet();
        let frac = net.fc_macs() as f64 / net.total_macs() as f64;
        assert!(frac > 0.08, "fc fraction {frac}");
        // Grouped conv totals ~666 MMAC.
        assert!(
            (600 * MMAC..750 * MMAC).contains(&net.conv_macs()),
            "{}",
            net.conv_macs()
        );
    }

    #[test]
    fn alexnet_conv1_is_11x11_stride_4() {
        let net = alexnet();
        let c1 = &net.layers()[0];
        assert_eq!(c1.shape().k(), 11);
        assert_eq!(c1.shape().e(), 55);
    }

    #[test]
    fn googlenet_conv_macs_in_expected_range() {
        // ~1.5 GMAC of convolution (literature: ~1.58 GMAC fwd total).
        let net = googlenet();
        assert!(
            (GMAC..2 * GMAC).contains(&net.conv_macs()),
            "{}",
            net.conv_macs()
        );
        // 1x1 layers must be a substantial minority of conv MACs.
        let one_by_one: u64 = net
            .conv_layers()
            .filter(|l| l.shape().k() == 1)
            .map(|l| l.macs())
            .sum();
        let frac = one_by_one as f64 / net.conv_macs() as f64;
        assert!(frac > 0.2 && frac < 0.6, "1x1 fraction {frac}");
    }

    #[test]
    fn resnet56_has_55_convs_and_tiny_fc() {
        let net = resnet56();
        assert_eq!(net.conv_layers().count(), 55);
        assert_eq!(net.fc_macs(), 640);
        // ~126 MMAC (literature figure for ResNet-56 on CIFAR).
        assert!(
            (100 * MMAC..160 * MMAC).contains(&net.conv_macs()),
            "{}",
            net.conv_macs()
        );
        // Nearly everything is 3x3.
        let k3: u64 = net
            .conv_layers()
            .filter(|l| l.shape().k() == 3)
            .map(|l| l.macs())
            .sum();
        assert!(k3 as f64 / net.conv_macs() as f64 > 0.99);
    }

    #[test]
    fn densenet_is_dominated_by_1x1_macs() {
        // Table V discussion: "1×1 filter-related computations constitute
        // approximately 60% of the total computations" in DenseNet.
        let net = densenet121();
        let one_by_one: u64 = net
            .conv_layers()
            .filter(|l| l.shape().k() == 1)
            .map(|l| l.macs())
            .sum();
        let frac = one_by_one as f64 / net.conv_macs() as f64;
        assert!((0.5..0.75).contains(&frac), "1x1 fraction {frac}");
    }

    #[test]
    fn densenet_channel_bookkeeping() {
        let net = densenet121();
        // Final FC must see 1024 channels (the DenseNet-121 invariant).
        let fc = net.fc_layers().next().unwrap();
        assert_eq!(fc.shape().n(), 1024);
    }

    #[test]
    fn squeezenet_macs_and_structure() {
        let net = squeezenet();
        // 26 conv layers (1 + 8 fires x 3 + conv10), no FC.
        assert_eq!(net.conv_layers().count(), 26);
        assert_eq!(net.fc_layers().count(), 0);
        // Literature: ~0.7-0.9 GMAC.
        assert!(
            (500 * MMAC..GMAC).contains(&net.conv_macs()),
            "{}",
            net.conv_macs()
        );
    }

    #[test]
    fn resanet_3x3_share_supports_table5_speedups() {
        // Table V reports 2.2-2.6x conv speedups for ResANet, implying a
        // majority of MACs in transferable 3x3 layers.
        let net = resanet();
        let k3: u64 = net
            .conv_layers()
            .filter(|l| l.shape().k() == 3)
            .map(|l| l.macs())
            .sum();
        let frac = k3 as f64 / net.conv_macs() as f64;
        assert!(frac > 0.4, "3x3 fraction {frac}");
    }

    #[test]
    fn resnet_family_scales_with_depth() {
        let r20 = resnet_cifar(3);
        let r56 = resnet_cifar(9);
        let r110 = resnet_cifar(18);
        assert_eq!(r20.conv_layers().count(), 19);
        assert_eq!(r56.conv_layers().count(), 55);
        assert_eq!(r110.conv_layers().count(), 109);
        assert!(r20.conv_macs() < r56.conv_macs());
        assert!(r56.conv_macs() < r110.conv_macs());
        assert_eq!(r56.name(), "ResNet");
        assert_eq!(r110.name(), "ResNet-110");
    }

    #[test]
    fn vgg19_extends_vgg16() {
        let v16 = vgg16();
        let v19 = vgg19();
        assert_eq!(v19.conv_layers().count(), 16);
        assert!(v19.conv_macs() > v16.conv_macs());
        // Same FC head.
        assert_eq!(v19.fc_macs(), v16.fc_macs());
    }

    #[test]
    fn by_name_resolves_all_aliases() {
        for name in [
            "AlexNet",
            "vgg",
            "VGGNet",
            "googlenet",
            "ResNet",
            "DenseNet",
            "SqueezeNet",
            "ResANet",
        ] {
            assert!(by_name(name).is_some(), "{name}");
        }
        assert!(by_name("mobilenet").is_some());
        assert!(by_name("efficientnet").is_none());
    }

    #[test]
    fn mobilenet_is_depthwise_dominated_and_excluded_from_sweeps() {
        let net = mobilenet();
        // Depth-wise + 1x1 layers leave nothing for the transfer to act on.
        let transferable: u64 = net
            .conv_layers()
            .filter(|l| l.shape().kind().transferable() && l.shape().k() >= 2)
            .map(|l| l.macs())
            .sum();
        let frac = transferable as f64 / net.conv_macs() as f64;
        assert!(frac < 0.05, "transferable fraction {frac}");
        // MobileNet v1: ~569 MMAC of convolution.
        assert!(
            (400 * MMAC..700 * MMAC).contains(&net.conv_macs()),
            "{}",
            net.conv_macs()
        );
        // Not part of the paper's sweeps.
        assert!(all().iter().all(|n| n.name() != "MobileNet"));
    }

    #[test]
    fn mobilenet_mini_chains_and_plans_dense_depthwise() {
        use tfe_transfer::{Policy, TransferScheme};
        let net = mobilenet_mini();
        assert!(by_name("mobilenet-mini").is_some());
        // Layers chain: each conv's N equals the previous conv's M.
        let convs: Vec<_> = net.conv_layers().collect();
        for pair in convs.windows(2) {
            assert_eq!(
                pair[1].shape().n(),
                pair[0].shape().m(),
                "{} -> {}",
                pair[0].shape().name(),
                pair[1].shape().name()
            );
        }
        // Every depth-wise layer resolves to an explicit dense policy in
        // the plan; pointwise layers do too; nothing transfers except the
        // standard 3x3 stem.
        let plan = net.plan(TransferScheme::Scnn);
        for lp in plan.layers() {
            let shape = lp.layer().shape();
            if shape.groups() > 1 {
                assert!(
                    matches!(lp.policy(), Policy::Dense { reason }
                        if reason.contains("depth-wise")),
                    "{}",
                    shape.name()
                );
                assert!(!lp.mode().is_transferred(), "{}", shape.name());
            }
        }
        assert_eq!(
            plan.layers()
                .iter()
                .filter(|l| l.mode().is_transferred())
                .count(),
            1,
            "only the 3x3 stem transfers"
        );
    }

    #[test]
    fn every_canonical_name_resolves() {
        for name in names() {
            let net = by_name(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert!(net.total_macs() > 0, "{name}");
        }
        // The canonical list is ids, so it must be duplicate-free.
        let mut seen = names().to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), names().len());
    }

    #[test]
    fn all_networks_have_positive_macs_and_params() {
        for net in all() {
            assert!(net.total_macs() > 0, "{}", net.name());
            assert!(net.total_params() > 0, "{}", net.name());
        }
        assert_eq!(all().len(), 7);
    }
}
