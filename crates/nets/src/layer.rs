//! One layer of a benchmark network.

use tfe_tensor::pool::PoolSpec;
use tfe_tensor::shape::{ConvKind, LayerShape};

/// A network layer: its convolution shape plus network-level attributes
/// (grouped convolution, trailing pooling) that the raw [`LayerShape`]
/// does not carry.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkLayer {
    shape: LayerShape,
    groups: usize,
    pool: Option<PoolSpec>,
    target_sparsity: f64,
}

impl NetworkLayer {
    /// Wraps a layer shape with no grouping and no trailing pool.
    #[must_use]
    pub fn new(shape: LayerShape) -> Self {
        NetworkLayer {
            shape,
            groups: 1,
            pool: None,
            target_sparsity: 0.0,
        }
    }

    /// Sets grouped convolution (AlexNet's two-GPU split): each filter
    /// sees `N / groups` input channels.
    #[must_use]
    pub fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups.max(1);
        self
    }

    /// Attaches a pooling stage that immediately follows this layer.
    #[must_use]
    pub fn with_pool(mut self, pool: PoolSpec) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Annotates the magnitude-pruning sparsity this layer's weights
    /// should be pruned to before execution (a fraction in `[0, 1]`; 0 =
    /// unpruned). A *hint* carried by pruned zoo variants
    /// ([`crate::Network::pruned`]) — validation happens where weights
    /// are actually pruned (`tfe_baselines`' `SparseFilterBank::prune`,
    /// which rejects fractions outside `[0, 1]` as a typed error).
    #[must_use]
    pub fn with_target_sparsity(mut self, sparsity: f64) -> Self {
        self.target_sparsity = sparsity;
        self
    }

    /// The annotated pruning target (0 = unpruned).
    #[must_use]
    pub fn target_sparsity(&self) -> f64 {
        self.target_sparsity
    }

    /// The convolution shape. `N` is the *total* ifmap channel count; use
    /// [`NetworkLayer::channels_per_filter`] for the per-filter count under
    /// grouping.
    #[must_use]
    pub fn shape(&self) -> &LayerShape {
        &self.shape
    }

    /// Number of convolution groups (1 = ordinary convolution).
    #[must_use]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The trailing pooling stage, if any.
    #[must_use]
    pub fn pool(&self) -> Option<PoolSpec> {
        self.pool
    }

    /// Input channels seen by each filter (`N / groups`).
    #[must_use]
    pub fn channels_per_filter(&self) -> usize {
        self.shape.n() / self.groups
    }

    /// MACs of this layer, accounting for grouping.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.shape.macs() / self.groups as u64
    }

    /// Dense parameter count, accounting for grouping.
    #[must_use]
    pub fn params(&self) -> u64 {
        self.shape.params() / self.groups as u64
    }

    /// Whether this is a fully connected layer.
    #[must_use]
    pub fn is_fc(&self) -> bool {
        self.shape.kind() == ConvKind::FullyConnected
    }

    /// The shape as seen by per-filter analyses: identical to
    /// [`NetworkLayer::shape`] except `N` is replaced by the per-filter
    /// channel count under grouping.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide `N` (enforced by the zoo tables).
    #[must_use]
    pub fn per_filter_shape(&self) -> LayerShape {
        if self.groups == 1 {
            return self.shape.clone();
        }
        assert_eq!(self.shape.n() % self.groups, 0, "groups must divide N");
        LayerShape::conv(
            self.shape.name(),
            self.channels_per_filter(),
            self.shape.m(),
            self.shape.h(),
            self.shape.w(),
            self.shape.k(),
            self.shape.stride(),
            self.shape.pad(),
        )
        .expect("derived per-filter shape is valid when the source shape is")
    }
}

impl From<LayerShape> for NetworkLayer {
    fn from(shape: LayerShape) -> Self {
        NetworkLayer::new(shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_tensor::pool::{PoolKind, PoolSpec};

    #[test]
    fn grouping_divides_macs_and_params() {
        let shape = LayerShape::conv("conv2", 96, 256, 27, 27, 5, 1, 2).unwrap();
        let layer = NetworkLayer::new(shape.clone()).with_groups(2);
        assert_eq!(layer.macs() * 2, shape.macs());
        assert_eq!(layer.params() * 2, shape.params());
        assert_eq!(layer.channels_per_filter(), 48);
    }

    #[test]
    fn per_filter_shape_reflects_grouping() {
        let shape = LayerShape::conv("conv4", 384, 384, 13, 13, 3, 1, 1).unwrap();
        let layer = NetworkLayer::new(shape).with_groups(2);
        let pf = layer.per_filter_shape();
        assert_eq!(pf.n(), 192);
        assert_eq!(pf.m(), 384);
        assert_eq!(layer.macs(), pf.macs());
    }

    #[test]
    fn pool_annotation_round_trips() {
        let shape = LayerShape::conv("c", 3, 8, 8, 8, 3, 1, 1).unwrap();
        let pool = PoolSpec::non_overlapping(PoolKind::Max, 2).unwrap();
        let layer = NetworkLayer::new(shape).with_pool(pool);
        assert_eq!(layer.pool(), Some(pool));
    }

    #[test]
    fn fc_detection() {
        let fc = NetworkLayer::new(LayerShape::fully_connected("fc", 64, 10).unwrap());
        assert!(fc.is_fc());
        let conv = NetworkLayer::new(LayerShape::conv("c", 3, 8, 8, 8, 3, 1, 1).unwrap());
        assert!(!conv.is_fc());
    }
}
