//! Benchmark network zoo (Section V.A of the TFE paper).
//!
//! The paper evaluates four mainstream networks — AlexNet, VGGNet
//! (VGG-16), GoogLeNet and ResNet-56 — plus three recent ones —
//! DenseNet-121, SqueezeNet v1.0 and the Residual Attention Network
//! (ResANet, Attention-56). This crate encodes their per-layer shape
//! tables ([`zoo`]), the per-layer transfer policy, and the conversion of
//! a network into a [`plan::NetworkPlan`] that the simulators execute.
//!
//! # Example
//!
//! ```
//! use tfe_nets::zoo;
//! use tfe_transfer::TransferScheme;
//!
//! let vgg = zoo::vgg16();
//! // VGG-16's well-known totals: ~15.3 GMAC of convolution.
//! assert!(vgg.conv_macs() > 15_000_000_000);
//! let plan = vgg.plan(TransferScheme::Scnn);
//! // Every 3x3 layer transfers; the FC layers do not.
//! assert!(plan.transferred_fraction_of_macs() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layer;
pub mod network;
pub mod plan;
pub mod zoo;

pub use layer::NetworkLayer;
pub use network::Network;
pub use plan::{LayerPlan, NetworkPlan, TransferMode};
