//! One submodule per paper artifact. Every submodule exposes a `run`
//! function returning structured results and a `render` (or
//! `Result::render`) producing the paper's row/series layout, with the
//! paper's own numbers alongside for EXPERIMENTS.md bookkeeping.

pub mod eq_analysis;
pub mod extensions_table;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod safm_ablation;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

/// The three schemes every sweep covers, in the paper's order.
#[must_use]
pub fn schemes() -> [tfe_transfer::TransferScheme; 3] {
    use tfe_transfer::TransferScheme;
    [
        TransferScheme::DCNN4,
        TransferScheme::DCNN6,
        TransferScheme::Scnn,
    ]
}

/// The four mainstream evaluation networks of Fig. 15, by name.
pub const MAINSTREAM: [&str; 4] = ["AlexNet", "VGGNet", "GoogLeNet", "ResNet"];

/// The three recent networks of Table V, by name.
pub const RECENT: [&str; 3] = ["DenseNet", "SqueezeNet", "ResANet"];
