//! Fig. 15 — CONV-layer and overall speedup over Eyeriss, per network and
//! scheme.

use crate::format::{ratio, Table};
use rayon::prelude::*;
use serde::Serialize;
use tfe_core::Engine;

/// One (network, scheme) speedup pair.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpeedupPoint {
    /// Network name.
    pub network: String,
    /// Scheme label.
    pub scheme: String,
    /// CONV-layer speedup over Eyeriss (Fig. 15(a)).
    pub conv: f64,
    /// Overall speedup over Eyeriss (Fig. 15(b)).
    pub overall: f64,
}

/// The full Fig. 15 dataset.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig15 {
    /// All points, network-major, scheme-minor.
    pub points: Vec<SpeedupPoint>,
    /// Per-scheme average CONV speedups (the paper reports 2.07× /
    /// 2.93× / 3.17×).
    pub conv_averages: Vec<(String, f64)>,
    /// Per-scheme average overall speedups (paper: 1.99× / 2.73× /
    /// 2.97×).
    pub overall_averages: Vec<(String, f64)>,
}

/// Paper reference averages (scheme label, conv avg, overall avg).
pub const PAPER_AVERAGES: [(&str, f64, f64); 3] = [
    ("DCNN4x4", 2.07, 1.99),
    ("DCNN6x6", 2.93, 2.73),
    ("SCNN", 3.17, 2.97),
];

/// Runs the Fig. 15 sweep over the mainstream networks.
#[must_use]
pub fn run(engine: &Engine) -> Fig15 {
    run_over(engine, &super::MAINSTREAM)
}

/// Runs the sweep over an arbitrary network list (Table V reuses this).
///
/// The network × scheme cells are independent, so they are evaluated
/// across the ambient thread budget; the result order stays
/// network-major exactly as the sequential sweep produced it.
#[must_use]
pub fn run_over(engine: &Engine, networks: &[&str]) -> Fig15 {
    let cells: Vec<_> = networks
        .iter()
        .flat_map(|net| {
            super::schemes()
                .into_iter()
                .map(move |scheme| (*net, scheme))
        })
        .collect();
    let points: Vec<SpeedupPoint> = cells
        .par_iter()
        .map(|&(net, scheme)| {
            let report = engine
                .run_network(net, scheme)
                .expect("sweep networks exist in the zoo");
            SpeedupPoint {
                network: net.to_owned(),
                scheme: scheme.label(),
                conv: report.conv_speedup,
                overall: report.overall_speedup,
            }
        })
        .collect();
    let averages = |pick: fn(&SpeedupPoint) -> f64| -> Vec<(String, f64)> {
        super::schemes()
            .iter()
            .map(|s| {
                let label = s.label();
                let values: Vec<f64> = points
                    .iter()
                    .filter(|p| p.scheme == label)
                    .map(pick)
                    .collect();
                (label, values.iter().sum::<f64>() / values.len() as f64)
            })
            .collect()
    };
    Fig15 {
        conv_averages: averages(|p| p.conv),
        overall_averages: averages(|p| p.overall),
        points,
    }
}

/// Renders both panels in the paper's layout.
#[must_use]
pub fn render(result: &Fig15) -> String {
    let mut out = String::new();
    for (title, pick, avgs) in [
        (
            "Fig. 15(a): CONV-layer speedup over Eyeriss",
            (|p: &SpeedupPoint| p.conv) as fn(&SpeedupPoint) -> f64,
            &result.conv_averages,
        ),
        (
            "Fig. 15(b): overall speedup over Eyeriss",
            |p: &SpeedupPoint| p.overall,
            &result.overall_averages,
        ),
    ] {
        let mut table = Table::new(title, &["network", "DCNN4x4", "DCNN6x6", "SCNN"]);
        let networks: Vec<&str> = {
            let mut seen = Vec::new();
            for p in &result.points {
                if !seen.contains(&p.network.as_str()) {
                    seen.push(p.network.as_str());
                }
            }
            seen
        };
        for net in networks {
            let mut cells = vec![net.to_owned()];
            for scheme in super::schemes() {
                let v = result
                    .points
                    .iter()
                    .find(|p| p.network == net && p.scheme == scheme.label())
                    .map_or(0.0, pick);
                cells.push(ratio(v));
            }
            table.row(&cells);
        }
        let mut avg_cells = vec!["average".to_owned()];
        for (_, v) in avgs {
            avg_cells.push(ratio(*v));
        }
        table.row(&avg_cells);
        let mut paper_cells = vec!["paper avg".to_owned()];
        for (_, conv, overall) in PAPER_AVERAGES {
            paper_cells.push(ratio(if title.contains("(a)") { conv } else { overall }));
        }
        table.row(&paper_cells);
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Convenience: run with a fresh default engine and render.
#[must_use]
pub fn report() -> String {
    render(&run(&Engine::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_networks_and_schemes() {
        let r = run(&Engine::new());
        assert_eq!(r.points.len(), 12);
        assert_eq!(r.conv_averages.len(), 3);
    }

    #[test]
    fn averages_preserve_paper_ordering() {
        let r = run(&Engine::new());
        let get = |label: &str| {
            r.conv_averages
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(get("SCNN") > get("DCNN6x6"));
        assert!(get("DCNN6x6") > get("DCNN4x4"));
    }

    #[test]
    fn vgg_and_resnet_outpace_alexnet_and_googlenet_at_dcnn() {
        // Fig. 15's per-network shape for the DCNN configurations.
        let r = run(&Engine::new());
        let conv = |net: &str, scheme: &str| {
            r.points
                .iter()
                .find(|p| p.network == net && p.scheme == scheme)
                .unwrap()
                .conv
        };
        for scheme in ["DCNN4x4", "DCNN6x6"] {
            assert!(
                conv("VGGNet", scheme) > conv("GoogLeNet", scheme),
                "{scheme}"
            );
            assert!(conv("ResNet", scheme) > conv("AlexNet", scheme), "{scheme}");
        }
    }

    #[test]
    fn render_contains_every_network_row() {
        let text = report();
        for net in super::super::MAINSTREAM {
            assert!(text.contains(net), "{net}");
        }
        assert!(text.contains("paper avg"));
    }
}
