//! Fig. 18 — overall energy-efficiency improvement over Eyeriss on
//! VGGNet and AlexNet.

use crate::format::{ratio, Table};
use serde::Serialize;
use tfe_baselines::computation_reduction::SnaPea;
use tfe_baselines::weight_compression::PruningModel;
use tfe_core::Engine;

/// One bar of Fig. 18.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EePoint {
    /// Network.
    pub network: String,
    /// Method name.
    pub method: String,
    /// Energy-efficiency improvement over Eyeriss.
    pub improvement: f64,
}

/// The figure's dataset.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig18 {
    /// All bars.
    pub points: Vec<EePoint>,
    /// Per-scheme averages over the two networks.
    pub averages: Vec<(String, f64)>,
}

/// Paper reference averages: scheme → EE improvement over Eyeriss on
/// VGG+AlexNet (Section VII: 8.33×, 12.66×, 13.31×; SnaPEA 1.48×,
/// UCNN 4.23×).
pub const PAPER_AVERAGES: [(&str, f64); 5] = [
    ("SnaPEA", 1.48),
    ("UCNN", 4.23),
    ("TFE (DCNN4x4)", 8.33),
    ("TFE (DCNN6x6)", 12.66),
    ("TFE (SCNN)", 13.31),
];

/// Runs the energy-efficiency comparison.
#[must_use]
pub fn run(engine: &Engine) -> Fig18 {
    let mut points = Vec::new();
    for net in ["VGGNet", "AlexNet"] {
        points.push(EePoint {
            network: net.to_owned(),
            method: "SnaPEA".to_owned(),
            improvement: SnaPea::ENERGY_EFFICIENCY,
        });
        points.push(EePoint {
            network: net.to_owned(),
            method: "UCNN".to_owned(),
            improvement: PruningModel::UCNN_ENERGY_EFFICIENCY,
        });
        for scheme in super::schemes() {
            let r = engine.run_network(net, scheme).expect("networks exist");
            points.push(EePoint {
                network: net.to_owned(),
                method: format!("TFE ({})", scheme.label()),
                improvement: r.energy_efficiency,
            });
        }
    }
    let methods: Vec<String> = {
        let mut seen = Vec::new();
        for p in &points {
            if !seen.contains(&p.method) {
                seen.push(p.method.clone());
            }
        }
        seen
    };
    let averages = methods
        .into_iter()
        .map(|m| {
            let vs: Vec<f64> = points
                .iter()
                .filter(|p| p.method == m)
                .map(|p| p.improvement)
                .collect();
            (m, vs.iter().sum::<f64>() / vs.len() as f64)
        })
        .collect();
    Fig18 { points, averages }
}

/// Renders the figure's bars.
#[must_use]
pub fn render(result: &Fig18) -> String {
    let mut table = Table::new(
        "Fig. 18: energy-efficiency improvement over Eyeriss",
        &["method", "VGGNet", "AlexNet", "average", "paper avg"],
    );
    for (method, avg) in &result.averages {
        let get = |net: &str| {
            result
                .points
                .iter()
                .find(|p| p.network == net && &p.method == method)
                .map_or(0.0, |p| p.improvement)
        };
        let paper = PAPER_AVERAGES
            .iter()
            .find(|(m, _)| m == method)
            .map_or_else(|| "-".to_owned(), |(_, v)| ratio(*v));
        table.row(&[
            method.clone(),
            ratio(get("VGGNet")),
            ratio(get("AlexNet")),
            ratio(*avg),
            paper,
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfe_dominates_both_comparators() {
        let r = run(&Engine::new());
        let avg = |m: &str| r.averages.iter().find(|(n, _)| n == m).unwrap().1;
        for scheme in ["TFE (DCNN4x4)", "TFE (DCNN6x6)", "TFE (SCNN)"] {
            assert!(avg(scheme) > avg("UCNN"), "{scheme}");
            assert!(avg(scheme) > avg("SnaPEA"), "{scheme}");
        }
    }

    #[test]
    fn scheme_ordering_holds() {
        let r = run(&Engine::new());
        let avg = |m: &str| r.averages.iter().find(|(n, _)| n == m).unwrap().1;
        assert!(avg("TFE (SCNN)") > avg("TFE (DCNN6x6)"));
        assert!(avg("TFE (DCNN6x6)") > avg("TFE (DCNN4x4)"));
    }

    #[test]
    fn scnn_average_in_paper_band() {
        // Paper: 13.31x average on VGG + AlexNet.
        let r = run(&Engine::new());
        let avg = r
            .averages
            .iter()
            .find(|(n, _)| n == "TFE (SCNN)")
            .unwrap()
            .1;
        assert!((9.0..18.0).contains(&avg), "{avg}");
    }

    #[test]
    fn snapea_factor_vs_tfe_matches_paper_direction() {
        // Paper: TFE(SCNN) is 8.99x higher EE than SnaPEA.
        let r = run(&Engine::new());
        let avg = |m: &str| r.averages.iter().find(|(n, _)| n == m).unwrap().1;
        let factor = avg("TFE (SCNN)") / avg("SnaPEA");
        assert!((6.0..13.0).contains(&factor), "{factor}");
    }
}
