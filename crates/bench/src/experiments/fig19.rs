//! Fig. 19 — MAC counts of the DCNN and SCNN with/without PPSR and ERRR
//! on VGGNet (the ablation of the two techniques).

use crate::format::{ratio, Table};
use rayon::prelude::*;
use serde::Serialize;
use tfe_core::Engine;
use tfe_transfer::analysis::ReuseConfig;

/// One ablation cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AblationPoint {
    /// Scheme label.
    pub scheme: String,
    /// Reuse configuration label.
    pub reuse: String,
    /// MAC reduction over the dense baseline on conv layers.
    pub mac_reduction: f64,
}

/// The ablation dataset.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig19 {
    /// All cells, scheme-major.
    pub points: Vec<AblationPoint>,
}

/// Paper reference reductions: (scheme, PPSR-only, ERRR-only, both).
pub const PAPER: [(&str, f64, f64, f64); 3] = [
    ("DCNN4x4", 1.5, 1.5, 2.25),
    ("DCNN6x6", 2.0, 2.0, 4.0),
    ("SCNN", 8.0 / 6.0, 8.0 / 6.0, 4.0),
];

const CONFIGS: [(&str, ReuseConfig); 4] = [
    ("none", ReuseConfig::NONE),
    ("PPSR only", ReuseConfig::PPSR_ONLY),
    ("ERRR only", ReuseConfig::ERRR_ONLY),
    ("PPSR+ERRR", ReuseConfig::FULL),
];

/// Runs the ablation on VGGNet.
///
/// The scheme × reuse-configuration cells are independent, so they are
/// evaluated across the ambient thread budget; the result order stays
/// scheme-major exactly as the sequential sweep produced it.
#[must_use]
pub fn run() -> Fig19 {
    let cells: Vec<_> = super::schemes()
        .into_iter()
        .flat_map(|scheme| {
            CONFIGS
                .into_iter()
                .map(move |(label, reuse)| (scheme, label, reuse))
        })
        .collect();
    let points = cells
        .par_iter()
        .map(|&(scheme, label, reuse)| {
            let engine = Engine::with_reuse(reuse);
            let r = engine
                .run_network("VGGNet", scheme)
                .expect("VGG exists in the zoo");
            AblationPoint {
                scheme: scheme.label(),
                reuse: label.to_owned(),
                mac_reduction: r.conv_mac_reduction,
            }
        })
        .collect();
    Fig19 { points }
}

/// Renders the ablation grid.
#[must_use]
pub fn render(result: &Fig19) -> String {
    let mut table = Table::new(
        "Fig. 19: MAC reduction on VGGNet with/without PPSR and ERRR",
        &[
            "scheme",
            "none",
            "PPSR only",
            "ERRR only",
            "PPSR+ERRR",
            "paper (P/E/both)",
        ],
    );
    for scheme in super::schemes() {
        let label = scheme.label();
        let mut cells = vec![label.clone()];
        for (cfg_label, _) in CONFIGS {
            let v = result
                .points
                .iter()
                .find(|p| p.scheme == label && p.reuse == cfg_label)
                .map_or(0.0, |p| p.mac_reduction);
            cells.push(ratio(v));
        }
        let paper = PAPER
            .iter()
            .find(|(s, _, _, _)| *s == label)
            .map_or_else(String::new, |(_, p, e, b)| {
                format!("{}/{}/{}", ratio(*p), ratio(*e), ratio(*b))
            });
        cells.push(paper);
        table.row(&cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reduction(r: &Fig19, scheme: &str, reuse: &str) -> f64 {
        r.points
            .iter()
            .find(|p| p.scheme == scheme && p.reuse == reuse)
            .unwrap()
            .mac_reduction
    }

    #[test]
    fn no_reuse_means_no_reduction() {
        let r = run();
        for scheme in ["DCNN4x4", "DCNN6x6", "SCNN"] {
            assert!(
                (reduction(&r, scheme, "none") - 1.0).abs() < 1e-9,
                "{scheme}"
            );
        }
    }

    #[test]
    fn dcnn_factors_match_paper_within_policy_dilution() {
        // VGG is all-3x3 so the measured factors are essentially exact.
        let r = run();
        assert!((reduction(&r, "DCNN4x4", "PPSR only") - 1.5).abs() < 0.02);
        assert!((reduction(&r, "DCNN4x4", "PPSR+ERRR") - 2.25).abs() < 0.03);
        assert!((reduction(&r, "DCNN6x6", "PPSR only") - 2.0).abs() < 0.02);
        assert!((reduction(&r, "DCNN6x6", "PPSR+ERRR") - 4.0).abs() < 0.05);
    }

    #[test]
    fn scnn_needs_both_techniques_for_4x() {
        // The paper's headline ablation: either technique alone only
        // accelerates two of eight filters.
        let r = run();
        assert!((reduction(&r, "SCNN", "PPSR only") - 8.0 / 6.0).abs() < 0.02);
        assert!((reduction(&r, "SCNN", "ERRR only") - 8.0 / 6.0).abs() < 0.02);
        assert!((reduction(&r, "SCNN", "PPSR+ERRR") - 4.0).abs() < 0.05);
    }

    #[test]
    fn symmetric_roles_of_ppsr_and_errr_in_dcnn() {
        // "As the width and height of meta filters in the DCNN are always
        // equal, the same benefits can be obtained in PPSR and ERRR."
        let r = run();
        for scheme in ["DCNN4x4", "DCNN6x6"] {
            let p = reduction(&r, scheme, "PPSR only");
            let e = reduction(&r, scheme, "ERRR only");
            assert!((p - e).abs() < 1e-9, "{scheme}: {p} vs {e}");
        }
    }

    #[test]
    fn render_contains_grid() {
        let text = render(&run());
        assert!(text.contains("PPSR+ERRR"));
        assert!(text.contains("SCNN"));
    }
}
