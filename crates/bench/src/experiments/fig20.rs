//! Fig. 20 — off-chip memory access required by transferred filters vs
//! the original filters.

use crate::format::{ratio, Table};
use serde::Serialize;
use tfe_core::Engine;

/// One bar of Fig. 20.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OffchipPoint {
    /// Network.
    pub network: String,
    /// Scheme label.
    pub scheme: String,
    /// Off-chip access reduction over the dense layout.
    pub reduction: f64,
}

/// The figure's dataset.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig20 {
    /// All bars, network-major.
    pub points: Vec<OffchipPoint>,
}

/// Paper reference bands per scheme on VGG/AlexNet/ResNet, and the
/// GoogLeNet band.
pub const PAPER_BANDS: [(&str, f64, f64); 3] = [
    ("DCNN4x4", 1.28, 1.38),
    ("DCNN6x6", 1.48, 1.59),
    ("SCNN", 1.48, 1.60),
];
/// GoogLeNet's band (all schemes).
pub const PAPER_GOOGLENET: (f64, f64) = (1.19, 1.24);

/// Runs the off-chip sweep over the mainstream networks.
#[must_use]
pub fn run(engine: &Engine) -> Fig20 {
    let mut points = Vec::new();
    for net in super::MAINSTREAM {
        for scheme in super::schemes() {
            let r = engine.run_network(net, scheme).expect("networks exist");
            points.push(OffchipPoint {
                network: net.to_owned(),
                scheme: scheme.label(),
                reduction: r.offchip_reduction,
            });
        }
    }
    Fig20 { points }
}

/// Renders the figure's bars.
#[must_use]
pub fn render(result: &Fig20) -> String {
    let mut table = Table::new(
        "Fig. 20: off-chip access reduction (transferred vs original filters)",
        &["network", "DCNN4x4", "DCNN6x6", "SCNN"],
    );
    for net in super::MAINSTREAM {
        let mut cells = vec![net.to_owned()];
        for scheme in super::schemes() {
            let v = result
                .points
                .iter()
                .find(|p| p.network == net && p.scheme == scheme.label())
                .map_or(0.0, |p| p.reduction);
            cells.push(ratio(v));
        }
        table.row(&cells);
    }
    let mut s = table.render();
    s.push_str(
        "\npaper bands: DCNN4x4 1.28-1.38x, DCNN6x6 1.48-1.59x, SCNN 1.48-1.60x; GoogLeNet 1.19-1.24x\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(r: &Fig20, net: &str, scheme: &str) -> f64 {
        r.points
            .iter()
            .find(|p| p.network == net && p.scheme == scheme)
            .unwrap()
            .reduction
    }

    #[test]
    fn reductions_in_paper_bands_for_dense_3x3_networks() {
        let r = run(&Engine::new());
        for net in ["VGGNet", "ResNet"] {
            for (scheme, lo, hi) in PAPER_BANDS {
                let v = point(&r, net, scheme);
                assert!(
                    (lo - 0.15..=hi + 0.15).contains(&v),
                    "{net}/{scheme}: {v} not near [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn googlenet_saves_least() {
        // "As there are many 1×1 filters in GoogLeNet … the corresponding
        // off-chip memory access cannot be saved."
        let r = run(&Engine::new());
        for scheme in ["DCNN6x6", "SCNN"] {
            let g = point(&r, "GoogLeNet", scheme);
            let v = point(&r, "VGGNet", scheme);
            assert!(g < v, "{scheme}: googlenet {g} vs vgg {v}");
            assert!(g > 1.0);
        }
    }

    #[test]
    fn higher_compression_gives_higher_savings() {
        let r = run(&Engine::new());
        for net in super::super::MAINSTREAM {
            assert!(
                point(&r, net, "DCNN6x6") >= point(&r, net, "DCNN4x4") - 1e-9,
                "{net}"
            );
        }
    }
}
