//! Table V — CONV-layer / overall speedup on the three recent networks
//! (DenseNet, SqueezeNet, ResANet).

use crate::format::Table;
use serde::Serialize;
use tfe_core::Engine;

pub use super::fig15::{Fig15 as Table5, SpeedupPoint};

/// Paper Table V: (network, scheme, conv, overall).
pub const PAPER: [(&str, &str, f64, f64); 9] = [
    ("DenseNet", "DCNN4x4", 1.29, 1.24),
    ("DenseNet", "DCNN6x6", 1.38, 1.31),
    ("DenseNet", "SCNN", 1.39, 1.32),
    ("SqueezeNet", "DCNN4x4", 1.65, 1.62),
    ("SqueezeNet", "DCNN6x6", 2.30, 2.26),
    ("SqueezeNet", "SCNN", 2.32, 2.30),
    ("ResANet", "DCNN4x4", 1.48, 1.39),
    ("ResANet", "DCNN6x6", 2.54, 2.44),
    ("ResANet", "SCNN", 2.64, 2.55),
];

/// Runs the recent-network sweep.
#[must_use]
pub fn run(engine: &Engine) -> Table5 {
    super::fig15::run_over(engine, &super::RECENT)
}

/// One rendered row pairing measured and paper values.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PairedRow {
    /// Network name.
    pub network: String,
    /// Scheme label.
    pub scheme: String,
    /// Measured conv / overall.
    pub measured: (f64, f64),
    /// Paper conv / overall.
    pub paper: (f64, f64),
}

/// Joins the measured sweep with the paper's cells.
#[must_use]
pub fn paired(result: &Table5) -> Vec<PairedRow> {
    PAPER
        .iter()
        .filter_map(|(net, scheme, pc, po)| {
            result
                .points
                .iter()
                .find(|p| p.network == *net && p.scheme == *scheme)
                .map(|p| PairedRow {
                    network: (*net).to_owned(),
                    scheme: (*scheme).to_owned(),
                    measured: (p.conv, p.overall),
                    paper: (*pc, *po),
                })
        })
        .collect()
}

/// Renders Table V with paper values alongside.
#[must_use]
pub fn render(result: &Table5) -> String {
    let mut table = Table::new(
        "Table V: CONV/overall speedup on recent networks",
        &[
            "network",
            "scheme",
            "conv",
            "overall",
            "paper conv",
            "paper overall",
        ],
    );
    for row in paired(result) {
        table.row(&[
            row.network,
            row.scheme,
            format!("{:.2}x", row.measured.0),
            format!("{:.2}x", row.measured.1),
            format!("{:.2}x", row.paper.0),
            format!("{:.2}x", row.paper.1),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_nine_cells() {
        let r = run(&Engine::new());
        assert_eq!(paired(&r).len(), 9);
    }

    #[test]
    fn densenet_is_the_weakest_scnn_case() {
        // Table V's key shape: DenseNet's 1x1-heavy profile caps its
        // speedup below the other recent networks.
        let r = run(&Engine::new());
        let scnn = |net: &str| {
            r.points
                .iter()
                .find(|p| p.network == net && p.scheme == "SCNN")
                .unwrap()
                .conv
        };
        assert!(scnn("DenseNet") < scnn("SqueezeNet"));
        assert!(scnn("DenseNet") < scnn("ResANet"));
    }

    #[test]
    fn overall_never_exceeds_conv() {
        let r = run(&Engine::new());
        for p in &r.points {
            assert!(p.overall <= p.conv + 1e-9, "{}/{}", p.network, p.scheme);
        }
    }

    #[test]
    fn measured_within_band_of_paper() {
        let r = run(&Engine::new());
        for row in paired(&r) {
            let rel = (row.measured.0 - row.paper.0).abs() / row.paper.0;
            assert!(
                rel < 0.45,
                "{} {}: {:.2} vs paper {:.2}",
                row.network,
                row.scheme,
                row.measured.0,
                row.paper.0
            );
        }
    }
}
