//! Table III — technical specifications of the TFE vs Eyeriss.

use crate::format::Table;
use serde::Serialize;
use tfe_energy::specs::{eyeriss_specs, tfe_specs, TechSpecs};

/// Paper Table III reference values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PaperSpecs {
    /// TFE area (mm²) / power (mW).
    pub tfe: (f64, f64),
    /// Eyeriss area (mm²) / power (mW).
    pub eyeriss: (f64, f64),
}

/// The paper's numbers.
pub const PAPER: PaperSpecs = PaperSpecs {
    tfe: (7.1, 62.0),
    eyeriss: (12.25, 257.0),
};

/// Both spec rows.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table3 {
    /// The modelled TFE row.
    pub tfe: TechSpecs,
    /// The published Eyeriss row.
    pub eyeriss: TechSpecs,
}

/// Computes the table.
#[must_use]
pub fn run() -> Table3 {
    Table3 {
        tfe: tfe_specs(),
        eyeriss: eyeriss_specs(),
    }
}

/// Renders Table III with the paper's values alongside.
#[must_use]
pub fn render(result: &Table3) -> String {
    let mut table = Table::new(
        "Table III: technical specifications",
        &[
            "field",
            "TFE (modelled)",
            "Eyeriss (published)",
            "paper TFE",
        ],
    );
    let t = &result.tfe;
    let e = &result.eyeriss;
    table.row(&[
        "technology".into(),
        t.technology.clone(),
        e.technology.clone(),
        "TSMC 65nm 1P8M".into(),
    ]);
    table.row(&[
        "voltage".into(),
        format!("{} V", t.voltage_v),
        format!("{} V", e.voltage_v),
        "1 V".into(),
    ]);
    table.row(&[
        "frequency".into(),
        format!("{} MHz", t.frequency_mhz),
        format!("{} MHz", e.frequency_mhz),
        "200 MHz".into(),
    ]);
    table.row(&[
        "memory".into(),
        format!("{:.1} KB", t.memory_kb),
        format!("{:.1} KB", e.memory_kb),
        "160.0 KB".into(),
    ]);
    table.row(&[
        "#PEs".into(),
        t.pes.to_string(),
        e.pes.to_string(),
        "256".into(),
    ]);
    table.row(&[
        "area".into(),
        format!("{:.2} mm^2", t.area_mm2),
        format!("{:.2} mm^2", e.area_mm2),
        format!("{:.2} mm^2", PAPER.tfe.0),
    ]);
    table.row(&[
        "power".into(),
        format!("{:.1} mW", t.power_mw),
        format!("{:.1} mW", e.power_mw),
        format!("{:.1} mW", PAPER.tfe.1),
    ]);
    let mut s = table.render();
    s.push_str(&format!(
        "\narea advantage: {:.2}x (paper 1.73x), power advantage: {:.2}x (paper 4.15x)\n",
        e.area_mm2 / t.area_mm2,
        e.power_mw / t.power_mw,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modelled_specs_land_near_paper() {
        let r = run();
        assert!((r.tfe.area_mm2 - PAPER.tfe.0).abs() / PAPER.tfe.0 < 0.25);
        assert!((r.tfe.power_mw - PAPER.tfe.1).abs() / PAPER.tfe.1 < 0.35);
        assert_eq!(r.eyeriss.area_mm2, PAPER.eyeriss.0);
        assert_eq!(r.eyeriss.power_mw, PAPER.eyeriss.1);
    }

    #[test]
    fn render_mentions_both_architectures() {
        let text = render(&run());
        assert!(text.contains("TFE"));
        assert!(text.contains("Eyeriss"));
        assert!(text.contains("advantage"));
    }
}
