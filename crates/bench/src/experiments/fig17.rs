//! Fig. 17 — parameter reduction and speedup vs computation-reduction
//! methods on VGGNet's CONV layers.

use crate::format::{pct, ratio, Table};
use serde::Serialize;
use tfe_baselines::computation_reduction::{AsymmetricConv, SnaPea, Winograd};
use tfe_baselines::Comparator;
use tfe_core::Engine;

/// One bar pair of Fig. 17.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MethodPoint {
    /// Method name.
    pub method: String,
    /// Parameter reduction (values below 1 mean *more* parameters, as for
    /// Winograd).
    pub param_reduction: f64,
    /// CONV-layer speedup over Eyeriss.
    pub speedup: f64,
    /// Accuracy loss at the operating point, percentage points.
    pub accuracy_loss_pct: f64,
}

/// The figure's dataset.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig17 {
    /// Comparators plus the three TFE schemes.
    pub points: Vec<MethodPoint>,
}

/// Runs the comparison on VGGNet.
#[must_use]
pub fn run(engine: &Engine) -> Fig17 {
    let net = tfe_nets::zoo::vgg16();
    let mut points = Vec::new();
    let snapea = SnaPea::new();
    let winograd = Winograd::new();
    let asym = AsymmetricConv::new();
    for c in [&snapea as &dyn Comparator, &winograd, &asym] {
        points.push(MethodPoint {
            method: c.name().to_owned(),
            param_reduction: c.param_reduction(&net),
            speedup: c.conv_speedup(&net).expect("all three answer VGG"),
            accuracy_loss_pct: c.accuracy_loss_pct(),
        });
    }
    for scheme in super::schemes() {
        let r = engine.run_network("VGGNet", scheme).expect("VGG exists");
        points.push(MethodPoint {
            method: format!("TFE ({})", scheme.label()),
            param_reduction: r.param_reduction,
            speedup: r.conv_speedup,
            accuracy_loss_pct: if scheme.label() == "SCNN" { 0.4 } else { 0.7 },
        });
    }
    Fig17 { points }
}

/// Renders the figure's rows.
#[must_use]
pub fn render(result: &Fig17) -> String {
    let mut table = Table::new(
        "Fig. 17: computation-reduction comparison on VGGNet CONV layers",
        &[
            "method",
            "param reduction",
            "speedup vs Eyeriss",
            "accuracy loss",
        ],
    );
    for p in &result.points {
        table.row(&[
            p.method.clone(),
            ratio(p.param_reduction),
            ratio(p.speedup),
            pct(p.accuracy_loss_pct),
        ]);
    }
    let tfe_scnn = result
        .points
        .iter()
        .find(|p| p.method.contains("SCNN"))
        .expect("SCNN row present");
    let snapea = result
        .points
        .iter()
        .find(|p| p.method == "SnaPEA")
        .expect("SnaPEA row present");
    let mut s = table.render();
    s.push_str(&format!(
        "\nTFE(SCNN)/SnaPEA speedup: {} (paper 2.72x); param advantage {} (paper 4.0x vs none)\n",
        ratio(tfe_scnn.speedup / snapea.speedup),
        ratio(tfe_scnn.param_reduction / snapea.param_reduction),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winograd_expands_parameters_and_tfe_compresses() {
        let r = run(&Engine::new());
        let get = |m: &str| r.points.iter().find(|p| p.method == m).unwrap();
        assert!(get("Winograd").param_reduction < 1.0);
        assert!(get("TFE (SCNN)").param_reduction >= 3.8);
        assert_eq!(get("SnaPEA").param_reduction, 1.0);
    }

    #[test]
    fn tfe_scnn_over_snapea_near_paper_factor() {
        let r = run(&Engine::new());
        let get = |m: &str| r.points.iter().find(|p| p.method == m).unwrap().speedup;
        let factor = get("TFE (SCNN)") / get("SnaPEA");
        // Paper: 2.72x.
        assert!((2.0..4.2).contains(&factor), "{factor}");
    }

    #[test]
    fn asymmetric_conv_factors_match_paper_relations() {
        // Paper: asym uses 1.51x (DCNN4x4) / 2.67x (SCNN) more parameters
        // than the TFE.
        let r = run(&Engine::new());
        let get = |m: &str| r.points.iter().find(|p| p.method == m).unwrap();
        let rel4 = get("TFE (DCNN4x4)").param_reduction / get("AsymConv").param_reduction;
        let rel_s = get("TFE (SCNN)").param_reduction / get("AsymConv").param_reduction;
        assert!((1.3..1.7).contains(&rel4), "{rel4}");
        assert!((2.4..2.9).contains(&rel_s), "{rel_s}");
    }

    #[test]
    fn render_reports_snapea_factor() {
        let text = render(&run(&Engine::new()));
        assert!(text.contains("SnaPEA"));
        assert!(text.contains("paper 2.72x"));
    }
}
