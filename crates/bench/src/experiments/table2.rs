//! Table II — top-1 accuracy of original vs transferred networks.
//!
//! Substitution (see DESIGN.md): instead of ImageNet training, the same
//! CNN architecture trains on the synthetic translation/pattern dataset
//! with dense, DCNN-tied and SCNN-tied convolution parameters. The
//! paper's qualitative result — compressed training costs ≈1 accuracy
//! point — is reproduced at the experiment scale; the paper's own
//! ImageNet numbers are printed alongside.

use crate::format::{pct, Table};
use serde::Serialize;
use tfe_train::{train_and_evaluate, SyntheticDataset, TrainConfig, TrainOutcome};
use tfe_transfer::TransferScheme;

/// Paper Table II (top-1 % on ImageNet): network, original, DCNN4x4,
/// SCNN.
pub const PAPER: [(&str, f64, f64, f64); 4] = [
    ("AlexNet", 53.60, 53.24, 53.46),
    ("VGGNet", 70.94, 70.25, 70.54),
    ("GoogLeNet", 68.21, 67.75, 67.92),
    ("ResNet", 76.92, 76.11, 76.34),
];

/// Result of the accuracy experiment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table2 {
    /// Outcome per scheme: Original, DCNN4x4, SCNN.
    pub outcomes: Vec<SchemeOutcome>,
}

/// One training outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SchemeOutcome {
    /// Scheme label.
    pub scheme: String,
    /// Test accuracy (%).
    pub accuracy_pct: f64,
    /// Conv parameters stored.
    pub conv_params: usize,
    /// Final training loss.
    pub final_loss: f64,
}

impl From<TrainOutcome> for SchemeOutcome {
    fn from(o: TrainOutcome) -> Self {
        SchemeOutcome {
            scheme: o.scheme,
            accuracy_pct: o.test_accuracy_pct,
            conv_params: o.conv_params,
            final_loss: o.final_loss,
        }
    }
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small: fast enough for CI (hundreds of samples).
    Quick,
    /// Full: the scale the shipped numbers use.
    Full,
}

/// Runs the three training runs at the given scale.
#[must_use]
pub fn run(scale: Scale) -> Table2 {
    let (train_n, test_n, epochs) = match scale {
        Scale::Quick => (200, 100, 10),
        Scale::Full => (600, 300, 25),
    };
    let (train, test) = SyntheticDataset::pair(train_n, test_n, 21 << 16);
    let cfg = TrainConfig {
        epochs,
        learning_rate: 0.05,
        seed: 7,
    };
    let outcomes = [
        None,
        Some(TransferScheme::DCNN4),
        Some(TransferScheme::Scnn),
    ]
    .into_iter()
    .map(|scheme| SchemeOutcome::from(train_and_evaluate(scheme, &train, &test, &cfg)))
    .collect();
    Table2 { outcomes }
}

/// Renders the measured table next to the paper's ImageNet numbers.
#[must_use]
pub fn render(result: &Table2) -> String {
    let mut out = String::new();
    let mut table = Table::new(
        "Table II analogue: synthetic-task accuracy, dense vs transferred training",
        &["scheme", "accuracy", "conv params", "final loss"],
    );
    for o in &result.outcomes {
        table.row(&[
            o.scheme.clone(),
            pct(o.accuracy_pct),
            o.conv_params.to_string(),
            format!("{:.3}", o.final_loss),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    let mut paper = Table::new(
        "Paper Table II (ImageNet top-1, for reference)",
        &["network", "Original", "DCNN4x4", "SCNN"],
    );
    for (net, orig, dcnn, scnn) in PAPER {
        paper.row(&[net.to_owned(), pct(orig), pct(dcnn), pct(scnn)]);
    }
    out.push_str(&paper.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_three_ordered_outcomes() {
        let r = run(Scale::Quick);
        assert_eq!(r.outcomes.len(), 3);
        assert_eq!(r.outcomes[0].scheme, "Original");
        assert_eq!(r.outcomes[1].scheme, "DCNN4x4");
        assert_eq!(r.outcomes[2].scheme, "SCNN");
        // Compression holds regardless of accuracy.
        assert!(r.outcomes[1].conv_params < r.outcomes[0].conv_params);
        assert!(r.outcomes[2].conv_params < r.outcomes[1].conv_params);
        // All models beat chance (10 classes) comfortably.
        for o in &r.outcomes {
            assert!(o.accuracy_pct > 30.0, "{}: {}", o.scheme, o.accuracy_pct);
        }
    }

    #[test]
    fn render_includes_paper_reference() {
        let r = run(Scale::Quick);
        let text = render(&r);
        assert!(text.contains("76.9%")); // paper ResNet
        assert!(text.contains("SCNN"));
    }

    #[test]
    fn paper_table_losses_are_under_one_point() {
        for (net, orig, dcnn, scnn) in PAPER {
            assert!(orig - dcnn < 1.0, "{net}");
            assert!(orig - scnn < 1.0, "{net}");
        }
    }
}
