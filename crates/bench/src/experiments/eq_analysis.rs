//! Eq. 1–5 — the closed-form compression/acceleration analysis, swept
//! over meta extent `Z` and filter extent `K` (Section V.E's factor
//! effectiveness analysis).

use crate::format::{ratio, Table};
use serde::Serialize;
use tfe_transfer::analysis;

/// One sweep cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepPoint {
    /// Meta extent `Z`.
    pub z: usize,
    /// Filter extent `K`.
    pub k: usize,
    /// Eq. 4/5 reduction factor.
    pub reduction: f64,
    /// Whether `K = (Z+1)/2`, the optimum the paper derives.
    pub is_optimal_k: bool,
}

/// The sweep dataset.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EqAnalysis {
    /// All `(Z, K)` cells with `2 ≤ K ≤ Z ≤ 9`.
    pub points: Vec<SweepPoint>,
}

/// Runs the sweep.
#[must_use]
pub fn run() -> EqAnalysis {
    let mut points = Vec::new();
    for z in 2..=9usize {
        for k in 2..=z {
            points.push(SweepPoint {
                z,
                k,
                reduction: analysis::dcnn_param_reduction(z, k),
                is_optimal_k: 2 * k == z + 1 || (z % 2 == 0 && (2 * k == z || 2 * k == z + 2)),
            });
        }
    }
    EqAnalysis { points }
}

/// Renders the sweep as a Z × K grid.
#[must_use]
pub fn render(result: &EqAnalysis) -> String {
    let mut table = Table::new(
        "Eq. 4/5: DCNN parameter & MAC reduction (Z-K+1)^2 K^2 / Z^2",
        &["Z \\ K", "2", "3", "4", "5", "6", "7", "8", "9"],
    );
    for z in 2..=9usize {
        let mut cells = vec![z.to_string()];
        for k in 2..=9usize {
            let cell = result
                .points
                .iter()
                .find(|p| p.z == z && p.k == k)
                .map_or_else(|| "-".to_owned(), |p| ratio(p.reduction));
            cells.push(cell);
        }
        table.row(&cells);
    }
    let mut s = table.render();
    s.push_str("\npaper anchors: Z=4,K=3 -> 2.25x; Z=6,K=3 -> 4.00x; Z=6,K=5 -> 2.78x\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_values() {
        let r = run();
        let get = |z, k| {
            r.points
                .iter()
                .find(|p| p.z == z && p.k == k)
                .unwrap()
                .reduction
        };
        assert_eq!(get(4, 3), 2.25);
        assert_eq!(get(6, 3), 4.0);
        assert!((get(6, 5) - 100.0 / 36.0).abs() < 1e-12);
    }

    #[test]
    fn optimum_at_k_half_z_plus_one() {
        // Section V.E: for fixed Z, K = (Z+1)/2 maximizes the reduction.
        let r = run();
        for z in 3..=9usize {
            let best = r
                .points
                .iter()
                .filter(|p| p.z == z)
                .max_by(|a, b| a.reduction.total_cmp(&b.reduction))
                .unwrap();
            assert!(best.is_optimal_k, "z={z}: best at k={}", best.k);
        }
    }

    #[test]
    fn reduction_degenerates_to_one_at_k_equal_z() {
        // K = Z means a single transferred filter: reduction K^2/Z^2 = 1,
        // i.e. no compression — the regime boundary the table exposes.
        let r = run();
        let get = |z, k| {
            r.points
                .iter()
                .find(|p| p.z == z && p.k == k)
                .unwrap()
                .reduction
        };
        assert_eq!(get(5, 5), 1.0);
        assert!(get(9, 8) > 1.0);
    }

    #[test]
    fn render_includes_grid_corners() {
        let text = render(&run());
        assert!(text.contains("2.25x"));
        assert!(text.contains("4.00x"));
    }
}
