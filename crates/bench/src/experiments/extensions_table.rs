//! Section II coverage: the four transferred-filter algorithms side by
//! side on a representative canonical CONV layer.
//!
//! Not a numbered paper artifact — this is the ablation DESIGN.md calls
//! out for the algorithm choice: DCNN and SCNN map onto the TFE's
//! PPSR/ERRR machinery, while CReLU and MBA (which the paper notes "are
//! implemented on the conventional CNN architecture through specific
//! control logic") compress without engaging the row-reuse datapath.

use crate::format::{ratio, Table};
use serde::Serialize;
use tfe_tensor::shape::LayerShape;
use tfe_transfer::analysis::{self, ReuseConfig};
use tfe_transfer::extensions::{CRelu, Mba};
use tfe_transfer::TransferScheme;

/// One algorithm row.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AlgorithmRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Parameter reduction on the reference layer.
    pub param_reduction: f64,
    /// MAC reduction achievable on its natural substrate.
    pub mac_reduction: f64,
    /// Whether the TFE's PPSR/ERRR machinery provides the acceleration.
    pub tfe_accelerated: bool,
}

/// The comparison dataset.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExtensionsTable {
    /// One row per algorithm, in the paper's Section II order.
    pub rows: Vec<AlgorithmRow>,
}

/// Reference layer: a VGG-style 3×3 canonical convolution.
fn reference_layer() -> LayerShape {
    LayerShape::conv("conv", 64, 64, 56, 56, 3, 1, 1).expect("static reference layer")
}

/// Runs the comparison.
#[must_use]
pub fn run() -> ExtensionsTable {
    let layer = reference_layer();
    let dense_params = layer.params() as f64;
    let dense_macs = layer.macs() as f64;
    let mut rows = Vec::new();
    for scheme in [
        TransferScheme::DCNN4,
        TransferScheme::DCNN6,
        TransferScheme::Scnn,
    ] {
        rows.push(AlgorithmRow {
            algorithm: scheme.label(),
            param_reduction: dense_params / analysis::scheme_params(&layer, scheme) as f64,
            mac_reduction: dense_macs
                / analysis::scheme_macs(&layer, scheme, ReuseConfig::FULL) as f64,
            tfe_accelerated: true,
        });
    }
    rows.push(AlgorithmRow {
        algorithm: "CReLU".to_owned(),
        param_reduction: dense_params / CRelu::stored_params(&layer) as f64,
        mac_reduction: dense_macs / CRelu::macs(&layer) as f64,
        tfe_accelerated: false,
    });
    let mba = Mba::new(4);
    rows.push(AlgorithmRow {
        algorithm: "MBA (4 biases)".to_owned(),
        param_reduction: dense_params / mba.stored_params(&layer) as f64,
        mac_reduction: dense_macs / mba.macs(&layer) as f64,
        tfe_accelerated: false,
    });
    ExtensionsTable { rows }
}

/// Renders the table.
#[must_use]
pub fn render(result: &ExtensionsTable) -> String {
    let mut table = Table::new(
        "Section II: transferred-filter algorithms on a VGG-style 3x3 layer",
        &["algorithm", "param reduction", "MAC reduction", "substrate"],
    );
    for row in &result.rows {
        table.row(&[
            row.algorithm.clone(),
            ratio(row.param_reduction),
            ratio(row.mac_reduction),
            if row.tfe_accelerated {
                "TFE (PPSR+ERRR)".to_owned()
            } else {
                "conventional + control logic".to_owned()
            },
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_families_present() {
        let r = run();
        let names: Vec<&str> = r.rows.iter().map(|x| x.algorithm.as_str()).collect();
        assert!(names.contains(&"DCNN6x6"));
        assert!(names.contains(&"SCNN"));
        assert!(names.contains(&"CReLU"));
        assert!(names.contains(&"MBA (4 biases)"));
    }

    #[test]
    fn scnn_and_dcnn6_lead_compression_among_tfe_algorithms() {
        let r = run();
        let get = |n: &str| r.rows.iter().find(|x| x.algorithm == n).unwrap();
        assert!((get("SCNN").param_reduction - 4.0).abs() < 1e-9);
        assert!((get("DCNN6x6").param_reduction - 4.0).abs() < 1e-9);
        assert!((get("CReLU").param_reduction - 2.0).abs() < 1e-9);
        assert!((get("MBA (4 biases)").param_reduction - 4.0).abs() < 1e-9);
    }

    #[test]
    fn only_dcnn_scnn_use_the_tfe_datapath() {
        let r = run();
        for row in &r.rows {
            let expected = row.algorithm.starts_with("DCNN") || row.algorithm == "SCNN";
            assert_eq!(row.tfe_accelerated, expected, "{}", row.algorithm);
        }
    }
}
