//! SAFM design-choice ablation (Section IV): pre-adding cross-ifmap
//! partial sums before the SR group vs one stacked register per PE.
//!
//! The paper: "we propose to pre-add the PSums of different ifmaps that
//! correspond to the same ofmap … which can reduce the SR consumption and
//! register access by 85.9%". This experiment runs the performance model
//! with and without pre-addition and reports the register traffic and
//! power impact — the ablation DESIGN.md lists for the SAFM choice.

use crate::format::{pct, Table};
use serde::Serialize;
use tfe_core::TransferScheme;
use tfe_energy::EnergyModel;
use tfe_nets::zoo;
use tfe_sim::perf::{NetworkPerf, PerfConfig};

/// The paper's claimed register-access reduction from pre-addition.
pub const PAPER_REDUCTION_PCT: f64 = 85.9;

/// One configuration's results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ConfigResult {
    /// Configuration label.
    pub config: String,
    /// SR-group accesses (reads + writes) on the workload.
    pub register_accesses: u64,
    /// Register energy, mJ.
    pub register_mj: f64,
    /// Total on-chip power, mW.
    pub power_mw: f64,
}

/// The ablation dataset.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SafmAblation {
    /// Pre-added (shipping) and per-PE (ablated) results.
    pub configs: Vec<ConfigResult>,
    /// Measured register-access reduction, percent.
    pub reduction_pct: f64,
}

fn evaluate(label: &str, sr_write_fraction: f64) -> ConfigResult {
    let cfg = PerfConfig {
        sr_write_fraction,
        ..PerfConfig::default()
    };
    let energy = EnergyModel::new();
    let mut accesses = 0u64;
    let mut register_mj = 0.0;
    let mut power = 0.0;
    for net in [zoo::vgg16(), zoo::alexnet()] {
        let perf = NetworkPerf::evaluate(&net.plan(TransferScheme::Scnn), &cfg);
        let counters = perf.total_counters();
        accesses += counters.register_accesses();
        let b = energy.breakdown(&counters, perf.runtime_seconds());
        register_mj += b.register_mj;
        power += b.onchip_mj() / perf.runtime_seconds();
    }
    ConfigResult {
        config: label.to_owned(),
        register_accesses: accesses,
        register_mj,
        power_mw: power / 2.0,
    }
}

/// Runs the ablation on the VGG + AlexNet calibration workload (SCNN).
#[must_use]
pub fn run() -> SafmAblation {
    // Pre-addition keeps 14.1% of the per-product SR writes; the ablated
    // design writes every product to its PE's stacked register.
    let preadd = evaluate("SAFM pre-add (shipping)", 1.0 - PAPER_REDUCTION_PCT / 100.0);
    let per_pe = evaluate("per-PE SRs (ablated)", 1.0);
    let reduction_pct =
        100.0 * (1.0 - preadd.register_accesses as f64 / per_pe.register_accesses.max(1) as f64);
    SafmAblation {
        configs: vec![preadd, per_pe],
        reduction_pct,
    }
}

/// Renders the ablation.
#[must_use]
pub fn render(result: &SafmAblation) -> String {
    let mut table = Table::new(
        "SAFM ablation: cross-ifmap pre-addition vs per-PE stacked registers",
        &[
            "configuration",
            "SR accesses",
            "register energy",
            "on-chip power",
        ],
    );
    for c in &result.configs {
        table.row(&[
            c.config.clone(),
            format!("{:.2}G", c.register_accesses as f64 / 1e9),
            format!("{:.2} mJ", c.register_mj),
            format!("{:.1} mW", c.power_mw),
        ]);
    }
    let mut s = table.render();
    s.push_str(&format!(
        "\nregister-access reduction: {} (paper: {})\n",
        pct(result.reduction_pct),
        pct(PAPER_REDUCTION_PCT),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preadd_reduction_matches_paper_claim() {
        let r = run();
        assert!(
            (r.reduction_pct - PAPER_REDUCTION_PCT).abs() < 0.5,
            "{}",
            r.reduction_pct
        );
    }

    #[test]
    fn per_pe_design_costs_more_power() {
        let r = run();
        let preadd = &r.configs[0];
        let per_pe = &r.configs[1];
        assert!(
            per_pe.power_mw > preadd.power_mw * 1.2,
            "{} vs {}",
            per_pe.power_mw,
            preadd.power_mw
        );
        assert!(per_pe.register_mj > preadd.register_mj);
    }
}
