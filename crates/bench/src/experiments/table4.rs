//! Table IV — overall speedup of other published methods vs the TFE
//! (SCNN) on ResNet and GoogLeNet.

use crate::format::{ratio, Table};
use serde::Serialize;
use tfe_baselines::computation_reduction::SnaPea;
use tfe_baselines::reported::{BitFusion, MultiClp};
use tfe_baselines::weight_compression::PruningModel;
use tfe_core::{Engine, TransferScheme};

/// One cell of Table IV.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Entry {
    /// Network.
    pub network: String,
    /// Method name.
    pub method: String,
    /// Overall speedup over Eyeriss.
    pub overall_speedup: f64,
    /// The paper's value for this cell (published comparators only).
    pub paper: Option<f64>,
}

/// The table's dataset.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table4 {
    /// All entries.
    pub entries: Vec<Entry>,
}

/// Paper's TFE-SCNN cells.
pub const PAPER_TFE: [(&str, f64); 2] = [("ResNet", 3.29), ("GoogLeNet", 2.37)];

/// Runs the comparison.
#[must_use]
pub fn run(engine: &Engine) -> Table4 {
    let mut entries = vec![
        Entry {
            network: "ResNet".to_owned(),
            method: "UCNN".to_owned(),
            overall_speedup: PruningModel::UCNN_RESNET_OVERALL,
            paper: Some(PruningModel::UCNN_RESNET_OVERALL),
        },
        Entry {
            network: "ResNet".to_owned(),
            method: "BitFusion".to_owned(),
            overall_speedup: BitFusion::RESNET_OVERALL,
            paper: Some(BitFusion::RESNET_OVERALL),
        },
        Entry {
            network: "GoogLeNet".to_owned(),
            method: "SnaPEA".to_owned(),
            overall_speedup: SnaPea::GOOGLENET_OVERALL,
            paper: Some(SnaPea::GOOGLENET_OVERALL),
        },
        Entry {
            network: "GoogLeNet".to_owned(),
            method: "Multi-CLP".to_owned(),
            overall_speedup: MultiClp::GOOGLENET_OVERALL,
            paper: Some(MultiClp::GOOGLENET_OVERALL),
        },
    ];
    for (net, paper) in PAPER_TFE {
        let r = engine
            .run_network(net, TransferScheme::Scnn)
            .expect("comparison networks exist");
        entries.push(Entry {
            network: net.to_owned(),
            method: "TFE (SCNN)".to_owned(),
            overall_speedup: r.overall_speedup,
            paper: Some(paper),
        });
    }
    Table4 { entries }
}

/// Renders Table IV.
#[must_use]
pub fn render(result: &Table4) -> String {
    let mut table = Table::new(
        "Table IV: overall speedup over Eyeriss",
        &["network", "method", "speedup", "paper"],
    );
    for e in &result.entries {
        table.row(&[
            e.network.clone(),
            e.method.clone(),
            ratio(e.overall_speedup),
            e.paper.map_or_else(|| "-".to_owned(), ratio),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfe_beats_ucnn_and_approaches_bitfusion_on_resnet() {
        let r = run(&Engine::new());
        let get = |net: &str, method: &str| {
            r.entries
                .iter()
                .find(|e| e.network == net && e.method == method)
                .unwrap()
                .overall_speedup
        };
        let tfe = get("ResNet", "TFE (SCNN)");
        // Paper: 2.19x over UCNN, "nearly the same" as Bit Fusion.
        assert!(tfe / get("ResNet", "UCNN") > 1.8);
        assert!((tfe / get("ResNet", "BitFusion") - 1.0).abs() < 0.35);
    }

    #[test]
    fn tfe_beats_snapea_and_multiclp_on_googlenet() {
        let r = run(&Engine::new());
        let get = |method: &str| {
            r.entries
                .iter()
                .find(|e| e.network == "GoogLeNet" && e.method == method)
                .unwrap()
                .overall_speedup
        };
        let tfe = get("TFE (SCNN)");
        assert!(tfe > get("SnaPEA"));
        assert!(tfe > get("Multi-CLP"));
    }

    #[test]
    fn measured_tfe_cells_near_paper() {
        let r = run(&Engine::new());
        for (net, paper) in PAPER_TFE {
            let e = r
                .entries
                .iter()
                .find(|e| e.network == net && e.method == "TFE (SCNN)")
                .unwrap();
            let rel = (e.overall_speedup - paper).abs() / paper;
            assert!(rel < 0.30, "{net}: {} vs {paper}", e.overall_speedup);
        }
    }
}
