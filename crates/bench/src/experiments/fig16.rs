//! Fig. 16 — parameter reduction and speedup vs weight-compression
//! methods on AlexNet's CONV layers.
//!
//! # What is measured vs what is reported
//!
//! The table mixes two kinds of numbers; the rendered columns keep them
//! apart:
//!
//! * **Measured** — the TFE (SCNN) row comes from actually executing
//!   the simulated engine on AlexNet (`param reduction`, `speedup vs
//!   Eyeriss`), and the `TFE/method` column is computed from those
//!   measured values. Since the weight-plan subsystem landed (DESIGN
//!   §5.15), the *mechanisms* the comparison methods rely on are also
//!   executable here: magnitude pruning runs through the engine's
//!   compressed-sparse mode (`ExecMode::Sparse`, fed by
//!   `tfe_baselines::sparse_kernel::SparseFilterBank::prune`) and
//!   UCNN-style weight repetition through the factorized mode
//!   (`ExecMode::Factorized`) — both bit-identical to the dense sweep
//!   (`tests/mode_parity.rs`) and timed against it in the
//!   `engine_modes` bench (BENCH_10.json).
//! * **Reported** — the Han / SSL / ADMM / UCNN rows are *analytical*
//!   models ([`PruningModel`]): published per-layer reduction factors
//!   applied to the zoo's layer tables, not executions of those
//!   accelerators. The `paper TFE/method` column reproduces the paper's
//!   claimed factors ([`PAPER_FACTORS`]) verbatim for side-by-side
//!   comparison with the measured `TFE/method` values.

use crate::format::{ratio, Table};
use serde::Serialize;
use tfe_baselines::weight_compression::PruningModel;
use tfe_baselines::Comparator;
use tfe_core::{Engine, TransferScheme};

/// One bar pair of Fig. 16.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MethodPoint {
    /// Method name.
    pub method: String,
    /// Parameter reduction ratio.
    pub param_reduction: f64,
    /// CONV-layer speedup over Eyeriss.
    pub speedup: f64,
}

/// The figure's dataset.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig16 {
    /// Comparators plus the TFE (SCNN), in plot order.
    pub points: Vec<MethodPoint>,
    /// TFE-over-comparator speedup factors (the paper reports 5.36x Han,
    /// 4.45x SSL, 3.24x UCNN).
    pub tfe_factors: Vec<(String, f64)>,
}

/// Paper's TFE-relative factors.
pub const PAPER_FACTORS: [(&str, f64); 3] = [("Han", 5.36), ("SSL", 4.45), ("UCNN", 3.24)];

/// Runs the comparison.
#[must_use]
pub fn run(engine: &Engine) -> Fig16 {
    let net = tfe_nets::zoo::alexnet();
    let mut points = Vec::new();
    for model in [
        PruningModel::han(),
        PruningModel::ssl(),
        PruningModel::admm(),
        PruningModel::ucnn(),
    ] {
        points.push(MethodPoint {
            method: model.name().to_owned(),
            param_reduction: model.param_reduction(&net),
            speedup: model
                .conv_speedup(&net)
                .expect("pruning models always answer"),
        });
    }
    let tfe = engine
        .run_network("AlexNet", TransferScheme::Scnn)
        .expect("AlexNet exists");
    points.push(MethodPoint {
        method: "TFE (SCNN)".to_owned(),
        param_reduction: tfe.param_reduction,
        speedup: tfe.conv_speedup,
    });
    let tfe_speedup = tfe.conv_speedup;
    let tfe_factors = points
        .iter()
        .filter(|p| p.method != "TFE (SCNN)")
        .map(|p| (p.method.clone(), tfe_speedup / p.speedup))
        .collect();
    Fig16 {
        points,
        tfe_factors,
    }
}

/// Renders the figure's rows.
#[must_use]
pub fn render(result: &Fig16) -> String {
    let mut table = Table::new(
        "Fig. 16: weight-compression comparison on AlexNet CONV layers",
        &[
            "method",
            "param reduction",
            "speedup vs Eyeriss",
            "TFE/method",
            "paper TFE/method",
        ],
    );
    for p in &result.points {
        let factor = result
            .tfe_factors
            .iter()
            .find(|(m, _)| *m == p.method)
            .map(|(_, f)| ratio(*f))
            .unwrap_or_else(|| "-".to_owned());
        let paper = PAPER_FACTORS
            .iter()
            .find(|(m, _)| *m == p.method)
            .map(|(_, f)| ratio(*f))
            .unwrap_or_else(|| "-".to_owned());
        table.row(&[
            p.method.clone(),
            ratio(p.param_reduction),
            ratio(p.speedup),
            factor,
            paper,
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfe_beats_pruning_methods_except_admm() {
        let r = run(&Engine::new());
        let get = |name: &str| r.points.iter().find(|p| p.method == name).unwrap().speedup;
        let tfe = get("TFE (SCNN)");
        assert!(tfe > get("Han"));
        assert!(tfe > get("SSL"));
        assert!(tfe > get("UCNN"));
        // Paper: "the speedup is marginally lower than that in [ADMM]".
        assert!(get("ADMM") > tfe * 0.95);
    }

    #[test]
    fn tfe_factors_within_paper_bands() {
        let r = run(&Engine::new());
        for (name, paper) in PAPER_FACTORS {
            let (_, measured) = r
                .tfe_factors
                .iter()
                .find(|(m, _)| m == name)
                .expect("factor present");
            let rel = (measured - paper).abs() / paper;
            assert!(rel < 0.35, "{name}: measured {measured} vs paper {paper}");
        }
    }

    #[test]
    fn render_lists_all_methods() {
        let text = render(&run(&Engine::new()));
        for m in ["Han", "SSL", "ADMM", "UCNN", "TFE (SCNN)"] {
            assert!(text.contains(m), "{m}");
        }
    }
}
