//! Fig. 14 — area and power breakdown of the TFE.

use crate::format::{pct, Table};
use serde::Serialize;
use tfe_core::{Engine, TransferScheme};
use tfe_energy::{AreaModel, EnergyModel};
use tfe_sim::config::TfeConfig;
use tfe_sim::perf::NetworkPerf;

/// Paper Fig. 14 reference fractions (percent).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PaperBreakdown {
    /// (memory+registers, PE array, control) area percentages.
    pub area: (f64, f64, f64),
    /// (memory+registers, PE array, control) power percentages.
    pub power: (f64, f64, f64),
}

/// The paper's values.
pub const PAPER: PaperBreakdown = PaperBreakdown {
    area: (69.3, 16.5, 8.8),
    power: (75.0, 21.1, 1.2),
};

/// Modelled breakdown fractions in percent.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig14 {
    /// Area: (memory+registers, PE array, control).
    pub area_pct: (f64, f64, f64),
    /// Power: (memory+registers, PE array, static+control).
    pub power_pct: (f64, f64, f64),
    /// Absolute totals for context: (area mm², power mW).
    pub totals: (f64, f64),
}

/// Computes the breakdown on the paper's calibration workload (VGG +
/// AlexNet, SCNN).
#[must_use]
pub fn run(engine: &Engine) -> Fig14 {
    let area = AreaModel::new().breakdown(&TfeConfig::paper());
    let energy = EnergyModel::new();
    let mut mem = 0.0;
    let mut pe = 0.0;
    let mut stat = 0.0;
    let mut power = 0.0;
    for name in ["VGGNet", "AlexNet"] {
        let net = tfe_nets::zoo::by_name(name).expect("calibration networks exist");
        let perf: NetworkPerf = engine.tfe_perf(&net, TransferScheme::Scnn);
        let b = energy.breakdown(&perf.total_counters(), perf.runtime_seconds());
        mem += b.register_mj + b.sram_mj;
        pe += b.pe_mj;
        stat += b.static_mj;
        power += b.onchip_mj() / perf.runtime_seconds();
    }
    let onchip = mem + pe + stat;
    Fig14 {
        area_pct: (
            100.0 * area.memory_register_fraction(),
            100.0 * area.pe_fraction(),
            100.0 * area.control_fraction(),
        ),
        power_pct: (
            100.0 * mem / onchip,
            100.0 * pe / onchip,
            100.0 * stat / onchip,
        ),
        totals: (area.total_mm2(), power / 2.0),
    }
}

/// Renders both panels.
#[must_use]
pub fn render(result: &Fig14) -> String {
    let mut table = Table::new(
        "Fig. 14: TFE area and power breakdown (VGG+AlexNet, SCNN)",
        &["component", "area", "paper area", "power", "paper power"],
    );
    let rows = [
        (
            "memory + registers",
            result.area_pct.0,
            PAPER.area.0,
            result.power_pct.0,
            PAPER.power.0,
        ),
        (
            "PE array",
            result.area_pct.1,
            PAPER.area.1,
            result.power_pct.1,
            PAPER.power.1,
        ),
        (
            "control / static",
            result.area_pct.2,
            PAPER.area.2,
            result.power_pct.2,
            PAPER.power.2,
        ),
    ];
    for (name, a, pa, p, pp) in rows {
        table.row(&[name.to_owned(), pct(a), pct(pa), pct(p), pct(pp)]);
    }
    let mut s = table.render();
    s.push_str(&format!(
        "\ntotal: {:.2} mm^2, {:.1} mW average\n",
        result.totals.0, result.totals.1
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_dominates_both_breakdowns() {
        let r = run(&Engine::new());
        assert!(r.area_pct.0 > r.area_pct.1, "{:?}", r.area_pct);
        assert!(r.power_pct.0 > r.power_pct.1, "{:?}", r.power_pct);
    }

    #[test]
    fn fractions_near_paper_bands() {
        let r = run(&Engine::new());
        assert!((55.0..85.0).contains(&r.area_pct.0), "{:?}", r.area_pct);
        assert!((60.0..85.0).contains(&r.power_pct.0), "{:?}", r.power_pct);
        assert!((10.0..35.0).contains(&r.power_pct.1), "{:?}", r.power_pct);
    }

    #[test]
    fn percentages_sum_to_one_hundred() {
        let r = run(&Engine::new());
        let area_sum = r.area_pct.0 + r.area_pct.1 + r.area_pct.2;
        let power_sum = r.power_pct.0 + r.power_pct.1 + r.power_pct.2;
        assert!((area_sum - 100.0).abs() < 1e-6);
        assert!((power_sum - 100.0).abs() < 1e-6);
    }
}
