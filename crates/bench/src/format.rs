//! Tiny fixed-width table renderer for the experiment outputs.

/// A rendered table: a header row plus data rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one data row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned fixed-width columns.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * columns.saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as the paper writes it (`"3.45x"`).
#[must_use]
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage (`"76.9%"`).
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".to_owned(), "1.00x".to_owned()]);
        t.row(&["long-name".to_owned(), "2.5x".to_owned()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header and both rows share the alignment offset of column 2.
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find("1.00x").unwrap(), col);
        assert_eq!(lines[4].find("2.5x").unwrap(), col);
    }

    #[test]
    fn ratio_and_pct_formats() {
        assert_eq!(ratio(3.449), "3.45x");
        assert_eq!(pct(76.92), "76.9%");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new("t", &["a"]);
        assert!(t.is_empty());
        t.row(&["x".to_owned()]);
        assert_eq!(t.len(), 1);
    }
}
