//! Benchmark harness: code that regenerates every table and figure of the
//! TFE paper's evaluation (Section V).
//!
//! Each submodule of [`experiments`] computes one artifact and renders it
//! in the paper's row/series layout. The binaries under `src/bin/` are
//! thin wrappers (`cargo run -p tfe-bench --release --bin fig15_speedup`),
//! and `all_experiments` runs the whole suite. Criterion benches under
//! `benches/` time the simulator kernels themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod format;
pub mod report;
pub mod timing;
