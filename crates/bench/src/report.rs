//! The persistent perf trajectory: machine-readable bench results in
//! `BENCH_<pr>.json` at the repository root.
//!
//! Every acceptance bench (`engine_speedup`, `ppsr_row`,
//! `fleet_router`) records its
//! min-of-reps throughput cells here, so performance PRs leave a
//! comparable artifact behind instead of anecdotal log lines. The file
//! is an upsert target: each bench merges its cells by `(bench, cell)`
//! key, so running the benches in any order or re-running one of them
//! converges to the same content (modulo the timings themselves).
//!
//! Schema (`tfe-bench-trajectory/v1`):
//!
//! ```json
//! {
//!   "schema": "tfe-bench-trajectory/v1",
//!   "pr": 7,
//!   "cells": [
//!     {
//!       "bench": "ppsr_row",
//!       "cell": "conventional_k3_w226",
//!       "baseline": "scalar",
//!       "baseline_ips": 1234.5,
//!       "current_ips": 2469.0,
//!       "speedup": 2.0,
//!       "reps": 9,
//!       "rounds": 64
//!     }
//!   ]
//! }
//! ```
//!
//! `*_ips` values are iterations/second from interleaved best-of-reps
//! timing (see [`crate::timing`]): higher is better, and `speedup =
//! current_ips / baseline_ips` is the pinned acceptance ratio.

use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The PR index this trajectory file belongs to (names the file).
pub const TRAJECTORY_PR: u64 = 10;

/// The schema tag written into (and expected from) the report file.
pub const SCHEMA: &str = "tfe-bench-trajectory/v1";

/// One timed comparison: a current implementation against its pinned
/// baseline, both as min-of-reps throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchCell {
    /// The bench binary that produced the cell (`engine_speedup`,
    /// `ppsr_row`).
    pub bench: String,
    /// The workload within the bench (e.g. `conventional_k3_w226`).
    pub cell: String,
    /// What the baseline side is (`scalar`, `cold`, `engine`).
    pub baseline: String,
    /// Baseline throughput, iterations/second (best of `reps`).
    pub baseline_ips: f64,
    /// Current-implementation throughput, iterations/second.
    pub current_ips: f64,
    /// `current_ips / baseline_ips` — the pinned acceptance ratio.
    pub speedup: f64,
    /// Repetitions the minimum was taken over.
    pub reps: u64,
    /// Timed iterations per repetition.
    pub rounds: u64,
}

/// The whole trajectory file: schema tag, PR index, and the cell list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Always [`TRAJECTORY_PR`].
    pub pr: u64,
    /// The recorded cells, in first-recorded order.
    pub cells: Vec<BenchCell>,
}

impl Default for BenchReport {
    fn default() -> Self {
        BenchReport {
            schema: SCHEMA.to_owned(),
            pr: TRAJECTORY_PR,
            cells: Vec::new(),
        }
    }
}

impl BenchReport {
    /// The trajectory file location: `BENCH_<pr>.json` at the repo root,
    /// resolved relative to this crate so the benches can run from any
    /// working directory.
    #[must_use]
    pub fn path() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../BENCH_{TRAJECTORY_PR}.json"))
    }

    /// Loads the existing report, or starts a fresh one when the file is
    /// missing or unreadable (a stale/foreign file is replaced rather
    /// than appended to).
    #[must_use]
    pub fn load_or_new() -> Self {
        let Ok(text) = fs::read_to_string(Self::path()) else {
            return BenchReport::default();
        };
        match serde_json::from_str::<BenchReport>(&text) {
            Ok(report) if report.schema == SCHEMA => report,
            _ => BenchReport::default(),
        }
    }

    /// Inserts or replaces the cell with the same `(bench, cell)` key.
    pub fn upsert(&mut self, cell: BenchCell) {
        match self
            .cells
            .iter_mut()
            .find(|c| c.bench == cell.bench && c.cell == cell.cell)
        {
            Some(slot) => *slot = cell,
            None => self.cells.push(cell),
        }
    }

    /// Writes the report back to [`BenchReport::path`], pretty-printed
    /// with a trailing newline.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; serialization itself cannot fail
    /// for this shape.
    pub fn save(&self) -> io::Result<()> {
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        fs::write(Self::path(), text + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(bench: &str, name: &str, speedup: f64) -> BenchCell {
        BenchCell {
            bench: bench.to_owned(),
            cell: name.to_owned(),
            baseline: "scalar".to_owned(),
            baseline_ips: 100.0,
            current_ips: 100.0 * speedup,
            speedup,
            reps: 9,
            rounds: 64,
        }
    }

    #[test]
    fn upsert_replaces_by_key_and_appends_new() {
        let mut report = BenchReport::default();
        report.upsert(cell("ppsr_row", "a", 1.0));
        report.upsert(cell("ppsr_row", "b", 2.0));
        report.upsert(cell("ppsr_row", "a", 3.0));
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].speedup, 3.0);
        assert_eq!(report.cells[1].cell, "b");
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = BenchReport::default();
        report.upsert(cell("engine_speedup", "dcnn4", 2.5));
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn path_names_the_pr_trajectory_file() {
        let path = BenchReport::path();
        assert!(path.ends_with(format!("BENCH_{TRAJECTORY_PR}.json")));
    }
}
