//! Regenerates Fig. 16 (comparison with weight-compression methods on
//! AlexNet).

use tfe_core::Engine;

fn main() {
    let result = tfe_bench::experiments::fig16::run(&Engine::new());
    print!("{}", tfe_bench::experiments::fig16::render(&result));
}
