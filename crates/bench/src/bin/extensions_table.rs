//! Prints the Section II transferred-filter-algorithm comparison
//! (DCNN/SCNN vs CReLU/MBA).

fn main() {
    let result = tfe_bench::experiments::extensions_table::run();
    print!(
        "{}",
        tfe_bench::experiments::extensions_table::render(&result)
    );
}
