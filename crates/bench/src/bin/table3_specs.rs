//! Regenerates Table III (technical specifications, TFE vs Eyeriss).

fn main() {
    let result = tfe_bench::experiments::table3::run();
    print!("{}", tfe_bench::experiments::table3::render(&result));
}
