//! Prints the SAFM register pre-addition ablation (Section IV's 85.9%
//! register-access reduction claim).

fn main() {
    let result = tfe_bench::experiments::safm_ablation::run();
    print!("{}", tfe_bench::experiments::safm_ablation::render(&result));
}
