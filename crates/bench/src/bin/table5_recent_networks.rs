//! Regenerates Table V (speedups on DenseNet, SqueezeNet and ResANet).

use tfe_core::Engine;

fn main() {
    let result = tfe_bench::experiments::table5::run(&Engine::new());
    print!("{}", tfe_bench::experiments::table5::render(&result));
}
