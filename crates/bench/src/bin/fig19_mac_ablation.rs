//! Regenerates Fig. 19 (PPSR/ERRR MAC ablation on VGGNet).

fn main() {
    let result = tfe_bench::experiments::fig19::run();
    print!("{}", tfe_bench::experiments::fig19::render(&result));
}
