//! Runs every paper experiment in sequence and prints all tables and
//! figures.
//!
//! Flags: `--quick` shrinks the Table II training run; `--json` emits one
//! machine-readable JSON object with every result instead of the rendered
//! tables.

use serde_json::json;
use tfe_bench::experiments as ex;
use tfe_core::Engine;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let as_json = args.iter().any(|a| a == "--json");
    let engine = Engine::new();
    let scale = if quick {
        ex::table2::Scale::Quick
    } else {
        ex::table2::Scale::Full
    };
    let table2 = ex::table2::run(scale);
    let table3 = ex::table3::run();
    let fig14 = ex::fig14::run(&engine);
    let fig15 = ex::fig15::run(&engine);
    let fig16 = ex::fig16::run(&engine);
    let fig17 = ex::fig17::run(&engine);
    let table4 = ex::table4::run(&engine);
    let table5 = ex::table5::run(&engine);
    let fig18 = ex::fig18::run(&engine);
    let fig19 = ex::fig19::run();
    let fig20 = ex::fig20::run(&engine);
    let eq = ex::eq_analysis::run();
    let extensions = ex::extensions_table::run();
    let safm = ex::safm_ablation::run();

    if as_json {
        let all = json!({
            "table2": table2,
            "table3": table3,
            "fig14": fig14,
            "fig15": fig15,
            "fig16": fig16,
            "fig17": fig17,
            "table4": table4,
            "table5": table5,
            "fig18": fig18,
            "fig19": fig19,
            "fig20": fig20,
            "eq_analysis": eq,
            "extensions": extensions,
            "safm_ablation": safm,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&all).expect("results serialize")
        );
        return;
    }
    println!("{}", ex::table2::render(&table2));
    println!("{}", ex::table3::render(&table3));
    println!("{}", ex::fig14::render(&fig14));
    println!("{}", ex::fig15::render(&fig15));
    println!("{}", ex::fig16::render(&fig16));
    println!("{}", ex::fig17::render(&fig17));
    println!("{}", ex::table4::render(&table4));
    println!("{}", ex::table5::render(&table5));
    println!("{}", ex::fig18::render(&fig18));
    println!("{}", ex::fig19::render(&fig19));
    println!("{}", ex::fig20::render(&fig20));
    println!("{}", ex::eq_analysis::render(&eq));
    println!("{}", ex::extensions_table::render(&extensions));
    println!("{}", ex::safm_ablation::render(&safm));
}
