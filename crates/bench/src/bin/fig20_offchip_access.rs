//! Regenerates Fig. 20 (off-chip memory access reduction).

use tfe_core::Engine;

fn main() {
    let result = tfe_bench::experiments::fig20::run(&Engine::new());
    print!("{}", tfe_bench::experiments::fig20::render(&result));
}
