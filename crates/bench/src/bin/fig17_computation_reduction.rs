//! Regenerates Fig. 17 (comparison with computation-reduction methods on
//! VGGNet).

use tfe_core::Engine;

fn main() {
    let result = tfe_bench::experiments::fig17::run(&Engine::new());
    print!("{}", tfe_bench::experiments::fig17::render(&result));
}
