//! Regenerates Fig. 15 (CONV and overall speedup over Eyeriss).

fn main() {
    print!("{}", tfe_bench::experiments::fig15::report());
}
