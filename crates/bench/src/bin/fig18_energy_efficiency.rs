//! Regenerates Fig. 18 (energy-efficiency improvement over Eyeriss).

use tfe_core::Engine;

fn main() {
    let result = tfe_bench::experiments::fig18::run(&Engine::new());
    print!("{}", tfe_bench::experiments::fig18::render(&result));
}
