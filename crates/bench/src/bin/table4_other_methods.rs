//! Regenerates Table IV (overall speedup of other methods on ResNet and
//! GoogLeNet).

use tfe_core::Engine;

fn main() {
    let result = tfe_bench::experiments::table4::run(&Engine::new());
    print!("{}", tfe_bench::experiments::table4::render(&result));
}
