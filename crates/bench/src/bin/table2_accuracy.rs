//! Regenerates Table II (accuracy, original vs transferred training).
//!
//! Pass `--quick` for the CI-sized run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        tfe_bench::experiments::table2::Scale::Quick
    } else {
        tfe_bench::experiments::table2::Scale::Full
    };
    let result = tfe_bench::experiments::table2::run(scale);
    print!("{}", tfe_bench::experiments::table2::render(&result));
}
