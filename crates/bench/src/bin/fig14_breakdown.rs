//! Regenerates Fig. 14 (area and power breakdown of the TFE).

use tfe_core::Engine;

fn main() {
    let result = tfe_bench::experiments::fig14::run(&Engine::new());
    print!("{}", tfe_bench::experiments::fig14::render(&result));
}
