//! Regenerates the Eq. 1-5 factor-effectiveness sweep (Section V.E).

fn main() {
    let result = tfe_bench::experiments::eq_analysis::run();
    print!("{}", tfe_bench::experiments::eq_analysis::render(&result));
}
