//! Interleaved min-of-reps timing, shared by the acceptance benches.
//!
//! Best-of-reps (minimum time ⇒ maximum throughput) discards scheduler
//! noise on shared machines; interleaving the two sides of a ratio
//! spreads clock-frequency drift over both instead of biasing whichever
//! ran last. The pinned ratios in `benches/engine_speedup.rs` and
//! `benches/ppsr_row.rs` are computed exclusively through these
//! helpers.

use std::time::Instant;

/// Best (highest) steady-state throughput over `reps` repetitions of
/// `rounds` timed iterations — min-time estimation, robust to scheduler
/// noise on shared machines.
pub fn best_ips(reps: u32, rounds: u32, mut run: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..rounds {
            run();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    f64::from(rounds) / best
}

/// [`best_ips`] for two closures with their repetitions interleaved
/// (a, b, a, b, …), so clock-frequency drift over the measurement
/// window hits both sides equally instead of biasing whichever ran
/// last. Use this for every pinned ratio: a real ~1 % gap is smaller
/// than un-interleaved drift alone.
pub fn best_pair_ips(
    reps: u32,
    rounds: u32,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::MAX, f64::MAX);
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..rounds {
            a();
        }
        best_a = best_a.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for _ in 0..rounds {
            b();
        }
        best_b = best_b.min(start.elapsed().as_secs_f64());
    }
    (f64::from(rounds) / best_a, f64::from(rounds) / best_b)
}
