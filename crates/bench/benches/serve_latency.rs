//! `serve_latency`: latency/throughput sweep of the dynamic-batching
//! serving stack (`tfe-serve`) over arrival rate × micro-batch size.
//!
//! Each cell starts a fresh in-process service around the deterministic
//! demo network, offers open-loop Poisson arrivals for a short window,
//! then reports achieved throughput, tail latency, rejection counts,
//! and the window's merged simulator counters.
//!
//! ```sh
//! cargo bench -p tfe-bench --bench serve_latency
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use tfe_bench::format::Table;
use tfe_serve::{demo, Rejected, ServeConfig, Service};

struct Cell {
    offered: u64,
    completed: u64,
    rejected: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    mean_batch: f64,
    throughput: f64,
    mac_reduction: f64,
}

fn run_cell(rate: f64, batch: usize, window: Duration, seed: u64) -> Cell {
    let service = Service::start(
        demo::demo_network(7),
        ServeConfig {
            max_batch_size: batch,
            max_batch_delay: Duration::from_micros(2000),
            queue_capacity: 128,
            executors: 2,
            ..ServeConfig::default()
        },
    )
    .expect("demo config is valid");
    let client = service.client();
    let images = demo::demo_images(32, 0x1a6e);
    let mut rng = StdRng::seed_from_u64(seed);

    let start = Instant::now();
    let end = start + window;
    let mut next_arrival = start;
    let mut offered = 0u64;
    let mut rejected = 0u64;
    let mut tickets = Vec::new();
    loop {
        let u: f64 = rng.gen();
        next_arrival += Duration::from_secs_f64(-(1.0 - u).ln() / rate);
        if next_arrival >= end {
            break;
        }
        let now = Instant::now();
        if next_arrival > now {
            std::thread::sleep(next_arrival - now);
        }
        let image = images[offered as usize % images.len()].clone();
        offered += 1;
        match client.submit(image) {
            Ok(ticket) => tickets.push(ticket),
            Err(Rejected::QueueFull { .. }) => rejected += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    for ticket in tickets {
        let _ = ticket.wait();
    }
    let elapsed = start.elapsed();
    let snapshot = service.shutdown();
    Cell {
        offered,
        completed: snapshot.completed,
        rejected,
        p50_us: snapshot.p50_us,
        p95_us: snapshot.p95_us,
        p99_us: snapshot.p99_us,
        mean_batch: snapshot.mean_batch_size(),
        throughput: snapshot.completed as f64 / elapsed.as_secs_f64(),
        mac_reduction: snapshot.counters.mac_reduction(),
    }
}

fn main() {
    let window = Duration::from_millis(600);
    let mut table = Table::new(
        "serve_latency: arrival rate × micro-batch size (0.6s windows, demo net)",
        &[
            "batch", "rate/s", "offered", "done", "rej", "p50µs", "p95µs", "p99µs", "mean_b",
            "req/s", "MACx",
        ],
    );
    for batch in [1usize, 4, 16] {
        for rate in [100.0f64, 400.0, 1600.0] {
            let cell = run_cell(rate, batch, window, 1);
            table.row(&[
                batch.to_string(),
                format!("{rate:.0}"),
                cell.offered.to_string(),
                cell.completed.to_string(),
                cell.rejected.to_string(),
                cell.p50_us.to_string(),
                cell.p95_us.to_string(),
                cell.p99_us.to_string(),
                format!("{:.2}", cell.mean_batch),
                format!("{:.1}", cell.throughput),
                format!("{:.2}", cell.mac_reduction),
            ]);
        }
    }
    print!("{}", table.render());
}
