//! `engine_modes`: the alternate dense-stage executors vs the dense
//! sweep — the acceptance bench of the weight-plan subsystem (DESIGN
//! §5.15).
//!
//! Each cell compiles **one network twice** — once under
//! [`ModePolicy::DENSE_ONLY`] (the baseline) and once under the forced
//! alternate mode — and times single-image [`Engine::run`] on both,
//! interleaved min-of-reps, **bit-identity asserted before timing**
//! (activations, counters, and a batched run on each side):
//!
//! * **sparse_p50 / p70 / p90** — a dense stage magnitude-pruned to the
//!   exact sparsity through `tfe-baselines`'
//!   [`SparseFilterBank::prune`], executed by the compressed-sparse
//!   path (`engine/sparse.rs`) against the dense sweep over the same
//!   (mostly-zero) weights.
//! * **factorized_palette4** — a dense stage whose weights come from a
//!   four-value palette (repetition ≈ 0.99), executed by the UCNN-style
//!   factorized path (`engine/repeat.rs`) against the dense sweep.
//!
//! Pinned acceptance numbers (asserted, not just printed):
//!
//! * `sparse/dense ≥ 1.2` at 90 % sparsity — skipping nine of ten taps
//!   must actually pay after the compressed table's bookkeeping;
//! * every cell's two sides are bit-identical — asserted on
//!   activations and the full counter stream before any timing runs.
//!
//! The 50/70 % sparse cells and the factorized cell are recorded
//! unpinned: they chart where the crossover lives in the trajectory
//! (`BENCH_*.json` via [`tfe_bench::report`]) without promising a win
//! the mode policy's thresholds don't rely on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfe_baselines::sparse_kernel::SparseFilterBank;
use tfe_bench::report::{BenchCell, BenchReport};
use tfe_bench::timing::best_pair_ips;
use tfe_sim::engine::{Engine, Scratch};
use tfe_sim::network::{FunctionalNetwork, FunctionalStage};
use tfe_sim::output::OutputConfig;
use tfe_tensor::fixed::Fx16;
use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;
use tfe_transfer::analysis::ReuseConfig;
use tfe_transfer::layer::TransferredLayer;
use tfe_transfer::mode::{ExecMode, ModePolicy};

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

const N: usize = 48;
const M: usize = 32;
const HW: usize = 12;
const K: usize = 3;

fn stage_net(weights: Tensor4<f32>) -> FunctionalNetwork {
    let shape = LayerShape::conv("mode", N, M, HW, HW, K, 1, 1).unwrap();
    FunctionalNetwork::new(vec![FunctionalStage {
        shape,
        weights: TransferredLayer::Dense { weights },
        bias: vec![0.1; M],
        output: OutputConfig::RELU_ONLY,
    }])
    .unwrap()
}

/// A dense stage magnitude-pruned to exactly `sparsity` via the
/// baselines pruning kernel — the same feed the pruned zoo variants
/// use, so the bench measures the path production models take.
fn pruned_net(sparsity: f64, seed: u32) -> FunctionalNetwork {
    let mut s = seed;
    let dense = Tensor4::from_fn([M, N, K, K], |_| det(&mut s));
    stage_net(
        SparseFilterBank::prune(&dense, sparsity)
            .expect("bench sparsity is a valid fraction")
            .to_dense(),
    )
}

/// A dense stage drawn from a four-value palette: zero never occurs
/// (sparsity 0), repetition ≈ 0.99 — the factorized path's best case.
fn palette_net(seed: u32) -> FunctionalNetwork {
    const PALETTE: [f32; 4] = [-0.5, -0.25, 0.25, 0.5];
    let mut s = seed;
    stage_net(Tensor4::from_fn([M, N, K, K], |_| {
        det(&mut s);
        PALETTE[(s >> 9) as usize % 4]
    }))
}

struct Cell {
    label: &'static str,
    net: FunctionalNetwork,
    forced: (ModePolicy, ExecMode),
    /// The pinned minimum alternate/dense throughput ratio, if any.
    pin: Option<f64>,
    seed: u32,
}

fn bench_engine_modes(c: &mut Criterion) {
    let cells = vec![
        Cell {
            label: "sparse_p50",
            net: pruned_net(0.5, 21),
            forced: (ModePolicy::FORCE_SPARSE, ExecMode::Sparse),
            pin: None,
            seed: 201,
        },
        Cell {
            label: "sparse_p70",
            net: pruned_net(0.7, 22),
            forced: (ModePolicy::FORCE_SPARSE, ExecMode::Sparse),
            pin: None,
            seed: 202,
        },
        Cell {
            label: "sparse_p90",
            net: pruned_net(0.9, 23),
            forced: (ModePolicy::FORCE_SPARSE, ExecMode::Sparse),
            pin: Some(1.2),
            seed: 203,
        },
        Cell {
            label: "factorized_palette4",
            net: palette_net(24),
            forced: (ModePolicy::FORCE_FACTORIZED, ExecMode::Factorized),
            pin: None,
            seed: 204,
        },
    ];

    let mut report = BenchReport::load_or_new();
    for cell in &cells {
        let dense =
            Engine::compile_with_policy(&cell.net, ReuseConfig::FULL, &ModePolicy::DENSE_ONLY)
                .unwrap();
        let alt =
            Engine::compile_with_policy(&cell.net, ReuseConfig::FULL, &cell.forced.0).unwrap();
        assert_eq!(dense.exec_modes(), vec![ExecMode::Dense], "{}", cell.label);
        assert_eq!(alt.exec_modes(), vec![cell.forced.1], "{}", cell.label);

        let mut s = cell.seed;
        let input = Tensor4::from_fn([1, N, HW, HW], |_| Fx16::from_f32(det(&mut s)));
        let mut scratch_dense = Scratch::new();
        let mut scratch_alt = Scratch::new();

        // Bit-identity before timing: activations and the full counter
        // stream, on both the single-image and the batched entry point.
        let want = dense.run(&input, &mut scratch_dense).unwrap();
        let got = alt.run(&input, &mut scratch_alt).unwrap();
        assert_eq!(got.counters, want.counters, "{}: counters", cell.label);
        let [_, oc, oh, ow] = want.activations.dims();
        for ci in 0..oc {
            for y in 0..oh {
                for x in 0..ow {
                    assert_eq!(
                        got.activations.get([0, ci, y, x]),
                        want.activations.get([0, ci, y, x]),
                        "{}: activations diverge at plane {ci} ({y},{x})",
                        cell.label
                    );
                }
            }
        }
        let batch = Tensor4::from_fn([4, N, HW, HW], |_| Fx16::from_f32(det(&mut s)));
        let wb = dense.run_batched(&batch, &mut scratch_dense, 1).unwrap();
        let gb = alt.run_batched(&batch, &mut scratch_alt, 1).unwrap();
        assert_eq!(
            gb.per_image, wb.per_image,
            "{}: batched counters",
            cell.label
        );
        for bi in 0..4 {
            for ci in 0..oc {
                for y in 0..oh {
                    for x in 0..ow {
                        assert_eq!(
                            gb.activations.get([bi, ci, y, x]),
                            wb.activations.get([bi, ci, y, x]),
                            "{}: batched activations diverge at image {bi}",
                            cell.label
                        );
                    }
                }
            }
        }

        c.bench_function(&format!("dense/{}", cell.label), |b| {
            b.iter(|| black_box(dense.run(black_box(&input), &mut scratch_dense).unwrap()))
        });
        c.bench_function(&format!("alt/{}", cell.label), |b| {
            b.iter(|| black_box(alt.run(black_box(&input), &mut scratch_alt).unwrap()))
        });

        let (reps, rounds) = (10, 60);
        let (dense_ips, alt_ips) = best_pair_ips(
            reps,
            rounds,
            || {
                black_box(dense.run(&input, &mut scratch_dense).unwrap());
            },
            || {
                black_box(alt.run(&input, &mut scratch_alt).unwrap());
            },
        );
        let ratio = alt_ips / dense_ips;
        println!(
            "engine_modes/{:<20} dense {dense_ips:>9.1} img/s  alt {alt_ips:>9.1} img/s  \
             alt/dense {ratio:.3}",
            cell.label
        );
        if let Some(pin) = cell.pin {
            assert!(
                ratio >= pin,
                "{}: the {} executor must be >= {pin}x the dense sweep, got ratio {ratio:.3}",
                cell.label,
                cell.forced.1.as_str()
            );
        }

        report.upsert(BenchCell {
            bench: "engine_modes".to_owned(),
            cell: cell.label.to_owned(),
            baseline: "dense".to_owned(),
            baseline_ips: dense_ips,
            current_ips: alt_ips,
            speedup: ratio,
            reps: u64::from(reps),
            rounds: u64::from(rounds),
        });
    }
    report.save().expect("write perf trajectory");
    println!(
        "engine_modes: trajectory updated at {}",
        BenchReport::path().display()
    );
}

criterion_group!(benches, bench_engine_modes);
criterion_main!(benches);
