//! Simulator throughput: the functional datapath on a small layer, the
//! per-layer performance model over whole networks, and batched-image
//! throughput scaling against the worker-thread count.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tfe_nets::zoo;
use tfe_sim::batch::{run_batch, BatchOptions};
use tfe_sim::functional::run_layer;
use tfe_sim::network::FunctionalNetwork;
use tfe_sim::perf::{NetworkPerf, PerfConfig};
use tfe_tensor::fixed::Fx16;
use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;
use tfe_transfer::analysis::ReuseConfig;
use tfe_transfer::layer::TransferredLayer;
use tfe_transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

fn bench_sim(c: &mut Criterion) {
    let shape = LayerShape::conv("bench", 4, 16, 16, 16, 3, 1, 1).unwrap();
    let mut seed = 3;
    let layer = TransferredLayer::random(&shape, TransferScheme::Scnn, || det(&mut seed)).unwrap();
    let input = Tensor4::from_fn([1, 4, 16, 16], |_| Fx16::from_f32(det(&mut seed)));
    c.bench_function("functional scnn layer 4x16x16 m16", |b| {
        b.iter(|| run_layer(black_box(&input), &layer, &shape, ReuseConfig::FULL).unwrap())
    });

    let vgg = zoo::vgg16();
    let plan = vgg.plan(TransferScheme::Scnn);
    let cfg = PerfConfig::default();
    c.bench_function("perf model full VGG-16 (SCNN)", |b| {
        b.iter(|| NetworkPerf::evaluate(black_box(&plan), &cfg))
    });
}

/// Batched-image throughput (images/sec) scaling against the thread
/// count, on a VGG-16-style stack of functional stages. Whole ImageNet
/// VGG-16 is too large for value-level simulation, so this uses a
/// narrowed VGG prefix (same 3×3 conv + pool topology, reduced channel
/// counts and resolution) — every image still walks multiple chained
/// PPSR/ERRR layers. Also re-times the perf model's layer fan-out on the
/// full VGG-16 plan per thread count.
fn bench_batch_scaling(c: &mut Criterion) {
    let mut seed = 17;
    // VGG prefix topology: two 3x3 conv stages then pool, twice.
    let shapes = vec![
        (
            LayerShape::conv("v1", 3, 8, 24, 24, 3, 1, 1).unwrap(),
            false,
        ),
        (LayerShape::conv("v2", 8, 8, 24, 24, 3, 1, 1).unwrap(), true),
        (
            LayerShape::conv("v3", 8, 16, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (
            LayerShape::conv("v4", 16, 16, 12, 12, 3, 1, 1).unwrap(),
            true,
        ),
    ];
    let net = FunctionalNetwork::random(&shapes, TransferScheme::Scnn, || det(&mut seed)).unwrap();
    let images: Vec<Tensor4<Fx16>> = (0..16)
        .map(|_| Tensor4::from_fn([1, 3, 24, 24], |_| Fx16::from_f32(det(&mut seed))))
        .collect();

    let vgg_plan = zoo::vgg16().plan(TransferScheme::Scnn);
    let cfg = PerfConfig::default();

    let mut baseline_ips = None;
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let rounds = 3u32;
        for _ in 0..rounds {
            let out = run_batch(
                black_box(&net),
                black_box(&images),
                ReuseConfig::FULL,
                BatchOptions::with_threads(threads),
            )
            .unwrap();
            black_box(out);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let ips = (images.len() as u32 * rounds) as f64 / elapsed;
        let speedup = ips / *baseline_ips.get_or_insert(ips);
        println!(
            "sim_throughput/batch_vgg_prefix threads={threads:<2} {ips:>9.1} images/sec \
             (x{speedup:.2} vs 1 thread)"
        );
    }

    let mut group = c.benchmark_group("perf_model_thread_scaling");
    group.sample_size(20);
    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        group.bench_function(&format!("vgg16_scnn_t{threads}"), |b| {
            b.iter(|| pool.install(|| NetworkPerf::evaluate(black_box(&vgg_plan), &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim, bench_batch_scaling);
criterion_main!(benches);
