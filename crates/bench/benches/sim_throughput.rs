//! Simulator throughput: the functional datapath on a small layer and
//! the per-layer performance model over whole networks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfe_nets::zoo;
use tfe_sim::functional::run_layer;
use tfe_sim::perf::{NetworkPerf, PerfConfig};
use tfe_tensor::fixed::Fx16;
use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;
use tfe_transfer::analysis::ReuseConfig;
use tfe_transfer::layer::TransferredLayer;
use tfe_transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

fn bench_sim(c: &mut Criterion) {
    let shape = LayerShape::conv("bench", 4, 16, 16, 16, 3, 1, 1).unwrap();
    let mut seed = 3;
    let layer = TransferredLayer::random(&shape, TransferScheme::Scnn, || det(&mut seed)).unwrap();
    let input = Tensor4::from_fn([1, 4, 16, 16], |_| Fx16::from_f32(det(&mut seed)));
    c.bench_function("functional scnn layer 4x16x16 m16", |b| {
        b.iter(|| run_layer(black_box(&input), &layer, &shape, ReuseConfig::FULL).unwrap())
    });

    let vgg = zoo::vgg16();
    let plan = vgg.plan(TransferScheme::Scnn);
    let cfg = PerfConfig::default();
    c.bench_function("perf model full VGG-16 (SCNN)", |b| {
        b.iter(|| NetworkPerf::evaluate(black_box(&plan), &cfg))
    });
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
