//! Eyeriss baseline model throughput over whole networks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfe_eyeriss::{EyerissConfig, EyerissPerf};
use tfe_nets::zoo;

fn bench_eyeriss(c: &mut Criterion) {
    let cfg = EyerissConfig::paper();
    for net in [zoo::vgg16(), zoo::densenet121()] {
        c.bench_function(&format!("eyeriss model {}", net.name()), |b| {
            b.iter(|| EyerissPerf::evaluate(black_box(&net), &cfg))
        });
    }
}

criterion_group!(benches, bench_eyeriss);
criterion_main!(benches);
