//! Telemetry sink overhead: the tentpole's "low-overhead" claim, pinned.
//!
//! Two paths over the same compiled [`Engine`] and the same caller-owned
//! [`Scratch`]:
//!
//! * **disabled** — `Sink::disabled()` installed: `record()` is one
//!   branch and the clock is never read. This is the baseline every
//!   non-observing user pays.
//! * **enabled** — a live sink with a serving-sized ring: two
//!   `Instant::now()` reads, a counter snapshot/delta, one seqlock ring
//!   push, and the per-layer atomic adds, per stage per request.
//!
//! Results are asserted bit-identical before timing (the sink must not
//! perturb the datapath), then throughput is measured with the
//! interleaved min-of-reps estimator from `engine_speedup` so clock
//! drift hits both sides equally.
//!
//! Pinned acceptance number (asserted, not just printed):
//! `enabled/disabled ≥ 0.97` — enabling telemetry costs < 3 % throughput
//! on every swept cell.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tfe_sim::engine::{Engine, Scratch};
use tfe_sim::network::FunctionalNetwork;
use tfe_telemetry::Sink;
use tfe_tensor::fixed::Fx16;
use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;
use tfe_transfer::analysis::ReuseConfig;
use tfe_transfer::TransferScheme;

/// Ring capacity matching the serving default (`ServeConfig::telemetry_ring`).
const RING: usize = 4096;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

/// One fig15-style cell: a small multi-stage network under `scheme`
/// (conv → conv+pool) and a matching input image.
fn sweep_cell(scheme: TransferScheme, seed: u32) -> (FunctionalNetwork, Tensor4<Fx16>) {
    let m = match scheme {
        TransferScheme::Dcnn { z: 6 } => 16,
        _ => 8,
    };
    let shapes = vec![
        (
            LayerShape::conv("p1", 3, m, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (LayerShape::conv("p2", m, m, 12, 12, 3, 1, 1).unwrap(), true),
    ];
    let mut s = seed;
    let net = FunctionalNetwork::random(&shapes, scheme, || det(&mut s)).unwrap();
    let input = Tensor4::from_fn([1, 3, 12, 12], |_| Fx16::from_f32(det(&mut s)));
    (net, input)
}

/// A deeper VGG-prefix stack: more stages per request means more samples
/// per request — the worst case for per-stage instrumentation cost.
fn vgg_prefix_cell(seed: u32) -> (FunctionalNetwork, Tensor4<Fx16>) {
    let shapes = vec![
        (
            LayerShape::conv("v1", 3, 8, 24, 24, 3, 1, 1).unwrap(),
            false,
        ),
        (LayerShape::conv("v2", 8, 8, 24, 24, 3, 1, 1).unwrap(), true),
        (
            LayerShape::conv("v3", 8, 16, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (
            LayerShape::conv("v4", 16, 16, 12, 12, 3, 1, 1).unwrap(),
            true,
        ),
    ];
    let mut s = seed;
    let net = FunctionalNetwork::random(&shapes, TransferScheme::Scnn, || det(&mut s)).unwrap();
    let input = Tensor4::from_fn([1, 3, 24, 24], |_| Fx16::from_f32(det(&mut s)));
    (net, input)
}

/// Interleaved min-of-reps throughput for two closures, alternating
/// which side goes first each rep (a b, b a, a b, …) so both
/// clock-frequency drift over the window and any just-ran-second cache
/// advantage hit the two sides equally — the true telemetry gap is
/// ~1 %, well inside either bias alone.
fn best_pair_ips(reps: u32, rounds: u32, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::MAX, f64::MAX);
    let time = |run: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..rounds {
            run();
        }
        start.elapsed().as_secs_f64()
    };
    for rep in 0..reps {
        if rep % 2 == 0 {
            best_a = best_a.min(time(&mut a));
            best_b = best_b.min(time(&mut b));
        } else {
            best_b = best_b.min(time(&mut b));
            best_a = best_a.min(time(&mut a));
        }
    }
    (rounds as f64 / best_a, rounds as f64 / best_b)
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let cells: Vec<(&str, FunctionalNetwork, Tensor4<Fx16>)> = vec![
        {
            let (net, input) = sweep_cell(TransferScheme::DCNN4, 61);
            ("dcnn4", net, input)
        },
        {
            let (net, input) = sweep_cell(TransferScheme::Scnn, 62);
            ("scnn", net, input)
        },
        {
            let (net, input) = vgg_prefix_cell(63);
            ("vgg_prefix_scnn", net, input)
        },
    ];
    let reuse = ReuseConfig::FULL;
    for (label, net, input) in &cells {
        let mut engine = Engine::compile(net, reuse).unwrap();
        let mut scratch = Scratch::new();

        // Pin bit-identity across the toggle before timing anything.
        let silent = engine.run(input, &mut scratch).unwrap();
        let sink = engine.enable_telemetry(RING);
        let loud = engine.run(input, &mut scratch).unwrap();
        assert_eq!(silent.activations, loud.activations, "{label}");
        assert_eq!(silent.counters, loud.counters, "{label}");
        assert_eq!(
            engine.telemetry().total(),
            loud.counters,
            "{label}: one run's per-layer samples must sum to its totals"
        );
        engine.set_sink(Sink::disabled());

        c.bench_function(&format!("disabled/{label}"), |b| {
            b.iter(|| engine.run(black_box(input), &mut scratch).unwrap())
        });
        engine.set_sink(sink.clone());
        c.bench_function(&format!("enabled/{label}"), |b| {
            b.iter(|| engine.run(black_box(input), &mut scratch).unwrap())
        });

        // The acceptance ratio, toggled via set_sink between the
        // interleaved halves so both sides share one engine + scratch.
        let loud_engine = engine;
        let mut quiet_engine = Engine::compile(net, reuse).unwrap();
        quiet_engine.set_sink(Sink::disabled());
        let mut scratch_a = Scratch::new();
        let mut scratch_b = Scratch::new();
        let (reps, rounds) = (20, 150);
        let (disabled_ips, enabled_ips) = best_pair_ips(
            reps,
            rounds,
            || {
                black_box(quiet_engine.run(input, &mut scratch_a).unwrap());
            },
            || {
                black_box(loud_engine.run(input, &mut scratch_b).unwrap());
            },
        );
        let ratio = enabled_ips / disabled_ips;
        println!(
            "telemetry_overhead/{label:<16} disabled {disabled_ips:>8.1}/s  \
             enabled {enabled_ips:>8.1}/s  enabled/disabled {ratio:.3}"
        );
        assert!(
            ratio >= 0.97,
            "{label}: enabled-telemetry throughput must be >= 0.97x disabled, got {ratio:.3}"
        );
    }
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
