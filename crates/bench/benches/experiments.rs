//! End-to-end timings of every paper experiment kernel (Table II runs at
//! quick scale; everything else at full scale).

use criterion::{criterion_group, criterion_main, Criterion};
use tfe_bench::experiments as ex;
use tfe_core::Engine;

fn bench_experiments(c: &mut Criterion) {
    let engine = Engine::new();
    c.bench_function("table3_specs", |b| b.iter(ex::table3::run));
    c.bench_function("fig14_breakdown", |b| b.iter(|| ex::fig14::run(&engine)));
    c.bench_function("fig15_speedup", |b| b.iter(|| ex::fig15::run(&engine)));
    c.bench_function("fig16_weight_compression", |b| {
        b.iter(|| ex::fig16::run(&engine))
    });
    c.bench_function("fig17_computation_reduction", |b| {
        b.iter(|| ex::fig17::run(&engine))
    });
    c.bench_function("table4_other_methods", |b| {
        b.iter(|| ex::table4::run(&engine))
    });
    c.bench_function("table5_recent_networks", |b| {
        b.iter(|| ex::table5::run(&engine))
    });
    c.bench_function("fig18_energy_efficiency", |b| {
        b.iter(|| ex::fig18::run(&engine))
    });
    c.bench_function("fig19_mac_ablation", |b| b.iter(ex::fig19::run));
    c.bench_function("fig20_offchip_access", |b| {
        b.iter(|| ex::fig20::run(&engine))
    });
    c.bench_function("eq_analysis", |b| b.iter(ex::eq_analysis::run));
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("table2_accuracy_quick", |b| {
        b.iter(|| ex::table2::run(ex::table2::Scale::Quick))
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
