//! Microbenchmark of the ERRR cyclic PSum memory (Figs. 8-9): insert /
//! read / combine throughput of the row ring.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfe_sim::counters::Counters;
use tfe_sim::errr::{combine_rows, RowRing};
use tfe_tensor::fixed::{Accum, Fx16};

fn row(v: f32, len: usize) -> Vec<Accum> {
    (0..len)
        .map(|_| Fx16::from_f32(v).widening_mul(Fx16::ONE))
        .collect()
}

fn bench_errr(c: &mut Criterion) {
    c.bench_function("row_ring insert+read cycle (k3, 224 wide)", |b| {
        b.iter(|| {
            let mut counters = Counters::new();
            let mut ring = RowRing::new(3);
            for i in 0..32usize {
                let streams = vec![vec![row(i as f32, 224)]; 3];
                ring.insert(i, streams, &mut counters);
                if i >= 2 {
                    for ky in 0..3 {
                        black_box(ring.read(i - 2 + ky, ky, 0, &mut counters));
                    }
                }
            }
            counters
        })
    });
    let a = row(1.0, 224);
    let b_ = row(2.0, 224);
    let c_ = row(3.0, 224);
    c.bench_function("combine_rows 3x224", |b| {
        b.iter(|| {
            let mut counters = Counters::new();
            combine_rows(black_box(&[&a, &b_, &c_]), &mut counters)
        })
    });
}

criterion_group!(benches, bench_errr);
criterion_main!(benches);
