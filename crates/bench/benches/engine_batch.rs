//! `engine_batch`: the filter-stationary batched sweep vs sequential
//! per-image execution — the tentpole acceptance bench of the batched
//! dataflow (DESIGN §5.13).
//!
//! Each cell times two sides over the same engine and scratch arena,
//! interleaved min-of-reps, **bit-identity asserted before timing**
//! (per-image activations and counters both):
//!
//! * **sequential** — `B` independent [`Engine::run`] calls, one per
//!   image, the pre-batching execution model.
//! * **batched** — one [`Engine::run_batched`] over the packed `[B, …]`
//!   tensor: every stage pads the whole batch once, then sweeps each
//!   quantized filter row across all images (dense stages via the
//!   batch-interleaved padded layout and, when the conservative
//!   `N·K·max|w|·max|input|` bound allows, the wrapping kernel fast
//!   path).
//!
//! Both sides are reported in **images/second**. Pinned acceptance
//! numbers (asserted, not just printed):
//!
//! * `batched/sequential ≥ 1.3` at batch 8 on every dense cell — the
//!   filter-stationary sweep must actually pay, not just break even;
//! * `batched/sequential ≥ 0.97` at batch 1 on every cell — the batched
//!   entry point costs < 3 % on singleton runs (serving floods of
//!   unbatchable traffic through the same code path);
//! * `batched/sequential ≥ 0.97` on every remaining cell — no geometry
//!   regresses past noise, including the image-major SCNN path whose
//!   dataflow batching does not restructure.
//!
//! Cells land in the `BENCH_*.json` trajectory via
//! [`tfe_bench::report`], one per (cell × batch size).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfe_bench::report::{BenchCell, BenchReport};
use tfe_bench::timing::best_pair_ips;
use tfe_sim::engine::{Engine, Scratch};
use tfe_sim::network::{FunctionalNetwork, FunctionalStage};
use tfe_sim::output::OutputConfig;
use tfe_tensor::fixed::Fx16;
use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;
use tfe_transfer::analysis::ReuseConfig;
use tfe_transfer::layer::TransferredLayer;
use tfe_transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

/// A single dense conv stage — the batch-interleaved sweep path, where
/// the filter-stationary win concentrates.
fn dense_net(n: usize, m: usize, hw: usize, k: usize, seed: u32) -> FunctionalNetwork {
    let mut s = seed;
    let shape = LayerShape::conv("d", n, m, hw, hw, k, 1, 1).unwrap();
    let weights = TransferredLayer::Dense {
        weights: Tensor4::from_fn([m, n, k, k], |_| det(&mut s)),
    };
    FunctionalNetwork::new(vec![FunctionalStage {
        shape,
        weights,
        bias: vec![0.1; m],
        output: OutputConfig::RELU_ONLY,
    }])
    .unwrap()
}

/// A dilated dense stage: taps stored zero-stuffed at span
/// `d·(K−1)+1`, so the interleaved sweep runs the wider monomorphized
/// row kernel over clock-gated zero slots. The cell pins that the
/// generalized-geometry compile keeps the batched sweep profitable.
fn dilated_net(n: usize, m: usize, hw: usize, k: usize, seed: u32) -> FunctionalNetwork {
    let mut s = seed;
    let shape = LayerShape::conv("dil", n, m, hw, hw, k, 1, 1)
        .unwrap()
        .with_dilation(2)
        .unwrap();
    let weights = TransferredLayer::Dense {
        weights: Tensor4::from_fn([m, n, k, k], |_| det(&mut s)),
    };
    FunctionalNetwork::new(vec![FunctionalStage {
        shape,
        weights,
        bias: vec![0.1; m],
        output: OutputConfig::RELU_ONLY,
    }])
    .unwrap()
}

/// The fig15-style SCNN stack: image-major ring schedules, so batching
/// shares only padding and dispatch — the no-regression control cell.
fn scnn_net(seed: u32) -> FunctionalNetwork {
    let mut s = seed;
    let shapes = vec![
        (
            LayerShape::conv("p1", 3, 8, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (LayerShape::conv("p2", 8, 8, 12, 12, 3, 1, 1).unwrap(), true),
    ];
    FunctionalNetwork::random(&shapes, TransferScheme::Scnn, || det(&mut s)).unwrap()
}

struct Cell {
    label: &'static str,
    net: FunctionalNetwork,
    dims: [usize; 3],
    /// Whether the batch-8 cell carries the ≥ 1.3× speedup pin (the
    /// dense interleaved-sweep cells).
    pinned_speedup: bool,
    seed: u32,
}

fn bench_engine_batch(c: &mut Criterion) {
    let cells = vec![
        Cell {
            label: "dense_n48_m32_k3",
            net: dense_net(48, 32, 12, 3, 11),
            dims: [48, 12, 12],
            pinned_speedup: true,
            seed: 101,
        },
        Cell {
            label: "dense_n64_m16_k3",
            net: dense_net(64, 16, 8, 3, 12),
            dims: [64, 8, 8],
            pinned_speedup: true,
            seed: 102,
        },
        Cell {
            label: "dense_n32_m16_k5",
            net: dense_net(32, 16, 10, 5, 13),
            dims: [32, 10, 10],
            pinned_speedup: true,
            seed: 103,
        },
        Cell {
            label: "dilated_n32_m16_k3_d2",
            net: dilated_net(32, 16, 12, 3, 15),
            dims: [32, 12, 12],
            // Dilated rows sweep a wider span for the same K logical
            // taps, so only the no-regression floor is pinned here.
            pinned_speedup: false,
            seed: 105,
        },
        Cell {
            label: "scnn_fig15",
            net: scnn_net(14),
            dims: [3, 12, 12],
            pinned_speedup: false,
            seed: 104,
        },
    ];

    let mut report = BenchReport::load_or_new();
    for cell in &cells {
        let engine = Engine::compile(&cell.net, ReuseConfig::FULL).unwrap();
        // One arena per timed side, so the interleaved closures can
        // borrow independently; both stay warm across batch sizes.
        let mut scratch = Scratch::new();
        let mut scratch_bat = Scratch::new();
        let [ch, h, w] = cell.dims;
        let mut s = cell.seed;
        for &batch in &[1usize, 4, 8] {
            let input = Tensor4::from_fn([batch, ch, h, w], |_| Fx16::from_f32(det(&mut s)));
            let singles: Vec<Tensor4<Fx16>> = (0..batch)
                .map(|b| Tensor4::from_fn([1, ch, h, w], |[_, ci, y, x]| input.get([b, ci, y, x])))
                .collect();

            // Bit-identity before timing: the batched run must decompose
            // into exactly the sequential per-image runs.
            let batched = engine.run_batched(&input, &mut scratch_bat, 1).unwrap();
            for (b, single) in singles.iter().enumerate() {
                let want = engine.run(single, &mut scratch).unwrap();
                assert_eq!(
                    want.counters, batched.per_image[b],
                    "{}/b{batch}: per-image counters diverge at image {b}",
                    cell.label
                );
                let [_, oc, oh, ow] = want.activations.dims();
                for ci in 0..oc {
                    for y in 0..oh {
                        for x in 0..ow {
                            assert_eq!(
                                want.activations.get([0, ci, y, x]),
                                batched.activations.get([b, ci, y, x]),
                                "{}/b{batch}: activations diverge at image {b}",
                                cell.label
                            );
                        }
                    }
                }
            }

            let name = format!("{}/b{batch}", cell.label);
            c.bench_function(&format!("sequential/{name}"), |b| {
                b.iter(|| {
                    for single in &singles {
                        black_box(engine.run(black_box(single), &mut scratch).unwrap());
                    }
                })
            });
            c.bench_function(&format!("batched/{name}"), |b| {
                b.iter(|| {
                    black_box(
                        engine
                            .run_batched(black_box(&input), &mut scratch_bat, 1)
                            .unwrap(),
                    )
                })
            });

            // One iteration of either side processes `batch` images, so
            // the iterations/second from the interleaved min-of-reps
            // timing convert to images/second with the same factor and
            // the ratio is unaffected.
            let (reps, rounds) = (10, 60);
            let (seq_ips, bat_ips) = best_pair_ips(
                reps,
                rounds,
                || {
                    for single in &singles {
                        black_box(engine.run(single, &mut scratch).unwrap());
                    }
                },
                || {
                    black_box(engine.run_batched(&input, &mut scratch_bat, 1).unwrap());
                },
            );
            let seq_images = seq_ips * batch as f64;
            let bat_images = bat_ips * batch as f64;
            let ratio = bat_images / seq_images;
            println!(
                "engine_batch/{name:<22} sequential {seq_images:>9.1} img/s  \
                 batched {bat_images:>9.1} img/s  batched/sequential {ratio:.3}"
            );
            if batch == 1 {
                assert!(
                    ratio >= 0.97,
                    "{name}: batched entry point must cost < 3% on singleton runs, \
                     got ratio {ratio:.3}"
                );
            } else if batch == 8 && cell.pinned_speedup {
                assert!(
                    ratio >= 1.3,
                    "{name}: filter-stationary sweep must be >= 1.3x sequential \
                     at batch 8, got ratio {ratio:.3}"
                );
            } else {
                assert!(
                    ratio >= 0.97,
                    "{name}: batched execution must not regress past noise, \
                     got ratio {ratio:.3}"
                );
            }

            report.upsert(BenchCell {
                bench: "engine_batch".to_owned(),
                cell: name,
                baseline: "sequential".to_owned(),
                baseline_ips: seq_images,
                current_ips: bat_images,
                speedup: ratio,
                reps: u64::from(reps),
                rounds: u64::from(rounds),
            });
        }
    }
    report.save().expect("write perf trajectory");
    println!(
        "engine_batch: trajectory updated at {}",
        BenchReport::path().display()
    );
}

criterion_group!(benches, bench_engine_batch);
criterion_main!(benches);
