//! Prepare/run split payoff: steady-state throughput of the compile-once
//! [`PreparedNetwork`] engine against the reference
//! [`FunctionalNetwork::run`] path, which re-quantizes filter rows,
//! re-expands SCNN orbits, and re-allocates nested padded planes on
//! every request.
//!
//! The sweep mirrors the paper's Fig. 15 network axis — one small
//! multi-stage network per transfer scheme (DCNN 4×4, DCNN 6×6, SCNN)
//! plus a VGG-prefix stack — under the full PPSR+ERRR configuration.
//! Outputs are asserted bit-identical before any timing. The printed
//! `speedup` line is the ISSUE-3 acceptance number (≥ 1.5× steady-state
//! throughput).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tfe_sim::network::FunctionalNetwork;
use tfe_sim::prepared::{PreparedNetwork, Scratch};
use tfe_tensor::fixed::Fx16;
use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;
use tfe_transfer::analysis::ReuseConfig;
use tfe_transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

/// One fig15-style cell: a small multi-stage network under `scheme`
/// (conv → conv+pool, filter counts compatible with the scheme's group
/// size) and a matching input image.
fn sweep_cell(scheme: TransferScheme, seed: u32) -> (FunctionalNetwork, Tensor4<Fx16>) {
    let m = match scheme {
        TransferScheme::Dcnn { z: 6 } => 16,
        _ => 8,
    };
    let shapes = vec![
        (
            LayerShape::conv("p1", 3, m, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (LayerShape::conv("p2", m, m, 12, 12, 3, 1, 1).unwrap(), true),
    ];
    let mut s = seed;
    let net = FunctionalNetwork::random(&shapes, scheme, || det(&mut s)).unwrap();
    let input = Tensor4::from_fn([1, 3, 12, 12], |_| Fx16::from_f32(det(&mut s)));
    (net, input)
}

/// A deeper VGG-prefix stack (same topology as `sim_throughput`'s batch
/// bench) — the "serve a real network" shape of the sweep.
fn vgg_prefix_cell(seed: u32) -> (FunctionalNetwork, Tensor4<Fx16>) {
    let shapes = vec![
        (
            LayerShape::conv("v1", 3, 8, 24, 24, 3, 1, 1).unwrap(),
            false,
        ),
        (LayerShape::conv("v2", 8, 8, 24, 24, 3, 1, 1).unwrap(), true),
        (
            LayerShape::conv("v3", 8, 16, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (
            LayerShape::conv("v4", 16, 16, 12, 12, 3, 1, 1).unwrap(),
            true,
        ),
    ];
    let mut s = seed;
    let net = FunctionalNetwork::random(&shapes, TransferScheme::Scnn, || det(&mut s)).unwrap();
    let input = Tensor4::from_fn([1, 3, 24, 24], |_| Fx16::from_f32(det(&mut s)));
    (net, input)
}

fn steady_state_ips(rounds: u32, mut run: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..rounds {
        run();
    }
    rounds as f64 / start.elapsed().as_secs_f64()
}

fn bench_prepare_vs_naive(c: &mut Criterion) {
    let cells: Vec<(&str, FunctionalNetwork, Tensor4<Fx16>)> = vec![
        {
            let (net, input) = sweep_cell(TransferScheme::DCNN4, 41);
            ("dcnn4", net, input)
        },
        {
            let (net, input) = sweep_cell(TransferScheme::DCNN6, 42);
            ("dcnn6", net, input)
        },
        {
            let (net, input) = sweep_cell(TransferScheme::Scnn, 43);
            ("scnn", net, input)
        },
        {
            let (net, input) = vgg_prefix_cell(44);
            ("vgg_prefix_scnn", net, input)
        },
    ];
    let reuse = ReuseConfig::FULL;
    for (label, net, input) in &cells {
        let prepared = PreparedNetwork::prepare(net, reuse).unwrap();
        let mut scratch = Scratch::new();
        // Warm up both paths and pin bit-identity before timing.
        let want = net.run(input, reuse).unwrap();
        let got = prepared.run(input, &mut scratch).unwrap();
        assert_eq!(got.activations, want.activations, "{label}");
        assert_eq!(got.counters, want.counters, "{label}");

        c.bench_function(&format!("naive/{label}"), |b| {
            b.iter(|| net.run(black_box(input), reuse).unwrap())
        });
        c.bench_function(&format!("prepared/{label}"), |b| {
            b.iter(|| prepared.run(black_box(input), &mut scratch).unwrap())
        });

        // Steady-state throughput ratio — the acceptance number.
        let rounds = 30;
        let naive_ips = steady_state_ips(rounds, || {
            black_box(net.run(input, reuse).unwrap());
        });
        let prepared_ips = steady_state_ips(rounds, || {
            black_box(prepared.run(input, &mut scratch).unwrap());
        });
        println!(
            "prepare_vs_naive/{label:<16} naive {naive_ips:>8.1}/s  prepared {prepared_ips:>8.1}/s  \
             speedup x{:.2}",
            prepared_ips / naive_ips
        );
    }
}

criterion_group!(benches, bench_prepare_vs_naive);
criterion_main!(benches);
