//! `fleet_router`: dispatch overhead of the multi-model fleet tier.
//!
//! Two interleaved sides per cell, both blocking round-trips through
//! the same serving machinery (bounded queue → micro-batcher → executor
//! → ticket wait) on the same demo network and knobs (batch size 1,
//! zero flush delay, one executor):
//!
//! * **serve** — a bare single-model [`Service`], the pre-fleet path.
//! * **fleet** — a one-model [`Fleet`], so every request additionally
//!   pays the router: model-id lookup, live-generation `RwLock` read +
//!   `Arc` clone, round-robin replica pick, and the dispatch counters.
//!
//! The pinned acceptance number (asserted, not just printed):
//! `fleet/serve ≥ 0.97` on every cell — routed dispatch costs < 3 %
//! over single-model serving (re-tightened from 0.95 after the
//! per-request input clone was removed from `Shard::submit`; admission
//! now moves the tensor and recovers it from the rejection path only on
//! the rare swap-boundary retry). Cells cover the default route (no
//! model id, protocol-v1 shape) and an explicit id (the map-lookup
//! path), and both sides are pinned bit-identical before timing.
//! Min-of-reps cells land in the `BENCH_*.json` trajectory via
//! [`tfe_bench::report`].

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tfe_bench::report::{BenchCell, BenchReport};
use tfe_bench::timing::best_pair_ips;
use tfe_fleet::{Fleet, FleetSpec, ModelSpec};
use tfe_serve::demo::{demo_images, demo_network};
use tfe_serve::{ServeConfig, Service};

/// Lowest-latency round-trip knobs: no batching window, one executor,
/// so the timed path is pure dispatch + execution.
fn knobs() -> ServeConfig {
    ServeConfig {
        max_batch_size: 1,
        max_batch_delay: Duration::ZERO,
        executors: 1,
        ..ServeConfig::default()
    }
}

fn bench_fleet_router(c: &mut Criterion) {
    let images = demo_images(4, 0xf1ee);
    let service = Service::start(demo_network(17), knobs()).expect("serve side starts");
    let serve_client = service.client();
    let fleet = Fleet::start(FleetSpec::new(vec![ModelSpec::new(
        "demo",
        demo_network(17),
    )
    .with_serve(knobs())]))
    .expect("fleet side starts");
    let fleet_client = fleet.client();

    // Warm both paths and pin bit-identity before timing anything.
    for image in &images {
        let want = serve_client.infer(image.clone()).expect("serve warmup");
        for model in [None, Some("demo")] {
            let got = fleet_client
                .infer(model, image.clone())
                .expect("fleet warmup");
            assert_eq!(got.activations, want.activations);
            assert_eq!(got.counters, want.counters);
        }
    }

    let mut report = BenchReport::load_or_new();
    for (cell, model) in [("default_route", None), ("routed_by_id", Some("demo"))] {
        c.bench_function(&format!("serve/{cell}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                let image = images[i % images.len()].clone();
                black_box(serve_client.infer(image).unwrap())
            })
        });
        c.bench_function(&format!("fleet/{cell}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                let image = images[i % images.len()].clone();
                black_box(fleet_client.infer(model, image).unwrap())
            })
        });

        let (reps, rounds) = (10, 120);
        let mut i = 0usize;
        let mut j = 0usize;
        let (serve_ips, fleet_ips) = best_pair_ips(
            reps,
            rounds,
            || {
                i += 1;
                let image = images[i % images.len()].clone();
                black_box(serve_client.infer(image).unwrap());
            },
            || {
                j += 1;
                let image = images[j % images.len()].clone();
                black_box(fleet_client.infer(model, image).unwrap());
            },
        );
        let ratio = fleet_ips / serve_ips;
        println!(
            "fleet_router/{cell:<14} serve {serve_ips:>8.1}/s  fleet {fleet_ips:>8.1}/s  \
             fleet/serve {ratio:.3}"
        );
        assert!(
            ratio >= 0.97,
            "{cell}: router dispatch overhead vs single-model serving must be < 3%, \
             got ratio {ratio:.3}"
        );
        report.upsert(BenchCell {
            bench: "fleet_router".to_owned(),
            cell: cell.to_owned(),
            baseline: "serve".to_owned(),
            baseline_ips: serve_ips,
            current_ips: fleet_ips,
            speedup: ratio,
            reps: u64::from(reps),
            rounds: u64::from(rounds),
        });
    }
    report.save().expect("write perf trajectory");
    println!(
        "fleet_router: trajectory updated at {}",
        BenchReport::path().display()
    );

    let snapshot = fleet.shutdown();
    assert_eq!(snapshot.shed + snapshot.failed, 0, "clean bench run");
    let _ = service.shutdown();
}

criterion_group!(benches, bench_fleet_router);
criterion_main!(benches);
