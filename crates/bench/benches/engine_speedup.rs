//! Compile/run split payoff after the single-engine refactor.
//!
//! Three paths per cell, all bit-identical (asserted before timing):
//!
//! * **cold** — the compatibility wrapper [`FunctionalNetwork::run`] on
//!   a freshly cloned network, so every request pays the full bring-up:
//!   engine compilation plus cold scratch arenas. This is the "naive"
//!   per-request cost with no compile-once amortization.
//! * **wrapper** — the same wrapper steady-state: the engine is cached
//!   inside the network after the first call and scratch arenas come
//!   from the internal pool.
//! * **engine** — a hand-driven [`Engine::run`] against a caller-owned
//!   [`Scratch`], the floor the wrapper is measured against.
//!
//! The sweep mirrors the paper's Fig. 15 network axis — one small
//! multi-stage network per transfer scheme (DCNN 4×4, DCNN 6×6, SCNN)
//! plus a VGG-prefix stack — under the full PPSR+ERRR configuration,
//! plus one deliberately compile-bound cell (tiny ifmap, many SCNN
//! filters) where weight-side work dominates the request.
//!
//! Two pinned acceptance numbers (asserted, not just printed), both from
//! best-of-reps timings so scheduler noise cannot flake them:
//!
//! * `steady/cold ≥ 2` on the compile-bound cell — the refactor keeps
//!   the compile-once payoff. (On the conv-heavy Fig. 15 cells the gap
//!   is structurally smaller now: the pre-refactor interpreter re-did
//!   weight quantization per *output row*, and that code path was
//!   deleted outright, so per-request bring-up there costs one compile,
//!   not E of them.)
//! * `wrapper/engine ≥ 0.95` on every cell — the compatibility wrapper
//!   (engine-cache lookup + scratch-pool checkout) costs < 5 % vs
//!   driving [`Engine::run`] directly.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfe_bench::report::{BenchCell, BenchReport};
use tfe_bench::timing::{best_ips, best_pair_ips};
use tfe_sim::engine::{Engine, Scratch};
use tfe_sim::network::FunctionalNetwork;
use tfe_tensor::fixed::Fx16;
use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;
use tfe_transfer::analysis::ReuseConfig;
use tfe_transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

/// One fig15-style cell: a small multi-stage network under `scheme`
/// (conv → conv+pool, filter counts compatible with the scheme's group
/// size) and a matching input image.
fn sweep_cell(scheme: TransferScheme, seed: u32) -> (FunctionalNetwork, Tensor4<Fx16>) {
    let m = match scheme {
        TransferScheme::Dcnn { z: 6 } => 16,
        _ => 8,
    };
    let shapes = vec![
        (
            LayerShape::conv("p1", 3, m, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (LayerShape::conv("p2", m, m, 12, 12, 3, 1, 1).unwrap(), true),
    ];
    let mut s = seed;
    let net = FunctionalNetwork::random(&shapes, scheme, || det(&mut s)).unwrap();
    let input = Tensor4::from_fn([1, 3, 12, 12], |_| Fx16::from_f32(det(&mut s)));
    (net, input)
}

/// A deeper VGG-prefix stack (same topology as `sim_throughput`'s batch
/// bench) — the "serve a real network" shape of the sweep.
fn vgg_prefix_cell(seed: u32) -> (FunctionalNetwork, Tensor4<Fx16>) {
    let shapes = vec![
        (
            LayerShape::conv("v1", 3, 8, 24, 24, 3, 1, 1).unwrap(),
            false,
        ),
        (LayerShape::conv("v2", 8, 8, 24, 24, 3, 1, 1).unwrap(), true),
        (
            LayerShape::conv("v3", 8, 16, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (
            LayerShape::conv("v4", 16, 16, 12, 12, 3, 1, 1).unwrap(),
            true,
        ),
    ];
    let mut s = seed;
    let net = FunctionalNetwork::random(&shapes, TransferScheme::Scnn, || det(&mut s)).unwrap();
    let input = Tensor4::from_fn([1, 3, 24, 24], |_| Fx16::from_f32(det(&mut s)));
    (net, input)
}

/// A depthwise-separable cell (stem conv → depthwise → pointwise+pool,
/// the `mobilenet-mini` miniature topology): the depthwise stage runs as
/// a grouped dense stage (one channel per filter) and the pointwise
/// stage as a conventional 1×1, so the wrapper-overhead pin also covers
/// the generalized-geometry execution paths.
fn separable_cell(seed: u32) -> (FunctionalNetwork, Tensor4<Fx16>) {
    let shapes = vec![
        (
            LayerShape::conv("stem", 3, 8, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (
            LayerShape::depthwise("dw", 8, 12, 12, 3, 1, 1).unwrap(),
            false,
        ),
        (LayerShape::conv("pw", 8, 8, 12, 12, 1, 1, 0).unwrap(), true),
    ];
    let mut s = seed;
    let net = FunctionalNetwork::random(&shapes, TransferScheme::Scnn, || det(&mut s)).unwrap();
    let input = Tensor4::from_fn([1, 3, 12, 12], |_| Fx16::from_f32(det(&mut s)));
    (net, input)
}

/// The compile-bound cell: a 4×4 ifmap under 64 SCNN filters, so the
/// request is dominated by weight-side work (compile expands all eight
/// orientations; the run needs only two) — where the compile-once split
/// pays off hardest.
fn compile_bound_cell(seed: u32) -> (FunctionalNetwork, Tensor4<Fx16>) {
    let shapes = vec![(LayerShape::conv("t", 8, 64, 4, 4, 3, 1, 0).unwrap(), false)];
    let mut s = seed;
    let net = FunctionalNetwork::random(&shapes, TransferScheme::Scnn, || det(&mut s)).unwrap();
    let input = Tensor4::from_fn([1, 8, 4, 4], |_| Fx16::from_f32(det(&mut s)));
    (net, input)
}

fn bench_engine_speedup(c: &mut Criterion) {
    let cells: Vec<(&str, bool, FunctionalNetwork, Tensor4<Fx16>)> = vec![
        {
            let (net, input) = sweep_cell(TransferScheme::DCNN4, 41);
            ("dcnn4", false, net, input)
        },
        {
            let (net, input) = sweep_cell(TransferScheme::DCNN6, 42);
            ("dcnn6", false, net, input)
        },
        {
            let (net, input) = sweep_cell(TransferScheme::Scnn, 43);
            ("scnn", false, net, input)
        },
        {
            let (net, input) = vgg_prefix_cell(44);
            ("vgg_prefix_scnn", false, net, input)
        },
        {
            let (net, input) = separable_cell(46);
            ("depthwise_separable", false, net, input)
        },
        {
            let (net, input) = compile_bound_cell(45);
            ("compile_bound_scnn", true, net, input)
        },
    ];
    let reuse = ReuseConfig::FULL;
    let mut report = BenchReport::load_or_new();
    for (label, compile_bound, net, input) in &cells {
        let engine = Engine::compile(net, reuse).unwrap();
        let mut scratch = Scratch::new();
        // Warm up both paths and pin bit-identity before timing.
        let want = net.run(input, reuse).unwrap();
        let got = engine.run(input, &mut scratch).unwrap();
        assert_eq!(got.activations, want.activations, "{label}");
        assert_eq!(got.counters, want.counters, "{label}");

        c.bench_function(&format!("cold/{label}"), |b| {
            b.iter(|| {
                let cold = net.clone();
                cold.run(black_box(input), reuse).unwrap()
            })
        });
        c.bench_function(&format!("wrapper/{label}"), |b| {
            b.iter(|| net.run(black_box(input), reuse).unwrap())
        });
        c.bench_function(&format!("engine/{label}"), |b| {
            b.iter(|| engine.run(black_box(input), &mut scratch).unwrap())
        });

        // Steady-state throughput ratios — the acceptance numbers.
        let (reps, rounds) = (8, 100);
        let cold_ips = best_ips(reps, rounds, || {
            let cold = net.clone();
            black_box(cold.run(input, reuse).unwrap());
        });
        let (wrapper_ips, engine_ips) = best_pair_ips(
            reps,
            rounds,
            || {
                black_box(net.run(input, reuse).unwrap());
            },
            || {
                black_box(engine.run(input, &mut scratch).unwrap());
            },
        );
        let speedup = wrapper_ips / cold_ips;
        let wrapper_ratio = wrapper_ips / engine_ips;
        println!(
            "engine_speedup/{label:<18} cold {cold_ips:>8.1}/s  wrapper {wrapper_ips:>8.1}/s  \
             engine {engine_ips:>8.1}/s  steady/cold x{speedup:.2}  wrapper/engine {wrapper_ratio:.3}"
        );
        if *compile_bound {
            assert!(
                speedup >= 2.0,
                "{label}: compile-once steady state must be >= 2x the cold path, got x{speedup:.2}"
            );
        }
        assert!(
            wrapper_ratio >= 0.95,
            "{label}: wrapper overhead vs direct Engine::run must be < 5%, got ratio {wrapper_ratio:.3}"
        );

        report.upsert(BenchCell {
            bench: "engine_speedup".to_owned(),
            cell: (*label).to_owned(),
            baseline: "cold".to_owned(),
            baseline_ips: cold_ips,
            current_ips: wrapper_ips,
            speedup,
            reps: u64::from(reps),
            rounds: u64::from(rounds),
        });
        report.upsert(BenchCell {
            bench: "engine_speedup".to_owned(),
            cell: format!("{label}/wrapper_vs_engine"),
            baseline: "engine".to_owned(),
            baseline_ips: engine_ips,
            current_ips: wrapper_ips,
            speedup: wrapper_ratio,
            reps: u64::from(reps),
            rounds: u64::from(rounds),
        });
    }
    report.save().expect("write perf trajectory");
    println!(
        "engine_speedup: trajectory updated at {}",
        BenchReport::path().display()
    );
}

criterion_group!(benches, bench_engine_speedup);
criterion_main!(benches);
