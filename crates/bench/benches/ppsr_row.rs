//! Microbenchmark of the PPSR row engines (Figs. 6-7): the cost of one
//! row pass with and without product reuse.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfe_sim::counters::Counters;
use tfe_sim::ppsr::{dcnn_row_pass, row_correlate, row_correlate_rev, scnn_row_pass};
use tfe_tensor::fixed::{Accum, Fx16};

fn bench_ppsr(c: &mut Criterion) {
    let meta_row: Vec<Fx16> = (0..6)
        .map(|i| Fx16::from_f32(i as f32 * 0.25 - 0.5))
        .collect();
    let input: Vec<Fx16> = (0..226)
        .map(|i| Fx16::from_f32(((i % 13) as f32 - 6.0) / 8.0))
        .collect();
    c.bench_function("dcnn_row_pass z6 k3 w226 (PPSR on)", |b| {
        b.iter(|| {
            let mut counters = Counters::new();
            dcnn_row_pass(
                black_box(&meta_row),
                black_box(&input),
                3,
                true,
                &mut counters,
            )
        })
    });
    c.bench_function("dcnn_row_pass z6 k3 w226 (PPSR off)", |b| {
        b.iter(|| {
            let mut counters = Counters::new();
            dcnn_row_pass(
                black_box(&meta_row),
                black_box(&input),
                3,
                false,
                &mut counters,
            )
        })
    });
    let base_row: Vec<Fx16> = (0..3).map(|i| Fx16::from_f32(i as f32 - 1.0)).collect();
    c.bench_function("scnn_row_pass k3 w226", |b| {
        b.iter(|| {
            let mut counters = Counters::new();
            scnn_row_pass(black_box(&base_row), black_box(&input), true, &mut counters)
        })
    });
}

/// Compares the allocation-free reversed correlation against the old
/// allocate-a-reversed-copy formulation it replaced, with the forward
/// correlation as the floor.
fn bench_row_correlate_rev(c: &mut Criterion) {
    let weights: Vec<Fx16> = (0..7)
        .map(|i| Fx16::from_f32(i as f32 * 0.125 - 0.375))
        .collect();
    let input: Vec<Fx16> = (0..226)
        .map(|i| Fx16::from_f32(((i % 13) as f32 - 6.0) / 8.0))
        .collect();
    let mut group = c.benchmark_group("row_correlate_rev");
    group.bench_function("forward (floor)", |b| {
        b.iter(|| row_correlate(black_box(&weights), black_box(&input)))
    });
    group.bench_function("reverse-indexed (current)", |b| {
        b.iter(|| row_correlate_rev(black_box(&weights), black_box(&input)))
    });
    group.bench_function("allocate-reversed-copy (old)", |b| {
        b.iter(|| -> Vec<Accum> {
            let rev: Vec<Fx16> = black_box(&weights).iter().rev().copied().collect();
            row_correlate(&rev, black_box(&input))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ppsr, bench_row_correlate_rev);
criterion_main!(benches);
