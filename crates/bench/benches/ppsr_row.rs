//! Microbenchmark of the PPSR row engines (Figs. 6-7): the cost of one
//! row pass with and without product reuse.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfe_sim::counters::Counters;
use tfe_sim::ppsr::{dcnn_row_pass, scnn_row_pass};
use tfe_tensor::fixed::Fx16;

fn bench_ppsr(c: &mut Criterion) {
    let meta_row: Vec<Fx16> = (0..6).map(|i| Fx16::from_f32(i as f32 * 0.25 - 0.5)).collect();
    let input: Vec<Fx16> = (0..226).map(|i| Fx16::from_f32(((i % 13) as f32 - 6.0) / 8.0)).collect();
    c.bench_function("dcnn_row_pass z6 k3 w226 (PPSR on)", |b| {
        b.iter(|| {
            let mut counters = Counters::new();
            dcnn_row_pass(black_box(&meta_row), black_box(&input), 3, true, &mut counters)
        })
    });
    c.bench_function("dcnn_row_pass z6 k3 w226 (PPSR off)", |b| {
        b.iter(|| {
            let mut counters = Counters::new();
            dcnn_row_pass(black_box(&meta_row), black_box(&input), 3, false, &mut counters)
        })
    });
    let base_row: Vec<Fx16> = (0..3).map(|i| Fx16::from_f32(i as f32 - 1.0)).collect();
    c.bench_function("scnn_row_pass k3 w226", |b| {
        b.iter(|| {
            let mut counters = Counters::new();
            scnn_row_pass(black_box(&base_row), black_box(&input), true, &mut counters)
        })
    });
}

criterion_group!(benches, bench_ppsr);
criterion_main!(benches);
