//! Microbenchmark of the PPSR row engines (Figs. 6-7): the cost of one
//! row pass with and without product reuse, plus the acceptance cells
//! pinning the monomorphized row kernels (DESIGN §5.10) against the
//! frozen scalar reference.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfe_bench::report::{BenchCell, BenchReport};
use tfe_bench::timing::best_pair_ips;
use tfe_sim::counters::Counters;
use tfe_sim::ppsr::{
    conventional_row_pass_acc, conventional_row_pass_acc_scalar, dcnn_row_pass, dcnn_row_pass_acc,
    dcnn_row_pass_acc_scalar, row_correlate, row_correlate_rev, scnn_row_pass, scnn_row_pass_acc,
    scnn_row_pass_acc_scalar,
};
use tfe_tensor::fixed::{Accum, Fx16};

fn bench_ppsr(c: &mut Criterion) {
    let meta_row: Vec<Fx16> = (0..6)
        .map(|i| Fx16::from_f32(i as f32 * 0.25 - 0.5))
        .collect();
    let input: Vec<Fx16> = (0..226)
        .map(|i| Fx16::from_f32(((i % 13) as f32 - 6.0) / 8.0))
        .collect();
    c.bench_function("dcnn_row_pass z6 k3 w226 (PPSR on)", |b| {
        b.iter(|| {
            let mut counters = Counters::new();
            dcnn_row_pass(
                black_box(&meta_row),
                black_box(&input),
                3,
                true,
                &mut counters,
            )
        })
    });
    c.bench_function("dcnn_row_pass z6 k3 w226 (PPSR off)", |b| {
        b.iter(|| {
            let mut counters = Counters::new();
            dcnn_row_pass(
                black_box(&meta_row),
                black_box(&input),
                3,
                false,
                &mut counters,
            )
        })
    });
    let base_row: Vec<Fx16> = (0..3).map(|i| Fx16::from_f32(i as f32 - 1.0)).collect();
    c.bench_function("scnn_row_pass k3 w226", |b| {
        b.iter(|| {
            let mut counters = Counters::new();
            scnn_row_pass(black_box(&base_row), black_box(&input), true, &mut counters)
        })
    });
}

/// Compares the allocation-free reversed correlation against the old
/// allocate-a-reversed-copy formulation it replaced, with the forward
/// correlation as the floor.
fn bench_row_correlate_rev(c: &mut Criterion) {
    let weights: Vec<Fx16> = (0..7)
        .map(|i| Fx16::from_f32(i as f32 * 0.125 - 0.375))
        .collect();
    let input: Vec<Fx16> = (0..226)
        .map(|i| Fx16::from_f32(((i % 13) as f32 - 6.0) / 8.0))
        .collect();
    let mut group = c.benchmark_group("row_correlate_rev");
    group.bench_function("forward (floor)", |b| {
        b.iter(|| row_correlate(black_box(&weights), black_box(&input)))
    });
    group.bench_function("reverse-indexed (current)", |b| {
        b.iter(|| row_correlate_rev(black_box(&weights), black_box(&input)))
    });
    group.bench_function("allocate-reversed-copy (old)", |b| {
        b.iter(|| -> Vec<Accum> {
            let rev: Vec<Fx16> = black_box(&weights).iter().rev().copied().collect();
            row_correlate(&rev, black_box(&input))
        })
    });
    group.finish();
}

/// Records one monomorphized-vs-scalar cell in the perf trajectory and,
/// when `min_speedup` is set, asserts the fast path clears it.
#[allow(clippy::too_many_arguments)]
fn record_kernel_cell(
    report: &mut BenchReport,
    cell: &str,
    fast_ips: f64,
    scalar_ips: f64,
    reps: u32,
    rounds: u32,
    min_speedup: Option<f64>,
) {
    let speedup = fast_ips / scalar_ips;
    println!(
        "ppsr_row/{cell:<24} scalar {scalar_ips:>10.1}/s  monomorphized {fast_ips:>10.1}/s  x{speedup:.2}"
    );
    if let Some(min) = min_speedup {
        assert!(
            speedup >= min,
            "{cell}: monomorphized kernel must be >= {min}x the scalar reference, got x{speedup:.2}"
        );
    }
    report.upsert(BenchCell {
        bench: "ppsr_row".to_owned(),
        cell: cell.to_owned(),
        baseline: "scalar".to_owned(),
        baseline_ips: scalar_ips,
        current_ips: fast_ips,
        speedup,
        reps: u64::from(reps),
        rounds: u64::from(rounds),
    });
}

/// The tentpole acceptance cells: monomorphized row kernels vs the
/// frozen scalar reference, one K = 3 dense (conventional) row, one
/// DCNN z6/k3 meta row, and one SCNN mirrored row, all over the same
/// 226-wide input the Criterion cells above use.
///
/// Bit-identity — activations AND counters — is asserted before any
/// timing (saturating `Accum` addition is order-sensitive, so identity
/// proves addition order, not just the sum), then interleaved
/// min-of-reps timing pins the dense and DCNN cells at >= 1.25x and
/// records all three in the `BENCH_*.json` trajectory.
fn bench_monomorphized_kernels(c: &mut Criterion) {
    let weights: Vec<Fx16> = (0..3)
        .map(|i| Fx16::from_f32(i as f32 * 0.25 - 0.25))
        .collect();
    let meta_row: Vec<Fx16> = (0..6)
        .map(|i| Fx16::from_f32(i as f32 * 0.25 - 0.5))
        .collect();
    let input: Vec<Fx16> = (0..226)
        .map(|i| Fx16::from_f32(((i % 13) as f32 - 6.0) / 8.0))
        .collect();
    let out_len = input.len() + 1 - 3;
    let lanes = meta_row.len() - 3 + 1;

    let mut report = BenchReport::load_or_new();
    let (reps, rounds) = (9u32, 4096u32);

    // --- conventional (dense) K = 3 ---
    {
        let mut fast = vec![Accum::ZERO; out_len];
        let mut slow = vec![Accum::ZERO; out_len];
        let (mut cf, mut cs) = (Counters::new(), Counters::new());
        conventional_row_pass_acc(&weights, &input, &mut fast, &mut cf);
        conventional_row_pass_acc_scalar(&weights, &input, &mut slow, &mut cs);
        assert_eq!(fast, slow, "conventional k3: values diverge");
        assert_eq!(cf, cs, "conventional k3: counters diverge");

        c.bench_function("conventional_row_pass_acc k3 w226 (monomorphized)", |b| {
            b.iter(|| {
                let mut counters = Counters::new();
                conventional_row_pass_acc(
                    black_box(&weights),
                    black_box(&input),
                    &mut fast,
                    &mut counters,
                );
            })
        });
        c.bench_function("conventional_row_pass_acc k3 w226 (scalar)", |b| {
            b.iter(|| {
                let mut counters = Counters::new();
                conventional_row_pass_acc_scalar(
                    black_box(&weights),
                    black_box(&input),
                    &mut slow,
                    &mut counters,
                );
            })
        });

        let (fast_ips, scalar_ips) = best_pair_ips(
            reps,
            rounds,
            || {
                conventional_row_pass_acc(
                    black_box(&weights),
                    black_box(&input),
                    &mut fast,
                    &mut cf,
                );
            },
            || {
                conventional_row_pass_acc_scalar(
                    black_box(&weights),
                    black_box(&input),
                    &mut slow,
                    &mut cs,
                );
            },
        );
        record_kernel_cell(
            &mut report,
            "conventional_k3_w226",
            fast_ips,
            scalar_ips,
            reps,
            rounds,
            Some(1.25),
        );
    }

    // --- DCNN z = 6, K = 3, PPSR on ---
    {
        let mut fast = vec![vec![Accum::ZERO; out_len]; lanes];
        let mut slow = vec![vec![Accum::ZERO; out_len]; lanes];
        let (mut cf, mut cs) = (Counters::new(), Counters::new());
        dcnn_row_pass_acc(&meta_row, &input, 3, true, &mut fast, &mut cf);
        dcnn_row_pass_acc_scalar(&meta_row, &input, 3, true, &mut slow, &mut cs);
        assert_eq!(fast, slow, "dcnn z6 k3: values diverge");
        assert_eq!(cf, cs, "dcnn z6 k3: counters diverge");

        let (fast_ips, scalar_ips) = best_pair_ips(
            reps,
            rounds,
            || {
                dcnn_row_pass_acc(
                    black_box(&meta_row),
                    black_box(&input),
                    3,
                    true,
                    &mut fast,
                    &mut cf,
                );
            },
            || {
                dcnn_row_pass_acc_scalar(
                    black_box(&meta_row),
                    black_box(&input),
                    3,
                    true,
                    &mut slow,
                    &mut cs,
                );
            },
        );
        record_kernel_cell(
            &mut report,
            "dcnn_z6_k3_w226",
            fast_ips,
            scalar_ips,
            reps,
            rounds,
            Some(1.25),
        );
    }

    // --- SCNN K = 3, mirrored stream on (recorded, not pinned: the
    // reversed stream shares most of its cost between both sides) ---
    {
        let mut fast_f = vec![Accum::ZERO; out_len];
        let mut fast_r = vec![Accum::ZERO; out_len];
        let mut slow_f = vec![Accum::ZERO; out_len];
        let mut slow_r = vec![Accum::ZERO; out_len];
        let (mut cf, mut cs) = (Counters::new(), Counters::new());
        scnn_row_pass_acc(
            &weights,
            &input,
            true,
            &mut fast_f,
            Some(fast_r.as_mut_slice()),
            &mut cf,
        );
        scnn_row_pass_acc_scalar(
            &weights,
            &input,
            true,
            &mut slow_f,
            Some(slow_r.as_mut_slice()),
            &mut cs,
        );
        assert_eq!(fast_f, slow_f, "scnn k3: forward values diverge");
        assert_eq!(fast_r, slow_r, "scnn k3: mirrored values diverge");
        assert_eq!(cf, cs, "scnn k3: counters diverge");

        let (fast_ips, scalar_ips) = best_pair_ips(
            reps,
            rounds,
            || {
                scnn_row_pass_acc(
                    black_box(&weights),
                    black_box(&input),
                    true,
                    &mut fast_f,
                    Some(fast_r.as_mut_slice()),
                    &mut cf,
                );
            },
            || {
                scnn_row_pass_acc_scalar(
                    black_box(&weights),
                    black_box(&input),
                    true,
                    &mut slow_f,
                    Some(slow_r.as_mut_slice()),
                    &mut cs,
                );
            },
        );
        record_kernel_cell(
            &mut report,
            "scnn_k3_w226",
            fast_ips,
            scalar_ips,
            reps,
            rounds,
            None,
        );
    }

    report.save().expect("write perf trajectory");
    println!(
        "ppsr_row: trajectory updated at {}",
        BenchReport::path().display()
    );
}

criterion_group!(
    benches,
    bench_ppsr,
    bench_row_correlate_rev,
    bench_monomorphized_kernels
);
criterion_main!(benches);
