//! Microbenchmarks of the reference convolution kernels: dense f32,
//! fixed-point, and convolution with an expanded transferred bank.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfe_tensor::conv::{conv2d_f32, conv2d_fx};
use tfe_tensor::fixed::Fx16;
use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;
use tfe_transfer::layer::TransferredLayer;
use tfe_transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

fn bench_conv(c: &mut Criterion) {
    let shape = LayerShape::conv("bench", 16, 16, 32, 32, 3, 1, 1).unwrap();
    let mut seed = 1;
    let input = Tensor4::from_fn([1, 16, 32, 32], |_| det(&mut seed));
    let weights = Tensor4::from_fn([16, 16, 3, 3], |_| det(&mut seed));
    c.bench_function("conv2d_f32 16x32x32 k3", |b| {
        b.iter(|| conv2d_f32(black_box(&input), black_box(&weights), None, &shape).unwrap())
    });

    let qinput = input.map(Fx16::from_f32);
    let qweights = weights.map(Fx16::from_f32);
    c.bench_function("conv2d_fx 16x32x32 k3", |b| {
        b.iter(|| conv2d_fx(black_box(&qinput), black_box(&qweights), &shape).unwrap())
    });

    let mut seed2 = 7;
    let layer = TransferredLayer::random(&shape, TransferScheme::Scnn, || det(&mut seed2)).unwrap();
    c.bench_function("scnn expand_to_dense 16 filters", |b| {
        b.iter(|| black_box(&layer).expand_to_dense().unwrap())
    });

    // Baseline kernels: Winograd F(2x2,3x3) and 50%-pruned sparse conv.
    c.bench_function("winograd F(2x2,3x3) 16x32x32", |b| {
        b.iter(|| {
            tfe_baselines::winograd_kernel::winograd_conv2d(
                black_box(&input),
                black_box(&weights),
                &shape,
            )
            .unwrap()
        })
    });
    let bank = tfe_baselines::sparse_kernel::SparseFilterBank::prune(&weights, 0.5).unwrap();
    c.bench_function("sparse conv 50% pruned 16x32x32", |b| {
        b.iter(|| bank.conv(black_box(&input), &shape).unwrap())
    });

    // GEMM-lowered reference.
    c.bench_function("conv2d_im2col 16x32x32 k3", |b| {
        b.iter(|| {
            tfe_tensor::im2col::conv2d_im2col(black_box(&input), black_box(&weights), &shape)
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_conv);
criterion_main!(benches);
