//! Reference convolution — the golden model.
//!
//! The functions here compute convolution the slow, obviously-correct way
//! (direct seven-loop nest). Every optimized path in the workspace — the
//! transferred-filter expansion in `tfe-transfer`, the TFE functional
//! simulator in `tfe-sim` — is validated against these.
//!
//! Two element domains are supported: `f32` (used by the training
//! substrate) and the fixed-point [`Fx16`] datapath
//! format (used by the hardware model). The fixed-point variant accumulates
//! in the widened [`Accum`] domain exactly as the
//! hardware does, so the simulator can be checked bit-exactly.

use crate::fixed::{Accum, Fx16};
use crate::shape::LayerShape;
use crate::tensor::Tensor4;
use crate::TensorError;

fn check_operands<T>(
    input: &Tensor4<T>,
    weights: &Tensor4<T>,
    bias_len: Option<usize>,
    shape: &LayerShape,
) -> Result<(), TensorError>
where
    T: Copy,
{
    let [_, ic, ih, iw] = input.dims();
    let [m, wc, kh, kw] = weights.dims();
    let expect = |what, expected, actual| {
        if expected == actual {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch {
                what,
                expected,
                actual,
            })
        }
    };
    expect("input channels", shape.n(), ic)?;
    expect("input height", shape.h(), ih)?;
    expect("input width", shape.w(), iw)?;
    expect("filter count", shape.m(), m)?;
    // Grouped/depthwise filters store only their group's channels.
    expect("weight channels", shape.channels_per_group(), wc)?;
    expect("filter height", shape.k(), kh)?;
    expect("filter width", shape.k(), kw)?;
    if let Some(len) = bias_len {
        expect("bias length", shape.m(), len)?;
    }
    Ok(())
}

/// Direct 2-D convolution over `f32` data.
///
/// `input` is `[batch, N, H, W]`, `weights` is `[M, N/groups, K, K]`
/// (`[M, 1, K, K]` for depth-wise layers), `bias` is an optional
/// per-filter offset. Returns `[batch, M, E, F]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the operands disagree with
/// `shape`.
pub fn conv2d_f32(
    input: &Tensor4<f32>,
    weights: &Tensor4<f32>,
    bias: Option<&[f32]>,
    shape: &LayerShape,
) -> Result<Tensor4<f32>, TensorError> {
    check_operands(input, weights, bias.map(<[f32]>::len), shape)?;
    let [batch, in_c, in_h, in_w] = input.dims();
    let w_ch = weights.dims()[1];
    let (e, f, k, m_count) = (shape.e(), shape.f(), shape.k(), shape.m());
    let (stride, pad) = (shape.stride(), shape.pad());
    let dilation = shape.dilation();
    let (cpg, mpg) = (shape.channels_per_group(), shape.filters_per_group());
    let in_data = input.as_slice();
    let w_data = weights.as_slice();
    let mut out = Tensor4::zeros([batch, m_count, e, f]);
    let out_data = out.as_mut_slice();
    // (ky, iy) taps inside the input for the current output row — they
    // depend on oy only, so they are rebuilt once per row, not per pixel.
    let mut row_taps: Vec<(usize, usize)> = Vec::with_capacity(k);
    for b in 0..batch {
        for m in 0..m_count {
            let bias_m = bias.map_or(0.0, |b| b[m]);
            // Filter m reads only its group's channel band.
            let c0 = (m / mpg) * cpg;
            let channels = c0..c0 + cpg;
            for oy in 0..e {
                row_taps.clear();
                for ky in 0..k {
                    let iy = (oy * stride + ky * dilation) as isize - pad as isize;
                    if iy >= 0 && iy < in_h as isize {
                        row_taps.push((ky, iy as usize));
                    }
                }
                let out_row = &mut out_data[((b * m_count + m) * e + oy) * f..][..f];
                for (ox, slot) in out_row.iter_mut().enumerate() {
                    let mut acc = bias_m;
                    for c in channels.clone() {
                        let wc = c - c0;
                        for &(ky, iy) in &row_taps {
                            let in_row = &in_data[((b * in_c + c) * in_h + iy) * in_w..][..in_w];
                            let w_row = &w_data[((m * w_ch + wc) * k + ky) * k..][..k];
                            for (kx, &wv) in w_row.iter().enumerate() {
                                let ix = (ox * stride + kx * dilation) as isize - pad as isize;
                                if ix < 0 || ix >= in_w as isize {
                                    continue;
                                }
                                acc += in_row[ix as usize] * wv;
                            }
                        }
                    }
                    *slot = acc;
                }
            }
        }
    }
    Ok(out)
}

/// Direct 2-D convolution over Q8.8 fixed-point data, accumulating in the
/// widened [`Accum`] domain exactly as the TFE datapath does.
///
/// The returned tensor holds full-precision accumulators; quantize with
/// [`Accum::to_sample`] at the point the hardware would (after the output
/// memory system's adder trees).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the operands disagree with
/// `shape`.
pub fn conv2d_fx(
    input: &Tensor4<Fx16>,
    weights: &Tensor4<Fx16>,
    shape: &LayerShape,
) -> Result<Tensor4<Accum>, TensorError> {
    check_operands(input, weights, None, shape)?;
    let [batch, in_c, in_h, in_w] = input.dims();
    let w_ch = weights.dims()[1];
    let (e, f, k, m_count) = (shape.e(), shape.f(), shape.k(), shape.m());
    let (stride, pad) = (shape.stride(), shape.pad());
    let dilation = shape.dilation();
    let (cpg, mpg) = (shape.channels_per_group(), shape.filters_per_group());
    let in_data = input.as_slice();
    let w_data = weights.as_slice();
    let mut out = Tensor4::zeros([batch, m_count, e, f]);
    let out_data = out.as_mut_slice();
    // The accumulation order below (c → ky → kx, border taps skipped) is
    // load-bearing: [`Accum`] addition saturates, so every consumer that
    // checks bit-exactness against this oracle preserves the same order.
    let mut row_taps: Vec<(usize, usize)> = Vec::with_capacity(k);
    for b in 0..batch {
        for m in 0..m_count {
            let c0 = (m / mpg) * cpg;
            let channels = c0..c0 + cpg;
            for oy in 0..e {
                row_taps.clear();
                for ky in 0..k {
                    let iy = (oy * stride + ky * dilation) as isize - pad as isize;
                    if iy >= 0 && iy < in_h as isize {
                        row_taps.push((ky, iy as usize));
                    }
                }
                let out_row = &mut out_data[((b * m_count + m) * e + oy) * f..][..f];
                for (ox, slot) in out_row.iter_mut().enumerate() {
                    let mut acc = Accum::ZERO;
                    for c in channels.clone() {
                        let wc = c - c0;
                        for &(ky, iy) in &row_taps {
                            let in_row = &in_data[((b * in_c + c) * in_h + iy) * in_w..][..in_w];
                            let w_row = &w_data[((m * w_ch + wc) * k + ky) * k..][..k];
                            for (kx, &wv) in w_row.iter().enumerate() {
                                let ix = (ox * stride + kx * dilation) as isize - pad as isize;
                                if ix < 0 || ix >= in_w as isize {
                                    continue;
                                }
                                acc += in_row[ix as usize].widening_mul(wv);
                            }
                        }
                    }
                    *slot = acc;
                }
            }
        }
    }
    Ok(out)
}

/// Fully connected layer as a matrix–vector product, the reference for the
/// paper's CONV-style FC execution.
///
/// `input` is `[batch, inputs, 1, 1]`, `weights` is `[outputs, inputs, 1, 1]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if operand shapes disagree.
pub fn fully_connected_f32(
    input: &Tensor4<f32>,
    weights: &Tensor4<f32>,
    bias: Option<&[f32]>,
    shape: &LayerShape,
) -> Result<Tensor4<f32>, TensorError> {
    conv2d_f32(input, weights, bias, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_shape() -> LayerShape {
        LayerShape::conv("t", 2, 3, 5, 5, 3, 1, 1).unwrap()
    }

    #[test]
    fn identity_filter_reproduces_input() {
        // A single 3x3 filter with 1 at the centre and pad=1 copies the input.
        let shape = LayerShape::conv("id", 1, 1, 4, 4, 3, 1, 1).unwrap();
        let input = Tensor4::from_fn([1, 1, 4, 4], |[_, _, y, x]| (y * 4 + x) as f32);
        let mut w = Tensor4::zeros([1, 1, 3, 3]);
        w.set([0, 0, 1, 1], 1.0);
        let out = conv2d_f32(&input, &w, None, &shape).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn all_ones_counts_window_coverage() {
        // With ones everywhere the output equals the number of valid taps.
        let shape = LayerShape::conv("ones", 1, 1, 3, 3, 3, 1, 1).unwrap();
        let input = Tensor4::filled([1, 1, 3, 3], 1.0f32);
        let w = Tensor4::filled([1, 1, 3, 3], 1.0f32);
        let out = conv2d_f32(&input, &w, None, &shape).unwrap();
        assert_eq!(out.get([0, 0, 1, 1]), 9.0); // centre: full window
        assert_eq!(out.get([0, 0, 0, 0]), 4.0); // corner: 2x2 valid
        assert_eq!(out.get([0, 0, 0, 1]), 6.0); // edge: 2x3 valid
    }

    #[test]
    fn bias_is_added_per_filter() {
        let shape = LayerShape::conv("b", 1, 2, 2, 2, 1, 1, 0).unwrap();
        let input = Tensor4::filled([1, 1, 2, 2], 0.0f32);
        let w = Tensor4::filled([2, 1, 1, 1], 1.0f32);
        let out = conv2d_f32(&input, &w, Some(&[0.5, -1.0]), &shape).unwrap();
        assert_eq!(out.get([0, 0, 0, 0]), 0.5);
        assert_eq!(out.get([0, 1, 1, 1]), -1.0);
    }

    #[test]
    fn stride_two_subsamples() {
        let shape = LayerShape::conv("s2", 1, 1, 4, 4, 1, 2, 0).unwrap();
        let input = Tensor4::from_fn([1, 1, 4, 4], |[_, _, y, x]| (y * 4 + x) as f32);
        let w = Tensor4::filled([1, 1, 1, 1], 1.0f32);
        let out = conv2d_f32(&input, &w, None, &shape).unwrap();
        assert_eq!(out.dims(), [1, 1, 2, 2]);
        assert_eq!(out.get([0, 0, 0, 0]), 0.0);
        assert_eq!(out.get([0, 0, 0, 1]), 2.0);
        assert_eq!(out.get([0, 0, 1, 0]), 8.0);
        assert_eq!(out.get([0, 0, 1, 1]), 10.0);
    }

    #[test]
    fn multi_channel_sums_over_channels() {
        let shape = LayerShape::conv("mc", 3, 1, 2, 2, 1, 1, 0).unwrap();
        let input = Tensor4::from_fn([1, 3, 2, 2], |[_, c, _, _]| (c + 1) as f32);
        let w = Tensor4::filled([1, 3, 1, 1], 1.0f32);
        let out = conv2d_f32(&input, &w, None, &shape).unwrap();
        assert_eq!(out.get([0, 0, 0, 0]), 6.0);
    }

    #[test]
    fn depthwise_keeps_channels_separate() {
        let shape = LayerShape::depthwise("dw", 2, 3, 3, 3, 1, 1).unwrap();
        let input = Tensor4::from_fn([1, 2, 3, 3], |[_, c, _, _]| (c + 1) as f32);
        let w = Tensor4::filled([2, 1, 3, 3], 1.0f32);
        let out = conv2d_f32(&input, &w, None, &shape).unwrap();
        // Centre output of channel c = 9 * (c+1).
        assert_eq!(out.get([0, 0, 1, 1]), 9.0);
        assert_eq!(out.get([0, 1, 1, 1]), 18.0);
    }

    #[test]
    fn fixed_point_matches_f32_for_representable_values() {
        let shape = small_shape();
        let input = Tensor4::from_fn([1, 2, 5, 5], |[_, c, y, x]| {
            (c as f32 + y as f32 - x as f32) * 0.25
        });
        let weights = Tensor4::from_fn([3, 2, 3, 3], |[m, c, y, x]| {
            (m as f32 - c as f32 + y as f32 * x as f32) * 0.125
        });
        let fout = conv2d_f32(&input, &weights, None, &shape).unwrap();
        let qout = conv2d_fx(
            &input.map(Fx16::from_f32),
            &weights.map(Fx16::from_f32),
            &shape,
        )
        .unwrap();
        for (idx, v) in fout.indexed_iter() {
            assert!(
                (qout.get(idx).to_f32() - v).abs() < 1e-4,
                "mismatch at {idx:?}: {} vs {v}",
                qout.get(idx).to_f32()
            );
        }
    }

    #[test]
    fn mismatched_weights_rejected() {
        let shape = small_shape();
        let input = Tensor4::zeros([1, 2, 5, 5]);
        let weights = Tensor4::<f32>::zeros([3, 2, 5, 5]); // wrong K
        let err = conv2d_f32(&input, &weights, None, &shape).unwrap_err();
        assert!(matches!(
            err,
            TensorError::ShapeMismatch {
                what: "filter height",
                ..
            }
        ));
    }

    #[test]
    fn fully_connected_is_matvec() {
        let shape = LayerShape::fully_connected("fc", 3, 2).unwrap();
        let input = Tensor4::from_vec([1, 3, 1, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let weights = Tensor4::from_vec([2, 3, 1, 1], vec![1.0, 0.0, 0.0, 0.5, 0.5, 0.5]).unwrap();
        let out = fully_connected_f32(&input, &weights, None, &shape).unwrap();
        assert_eq!(out.get([0, 0, 0, 0]), 1.0);
        assert_eq!(out.get([0, 1, 0, 0]), 3.0);
    }

    #[test]
    fn dilated_convolution_samples_spread_taps() {
        // Dilation 2: each 3-tap axis reads positions t, t+2, t+4.
        let shape = LayerShape::conv("dil", 1, 1, 5, 5, 3, 1, 0)
            .unwrap()
            .with_dilation(2)
            .unwrap();
        assert_eq!(shape.e(), 1);
        let input = Tensor4::from_fn([1, 1, 5, 5], |[_, _, y, x]| (y * 5 + x) as f32);
        let w = Tensor4::filled([1, 1, 3, 3], 1.0f32);
        let out = conv2d_f32(&input, &w, None, &shape).unwrap();
        // Taps at rows/cols {0, 2, 4}: sum of those 9 entries.
        let expected: f32 = [0, 2, 4]
            .iter()
            .flat_map(|&y| [0, 2, 4].iter().map(move |&x| (y * 5 + x) as f32))
            .sum();
        assert_eq!(out.get([0, 0, 0, 0]), expected);
    }

    #[test]
    fn grouped_convolution_reads_only_its_channel_band() {
        // 4 input channels, 2 groups, 2 filters (one per group): filter 0
        // sums channels {0,1}, filter 1 sums channels {2,3}.
        let shape = LayerShape::conv("g", 4, 2, 2, 2, 1, 1, 0)
            .unwrap()
            .with_groups(2)
            .unwrap();
        let input = Tensor4::from_fn([1, 4, 2, 2], |[_, c, _, _]| (c + 1) as f32);
        let w = Tensor4::filled([2, 2, 1, 1], 1.0f32);
        let out = conv2d_f32(&input, &w, None, &shape).unwrap();
        assert_eq!(out.get([0, 0, 0, 0]), 1.0 + 2.0);
        assert_eq!(out.get([0, 1, 0, 0]), 3.0 + 4.0);
        // Fixed-point agrees.
        let qout = conv2d_fx(&input.map(Fx16::from_f32), &w.map(Fx16::from_f32), &shape).unwrap();
        assert_eq!(qout.get([0, 0, 0, 0]).to_sample().to_f32(), 3.0);
        assert_eq!(qout.get([0, 1, 0, 0]).to_sample().to_f32(), 7.0);
    }

    #[test]
    fn grouped_weights_with_full_channels_rejected() {
        // Grouped shapes expect [M, N/groups, K, K] weights.
        let shape = LayerShape::conv("g", 4, 2, 2, 2, 1, 1, 0)
            .unwrap()
            .with_groups(2)
            .unwrap();
        let input = Tensor4::<f32>::zeros([1, 4, 2, 2]);
        let w = Tensor4::zeros([2, 4, 1, 1]);
        assert!(matches!(
            conv2d_f32(&input, &w, None, &shape),
            Err(TensorError::ShapeMismatch {
                what: "weight channels",
                ..
            })
        ));
    }

    #[test]
    fn batch_dimension_is_independent() {
        let shape = LayerShape::conv("b2", 1, 1, 2, 2, 1, 1, 0).unwrap();
        let input = Tensor4::from_fn([2, 1, 2, 2], |[n, _, _, _]| (n + 1) as f32);
        let w = Tensor4::filled([1, 1, 1, 1], 2.0f32);
        let out = conv2d_f32(&input, &w, None, &shape).unwrap();
        assert_eq!(out.get([0, 0, 0, 0]), 2.0);
        assert_eq!(out.get([1, 0, 0, 0]), 4.0);
    }
}

/// Hyperparameters of a transposed convolution ("deconvolution") — the
/// other canonical-conv variant the paper's transfer algorithms cover
/// (Section I). Deconvolution inputs may be *smaller* than the filter,
/// so it carries its own parameter set instead of a [`LayerShape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeconvSpec {
    /// Input channels.
    pub n: usize,
    /// Output channels.
    pub m: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Square filter extent.
    pub k: usize,
    /// Upsampling stride.
    pub stride: usize,
    /// Output cropping (the forward conv's padding).
    pub pad: usize,
}

impl DeconvSpec {
    /// Output extent per axis: `(in − 1) × stride − 2 × pad + K`.
    #[must_use]
    pub fn out_h(&self) -> usize {
        deconv_out_extent(self.h, self.k, self.stride, self.pad)
    }

    /// Output extent per axis (width).
    #[must_use]
    pub fn out_w(&self) -> usize {
        deconv_out_extent(self.w, self.k, self.stride, self.pad)
    }
}

/// Transposed convolution, implemented the textbook way: the input is
/// zero-dilated by `stride` (inserting `stride − 1` zeros between
/// elements), padded with `K − 1 − pad` on each border, and convolved at
/// unit stride with the *spatially flipped* filters.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if operands disagree with
/// `spec`, and [`TensorError::InvalidDimension`] if any extent is zero or
/// the padding exceeds `K − 1` (which would make the output extent
/// undefined).
pub fn deconv2d_f32(
    input: &Tensor4<f32>,
    weights: &Tensor4<f32>,
    spec: &DeconvSpec,
) -> Result<Tensor4<f32>, TensorError> {
    let (k, stride, pad) = (spec.k, spec.stride, spec.pad);
    for (what, value) in [
        ("deconv channels", spec.n.min(spec.m)),
        ("deconv input extent", spec.h.min(spec.w)),
        ("deconv filter extent", k),
        ("deconv stride", stride),
    ] {
        if value == 0 {
            return Err(TensorError::InvalidDimension { what, value });
        }
    }
    if pad > k - 1 {
        return Err(TensorError::InvalidDimension {
            what: "deconvolution padding (must be <= K-1)",
            value: pad,
        });
    }
    for (what, expected, actual) in [
        ("deconv input dims", spec.n, input.dims()[1]),
        ("deconv input height", spec.h, input.dims()[2]),
        ("deconv input width", spec.w, input.dims()[3]),
        ("deconv filter count", spec.m, weights.dims()[0]),
        ("deconv filter channels", spec.n, weights.dims()[1]),
        ("deconv filter extent", k, weights.dims()[2]),
    ] {
        if expected != actual {
            return Err(TensorError::ShapeMismatch {
                what,
                expected,
                actual,
            });
        }
    }
    let batch = input.dims()[0];
    let (h, w) = (spec.h, spec.w);
    // Zero-dilated, border-padded input.
    let border = k - 1 - pad;
    let up_h = (h - 1) * stride + 1 + 2 * border;
    let up_w = (w - 1) * stride + 1 + 2 * border;
    let mut upsampled = Tensor4::zeros([batch, spec.n, up_h, up_w]);
    for b in 0..batch {
        for c in 0..spec.n {
            for y in 0..h {
                for x in 0..w {
                    upsampled.set(
                        [b, c, border + y * stride, border + x * stride],
                        input.get([b, c, y, x]),
                    );
                }
            }
        }
    }
    // Flipped filters (we keep the [M, N, K, K] layout and flip taps).
    let flipped = Tensor4::from_fn([spec.m, spec.n, k, k], |[m, c, y, x]| {
        weights.get([m, c, k - 1 - y, k - 1 - x])
    });
    let conv_shape = LayerShape::conv("deconv-inner", spec.n, spec.m, up_h, up_w, k, 1, 0)?;
    conv2d_f32(&upsampled, &flipped, None, &conv_shape)
}

/// Output extent of [`deconv2d_f32`] per axis:
/// `(in − 1) × stride − 2 × pad + K`.
#[must_use]
pub fn deconv_out_extent(input: usize, k: usize, stride: usize, pad: usize) -> usize {
    (input - 1) * stride + k - 2 * pad
}

#[cfg(test)]
mod deconv_tests {
    use super::*;

    fn spec(n: usize, m: usize, hw: usize, k: usize, stride: usize, pad: usize) -> DeconvSpec {
        DeconvSpec {
            n,
            m,
            h: hw,
            w: hw,
            k,
            stride,
            pad,
        }
    }

    #[test]
    fn unit_stride_deconv_is_full_correlation() {
        // stride 1, pad 0: output extent = in + k - 1 (full convolution).
        let input = Tensor4::from_fn([1, 1, 3, 3], |[_, _, y, x]| (y * 3 + x) as f32);
        let w = Tensor4::filled([1, 1, 3, 3], 1.0f32);
        let out = deconv2d_f32(&input, &w, &spec(1, 1, 3, 3, 1, 0)).unwrap();
        assert_eq!(out.dims(), [1, 1, 5, 5]);
        // Centre sees the whole input: sum 0..9 = 36.
        assert_eq!(out.get([0, 0, 2, 2]), 36.0);
        // Corner sees only input (0,0).
        assert_eq!(out.get([0, 0, 0, 0]), 0.0);
        assert_eq!(out.get([0, 0, 4, 4]), 8.0);
    }

    #[test]
    fn stride_two_upsamples() {
        // The classic 2x upsampling deconvolution.
        let input = Tensor4::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let w = Tensor4::filled([1, 1, 2, 2], 1.0f32);
        let out = deconv2d_f32(&input, &w, &spec(1, 1, 2, 2, 2, 0)).unwrap();
        assert_eq!(out.dims(), [1, 1, 4, 4]);
        assert_eq!(out.dims()[2], deconv_out_extent(2, 2, 2, 0));
        // Non-overlapping 2x2 blocks each replicate one input value.
        assert_eq!(out.get([0, 0, 0, 0]), 1.0);
        assert_eq!(out.get([0, 0, 0, 3]), 2.0);
        assert_eq!(out.get([0, 0, 3, 0]), 3.0);
        assert_eq!(out.get([0, 0, 3, 3]), 4.0);
    }

    #[test]
    fn deconv_adjoint_of_conv() {
        // <conv(x), y> == <x, deconv(y)> — the defining adjoint property,
        // for a stride-2 pair on random data.
        let fwd = LayerShape::conv("f", 1, 1, 5, 5, 3, 2, 0).unwrap();
        let mut seed = 3u32;
        let mut det = move || {
            seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
            ((seed >> 16) as f32 / 65536.0) - 0.5
        };
        let x = Tensor4::from_fn([1, 1, 5, 5], |_| det());
        let w = Tensor4::from_fn([1, 1, 3, 3], |_| det());
        let conv_x = conv2d_f32(&x, &w, None, &fwd).unwrap(); // 2x2
        let y = Tensor4::from_fn([1, 1, 2, 2], |_| det());
        // Deconv: input extent 2, stride 2, pad 0, k 3 -> output 5.
        let deconv_y = deconv2d_f32(&y, &w, &spec(1, 1, 2, 3, 2, 0)).unwrap();
        assert_eq!(deconv_y.dims(), [1, 1, 5, 5]);
        let lhs: f32 = conv_x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(deconv_y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn excessive_padding_rejected() {
        // pad = 2 > K - 1 = 1 leaves no defined output extent.
        let input = Tensor4::zeros([1, 1, 4, 4]);
        let w = Tensor4::zeros([1, 1, 2, 2]);
        assert!(matches!(
            deconv2d_f32(&input, &w, &spec(1, 1, 4, 2, 1, 2)),
            Err(TensorError::InvalidDimension { .. })
        ));
    }

    #[test]
    fn operand_mismatch_rejected() {
        let input = Tensor4::<f32>::zeros([1, 2, 3, 3]);
        let w = Tensor4::zeros([1, 1, 3, 3]); // wrong channel count
        assert!(deconv2d_f32(&input, &w, &spec(2, 1, 3, 3, 1, 0)).is_err());
    }
}
