//! Layer shape parameters, mirroring Table I of the TFE paper.
//!
//! | Parameter | Description                                |
//! |-----------|--------------------------------------------|
//! | `N`       | number of ifmap channels / filter channels |
//! | `M`       | number of ofmap channels / filters         |
//! | `H`/`W`   | ifmap height / width                       |
//! | `E`/`F`   | ofmap height / width                       |
//! | `K`       | (transferred) filter height / width        |
//! | `Z`       | meta filter height / width (DCNN only; see `tfe-transfer`) |

use crate::TensorError;

/// The kind of layer, as relevant to the TFE's transfer policy.
///
/// The paper's engine accelerates canonical convolutions (including those
/// with stride > 1); 1×1 convolutions and FC layers run in conventional
/// mode, and depth-wise/grouped convolutions resolve to an explicit dense
/// (untransferred) policy and run conventionally as well (the paper
/// excludes MobileNet-like networks from *transfer*, not execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvKind {
    /// A canonical convolution over all input channels.
    Standard,
    /// A 1×1 convolution. Cannot be transferred (translation/rotation of a
    /// single weight is the identity), so it runs in conventional mode.
    Pointwise,
    /// A depth-wise convolution (one filter per channel, `groups == N`).
    /// Never transferred; compiled and executed as a grouped dense stage.
    DepthWise,
    /// A fully connected layer, executed in CONV fashion (1×1 spatial
    /// output over the flattened feature vector), as in Section IV.
    FullyConnected,
}

impl ConvKind {
    /// Whether the TFE can apply transferred filters to this layer at all.
    #[must_use]
    pub fn transferable(self) -> bool {
        matches!(self, ConvKind::Standard)
    }
}

/// The complete convolution geometry of a layer: how filter taps map to
/// input positions (`stride`, `dilation`) and how channels partition into
/// independent filter groups (`groups`). Depthwise convolution is the
/// `groups == channels` corner; ordinary convolution is
/// `{stride, dilation: 1, groups: 1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Output-position step in input coordinates.
    pub stride: usize,
    /// Spacing between filter taps (1 = ordinary convolution).
    pub dilation: usize,
    /// Channel groups: each filter reads only its group's `N / groups`
    /// input channels, and the `M` filters split evenly across groups.
    pub groups: usize,
}

impl ConvGeometry {
    /// The identity geometry: unit stride/dilation, one group.
    pub const UNIT: ConvGeometry = ConvGeometry {
        stride: 1,
        dilation: 1,
        groups: 1,
    };
}

/// Shape parameters of a single CNN layer (paper Table I).
///
/// Invariants are established at construction: all extents are nonzero, and
/// the filter fits within the padded input. Output extents `E`/`F` are
/// derived, never stored inconsistently.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerShape {
    name: String,
    kind: ConvKind,
    n: usize,
    m: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    dilation: usize,
    groups: usize,
}

impl LayerShape {
    /// Creates a canonical convolution layer shape.
    ///
    /// `n`/`m` are input/output channels; `h`/`w` the ifmap extent; `k` the
    /// square filter extent; `stride` and `pad` the usual convolution
    /// hyperparameters. A `k == 1` filter is automatically classified as
    /// [`ConvKind::Pointwise`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if any extent is zero, and
    /// [`TensorError::FilterTooLarge`] if the filter exceeds the padded
    /// input.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        name: &str,
        n: usize,
        m: usize,
        h: usize,
        w: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self, TensorError> {
        let kind = if k == 1 {
            ConvKind::Pointwise
        } else {
            ConvKind::Standard
        };
        Self::with_kind(name, kind, n, m, h, w, k, stride, pad)
    }

    /// Creates a depth-wise convolution layer shape (`m` filters of one
    /// channel each applied per input channel).
    ///
    /// # Errors
    ///
    /// Same as [`LayerShape::conv`].
    pub fn depthwise(
        name: &str,
        channels: usize,
        h: usize,
        w: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self, TensorError> {
        Self::with_kind(
            name,
            ConvKind::DepthWise,
            channels,
            channels,
            h,
            w,
            k,
            stride,
            pad,
        )?
        .with_groups(channels)
    }

    /// Creates a fully connected layer shape with `inputs` input features
    /// and `outputs` output neurons, modelled as a 1×1 convolution over a
    /// 1×1 ifmap with `inputs` channels (the paper's CONV-style FC
    /// execution).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if either count is zero.
    pub fn fully_connected(name: &str, inputs: usize, outputs: usize) -> Result<Self, TensorError> {
        Self::with_kind(
            name,
            ConvKind::FullyConnected,
            inputs,
            outputs,
            1,
            1,
            1,
            1,
            0,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn with_kind(
        name: &str,
        kind: ConvKind,
        n: usize,
        m: usize,
        h: usize,
        w: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self, TensorError> {
        for (what, value) in [
            ("ifmap channels (N)", n),
            ("ofmap channels (M)", m),
            ("ifmap height (H)", h),
            ("ifmap width (W)", w),
            ("filter size (K)", k),
            ("stride", stride),
        ] {
            if value == 0 {
                return Err(TensorError::InvalidDimension { what, value });
            }
        }
        let padded_h = h + 2 * pad;
        let padded_w = w + 2 * pad;
        if k > padded_h || k > padded_w {
            return Err(TensorError::FilterTooLarge {
                filter: k,
                padded_input: padded_h.min(padded_w),
            });
        }
        Ok(LayerShape {
            name: name.to_owned(),
            kind,
            n,
            m,
            h,
            w,
            k,
            stride,
            pad,
            dilation: 1,
            groups: 1,
        })
    }

    /// Returns a copy with the given channel-group count: each filter
    /// reads only the `N / groups` input channels of its group, and the
    /// `M` filters split evenly across groups. `groups == N == M` is
    /// depthwise convolution; `groups == 1` is ordinary convolution.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGroups`] when `groups` is zero or
    /// does not divide both channel counts.
    pub fn with_groups(mut self, groups: usize) -> Result<Self, TensorError> {
        if groups == 0 || !self.n.is_multiple_of(groups) {
            return Err(TensorError::InvalidGroups {
                groups,
                what: "ifmap channels (N)",
                channels: self.n,
            });
        }
        if !self.m.is_multiple_of(groups) {
            return Err(TensorError::InvalidGroups {
                groups,
                what: "ofmap channels (M)",
                channels: self.m,
            });
        }
        self.groups = groups;
        Ok(self)
    }

    /// Returns a copy with the given dilation (spacing between filter
    /// taps; 1 = ordinary convolution). The paper's transferred-filter
    /// algorithms cover dilated convolution — the weight sharing is
    /// unchanged, only the tap positions spread.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] for zero dilation, and
    /// [`TensorError::DilatedExtentTooLarge`] if the dilated receptive
    /// field exceeds the padded input.
    pub fn with_dilation(mut self, dilation: usize) -> Result<Self, TensorError> {
        if dilation == 0 {
            return Err(TensorError::InvalidDimension {
                what: "dilation",
                value: dilation,
            });
        }
        let span = self.receptive_extent_with(dilation);
        let padded = (self.h + 2 * self.pad).min(self.w + 2 * self.pad);
        if span > padded {
            return Err(TensorError::DilatedExtentTooLarge {
                extent: span,
                dilation,
                padded_input: padded,
            });
        }
        self.dilation = dilation;
        Ok(self)
    }

    fn receptive_extent_with(&self, dilation: usize) -> usize {
        dilation * (self.k - 1) + 1
    }

    /// Spacing between filter taps (1 = ordinary convolution).
    #[must_use]
    pub fn dilation(&self) -> usize {
        self.dilation
    }

    /// Channel-group count (1 = ordinary convolution; `N` = depthwise).
    #[must_use]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Input channels each filter reads (`N / groups`).
    #[must_use]
    pub fn channels_per_group(&self) -> usize {
        self.n / self.groups
    }

    /// Filters per channel group (`M / groups`).
    #[must_use]
    pub fn filters_per_group(&self) -> usize {
        self.m / self.groups
    }

    /// The layer's complete convolution geometry.
    #[must_use]
    pub fn geometry(&self) -> ConvGeometry {
        ConvGeometry {
            stride: self.stride,
            dilation: self.dilation,
            groups: self.groups,
        }
    }

    /// Receptive-field extent of the (possibly dilated) filter:
    /// `dilation × (K − 1) + 1`.
    #[must_use]
    pub fn receptive_extent(&self) -> usize {
        self.receptive_extent_with(self.dilation)
    }

    /// The layer's name (e.g. `"conv3_2"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer kind.
    #[must_use]
    pub fn kind(&self) -> ConvKind {
        self.kind
    }

    /// Number of ifmap channels (`N` in Table I).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of ofmap channels / filters (`M` in Table I).
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Ifmap height (`H`).
    #[must_use]
    pub fn h(&self) -> usize {
        self.h
    }

    /// Ifmap width (`W`).
    #[must_use]
    pub fn w(&self) -> usize {
        self.w
    }

    /// Filter extent (`K`; filters are square as in the paper).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Convolution stride.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding applied to each ifmap border.
    #[must_use]
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Ofmap height (`E`), derived from `H`, `K`, stride, padding and
    /// dilation.
    #[must_use]
    pub fn e(&self) -> usize {
        (self.h + 2 * self.pad - self.receptive_extent()) / self.stride + 1
    }

    /// Ofmap width (`F`), derived from `W`, `K`, stride, padding and
    /// dilation.
    #[must_use]
    pub fn f(&self) -> usize {
        (self.w + 2 * self.pad - self.receptive_extent()) / self.stride + 1
    }

    /// Number of weights in the (uncompressed) layer.
    ///
    /// Paper Eq. (1): `NUM_P_O = N × M × K × K` for canonical convolution.
    /// Each filter of a grouped layer reads only `N / groups` channels
    /// (depth-wise layers, `groups == N`, have one channel per filter).
    #[must_use]
    pub fn params(&self) -> u64 {
        self.channels_per_group() as u64 * self.m as u64 * self.k as u64 * self.k as u64
    }

    /// Number of multiply–accumulate operations in the (uncompressed)
    /// layer.
    ///
    /// Paper Eq. (1): `NUM_M_O = E × F × N × M × K × K`, with `N / groups`
    /// channels per filter for grouped and depth-wise layers.
    #[must_use]
    pub fn macs(&self) -> u64 {
        let spatial = self.e() as u64 * self.f() as u64;
        spatial * self.params()
    }

    /// Number of ifmap elements (`N × H × W`).
    #[must_use]
    pub fn ifmap_elems(&self) -> u64 {
        self.n as u64 * self.h as u64 * self.w as u64
    }

    /// Number of ofmap elements (`M × E × F`).
    #[must_use]
    pub fn ofmap_elems(&self) -> u64 {
        self.m as u64 * self.e() as u64 * self.f() as u64
    }
}

impl std::fmt::Display for LayerShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}x{}x{} -> {}x{}x{} (k={}, s={}, p={}, {:?})",
            self.name,
            self.n,
            self.h,
            self.w,
            self.m,
            self.e(),
            self.f(),
            self.k,
            self.stride,
            self.pad,
            self.kind,
        )?;
        if self.dilation != 1 {
            write!(f, " d={}", self.dilation)?;
        }
        if self.groups != 1 {
            write!(f, " g={}", self.groups)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_conv1_shape() {
        let s = LayerShape::conv("conv1_1", 3, 64, 224, 224, 3, 1, 1).unwrap();
        assert_eq!(s.e(), 224);
        assert_eq!(s.f(), 224);
        assert_eq!(s.params(), 3 * 64 * 9);
        assert_eq!(s.macs(), 224 * 224 * 3 * 64 * 9);
        assert_eq!(s.kind(), ConvKind::Standard);
    }

    #[test]
    fn alexnet_conv1_strided() {
        // 227x227 input, 11x11 filter, stride 4, no pad -> 55x55 output.
        let s = LayerShape::conv("conv1", 3, 96, 227, 227, 11, 4, 0).unwrap();
        assert_eq!(s.e(), 55);
        assert_eq!(s.f(), 55);
    }

    #[test]
    fn pointwise_detected() {
        let s = LayerShape::conv("pw", 64, 128, 28, 28, 1, 1, 0).unwrap();
        assert_eq!(s.kind(), ConvKind::Pointwise);
        assert!(!s.kind().transferable());
    }

    #[test]
    fn fully_connected_as_conv() {
        let s = LayerShape::fully_connected("fc6", 9216, 4096).unwrap();
        assert_eq!(s.e(), 1);
        assert_eq!(s.f(), 1);
        assert_eq!(s.macs(), 9216 * 4096);
        assert_eq!(s.params(), 9216 * 4096);
    }

    #[test]
    fn depthwise_params_and_macs() {
        let s = LayerShape::depthwise("dw", 32, 16, 16, 3, 1, 1).unwrap();
        assert_eq!(s.params(), 32 * 9);
        assert_eq!(s.macs(), 16 * 16 * 32 * 9);
        assert!(!s.kind().transferable());
    }

    #[test]
    fn zero_dimension_rejected() {
        let err = LayerShape::conv("bad", 0, 64, 8, 8, 3, 1, 1).unwrap_err();
        assert!(matches!(err, TensorError::InvalidDimension { .. }));
    }

    #[test]
    fn oversized_filter_rejected() {
        let err = LayerShape::conv("bad", 1, 1, 4, 4, 7, 1, 0).unwrap_err();
        assert!(matches!(err, TensorError::FilterTooLarge { .. }));
        // With enough padding the same filter fits.
        assert!(LayerShape::conv("ok", 1, 1, 4, 4, 7, 1, 2).is_ok());
    }

    #[test]
    fn display_is_nonempty_and_mentions_name() {
        let s = LayerShape::conv("conv2", 16, 32, 14, 14, 5, 1, 2).unwrap();
        let text = s.to_string();
        assert!(text.contains("conv2"));
        assert!(text.contains("k=5"));
    }

    #[test]
    fn dilation_shrinks_output_and_validates() {
        // 3x3 filter at dilation 2 has a 5x5 receptive field.
        let s = LayerShape::conv("d2", 1, 1, 9, 9, 3, 1, 0)
            .unwrap()
            .with_dilation(2)
            .unwrap();
        assert_eq!(s.receptive_extent(), 5);
        assert_eq!(s.e(), 5);
        // The same filter at dilation 4 (9x9 field) just fits...
        assert!(LayerShape::conv("d4", 1, 1, 9, 9, 3, 1, 0)
            .unwrap()
            .with_dilation(4)
            .is_ok());
        // ...and dilation 5 does not — rejected with the typed geometry
        // error carrying the offending extent.
        assert_eq!(
            LayerShape::conv("d5", 1, 1, 9, 9, 3, 1, 0)
                .unwrap()
                .with_dilation(5)
                .unwrap_err(),
            TensorError::DilatedExtentTooLarge {
                extent: 11,
                dilation: 5,
                padded_input: 9,
            }
        );
        // Zero dilation is invalid.
        assert!(LayerShape::conv("d0", 1, 1, 9, 9, 3, 1, 0)
            .unwrap()
            .with_dilation(0)
            .is_err());
    }

    #[test]
    fn dilated_macs_use_strided_output_extents() {
        let s = LayerShape::conv("dm", 2, 4, 9, 9, 3, 1, 0)
            .unwrap()
            .with_dilation(2)
            .unwrap();
        assert_eq!(s.macs(), 5 * 5 * 2 * 4 * 9);
    }

    #[test]
    fn strided_output_extent() {
        let s = LayerShape::conv("s2", 8, 8, 15, 15, 3, 2, 1).unwrap();
        // (15 + 2 - 3)/2 + 1 = 8
        assert_eq!(s.e(), 8);
    }

    #[test]
    fn grouped_shape_divides_params_and_macs() {
        let s = LayerShape::conv("g2", 8, 4, 10, 10, 3, 1, 1)
            .unwrap()
            .with_groups(2)
            .unwrap();
        assert_eq!(s.groups(), 2);
        assert_eq!(s.channels_per_group(), 4);
        assert_eq!(s.filters_per_group(), 2);
        assert_eq!(s.params(), 4 * 4 * 9);
        assert_eq!(s.macs(), 10 * 10 * 4 * 4 * 9);
        assert_eq!(
            s.geometry(),
            ConvGeometry {
                stride: 1,
                dilation: 1,
                groups: 2,
            }
        );
    }

    #[test]
    fn depthwise_is_the_groups_equals_channels_corner() {
        let s = LayerShape::depthwise("dw", 32, 16, 16, 3, 1, 1).unwrap();
        assert_eq!(s.groups(), 32);
        assert_eq!(s.channels_per_group(), 1);
        assert_eq!(s.filters_per_group(), 1);
        assert_eq!(
            LayerShape::conv("u", 3, 8, 8, 8, 3, 1, 1)
                .unwrap()
                .geometry(),
            ConvGeometry::UNIT
        );
    }

    #[test]
    fn invalid_groups_rejected_with_typed_error() {
        let base = LayerShape::conv("g", 8, 6, 10, 10, 3, 1, 1).unwrap();
        // Zero groups.
        assert!(matches!(
            base.clone().with_groups(0),
            Err(TensorError::InvalidGroups { groups: 0, .. })
        ));
        // 8 input channels divide by 4, but 6 filters do not.
        assert_eq!(
            base.clone().with_groups(4).unwrap_err(),
            TensorError::InvalidGroups {
                groups: 4,
                what: "ofmap channels (M)",
                channels: 6,
            }
        );
        // 3 divides neither: the input-channel check fires first.
        assert_eq!(
            base.with_groups(3).unwrap_err(),
            TensorError::InvalidGroups {
                groups: 3,
                what: "ifmap channels (N)",
                channels: 8,
            }
        );
    }
}
