//! Dense NCHW tensors.
//!
//! [`Tensor4`] is the single container used throughout the workspace for
//! ifmaps (`[batch, channel, height, width]`), filter banks
//! (`[filter, channel, kh, kw]`) and ofmaps. It is deliberately simple:
//! contiguous storage, checked and unchecked-free indexing, and a handful
//! of constructors. All heavy lifting (convolution, pooling) lives in
//! sibling modules so the layout stays a private detail.

use crate::TensorError;

/// A dense 4-dimensional tensor in NCHW order.
///
/// ```
/// use tfe_tensor::tensor::Tensor4;
/// let mut t = Tensor4::zeros([1, 2, 3, 3]);
/// t.set([0, 1, 2, 2], 7.0);
/// assert_eq!(t.get([0, 1, 2, 2]), 7.0);
/// assert_eq!(t.len(), 18);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4<T> {
    dims: [usize; 4],
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor4<T> {
    /// Creates a tensor of the given dimensions filled with `T::default()`.
    #[must_use]
    pub fn zeros(dims: [usize; 4]) -> Self {
        Self::filled(dims, T::default())
    }
}

impl<T: Copy> Tensor4<T> {
    /// Creates a tensor of the given dimensions filled with `value`.
    #[must_use]
    pub fn filled(dims: [usize; 4], value: T) -> Self {
        let len = dims.iter().product();
        Tensor4 {
            dims,
            data: vec![value; len],
        }
    }

    /// Creates a tensor from a flat NCHW-ordered vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not equal
    /// the product of `dims`.
    pub fn from_vec(dims: [usize; 4], data: Vec<T>) -> Result<Self, TensorError> {
        let expected: usize = dims.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch {
                what: "flat data length",
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor4 { dims, data })
    }

    /// Creates a tensor by evaluating `f` at every `[n, c, y, x]` index.
    #[must_use]
    pub fn from_fn(dims: [usize; 4], mut f: impl FnMut([usize; 4]) -> T) -> Self {
        let mut data = Vec::with_capacity(dims.iter().product());
        for n in 0..dims[0] {
            for c in 0..dims[1] {
                for y in 0..dims[2] {
                    for x in 0..dims[3] {
                        data.push(f([n, c, y, x]));
                    }
                }
            }
        }
        Tensor4 { dims, data }
    }

    /// The tensor dimensions `[n, c, h, w]`.
    #[must_use]
    pub fn dims(&self) -> [usize; 4] {
        self.dims
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn offset(&self, idx: [usize; 4]) -> usize {
        debug_assert!(
            idx[0] < self.dims[0]
                && idx[1] < self.dims[1]
                && idx[2] < self.dims[2]
                && idx[3] < self.dims[3],
            "index {idx:?} out of bounds for dims {:?}",
            self.dims
        );
        ((idx[0] * self.dims[1] + idx[1]) * self.dims[2] + idx[2]) * self.dims[3] + idx[3]
    }

    /// Reads the element at `[n, c, y, x]`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, idx: [usize; 4]) -> T {
        self.data[self.offset(idx)]
    }

    /// Writes the element at `[n, c, y, x]`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, idx: [usize; 4], value: T) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// Flat view of the data in NCHW order.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view of the data in NCHW order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns the flat data vector.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterates over `([n, c, y, x], value)` pairs in NCHW order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = ([usize; 4], T)> + '_ {
        let dims = self.dims;
        self.data.iter().copied().enumerate().map(move |(i, v)| {
            let x = i % dims[3];
            let y = (i / dims[3]) % dims[2];
            let c = (i / (dims[3] * dims[2])) % dims[1];
            let n = i / (dims[3] * dims[2] * dims[1]);
            ([n, c, y, x], v)
        })
    }

    /// Applies `f` elementwise, producing a new tensor of the same shape.
    #[must_use]
    pub fn map<U: Copy>(&self, f: impl Fn(T) -> U) -> Tensor4<U> {
        Tensor4 {
            dims: self.dims,
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// One contiguous spatial plane (`h × w`) for batch `n`, channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `c` is out of bounds.
    #[must_use]
    pub fn plane(&self, n: usize, c: usize) -> &[T] {
        let hw = self.dims[2] * self.dims[3];
        let start = (n * self.dims[1] + c) * hw;
        &self.data[start..start + hw]
    }
}

impl Tensor4<f32> {
    /// Maximum absolute elementwise difference to another tensor.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Tensor4<f32>) -> f32 {
        assert_eq!(self.dims, other.dims, "tensor dims differ");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Fx16;

    #[test]
    fn zeros_and_len() {
        let t: Tensor4<f32> = Tensor4::zeros([2, 3, 4, 5]);
        assert_eq!(t.len(), 120);
        assert_eq!(t.dims(), [2, 3, 4, 5]);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn set_get_round_trip_all_corners() {
        let mut t: Tensor4<i32> = Tensor4::zeros([2, 2, 2, 2]);
        let mut v = 1;
        for n in 0..2 {
            for c in 0..2 {
                for y in 0..2 {
                    for x in 0..2 {
                        t.set([n, c, y, x], v);
                        v += 1;
                    }
                }
            }
        }
        assert_eq!(t.get([0, 0, 0, 0]), 1);
        assert_eq!(t.get([1, 1, 1, 1]), 16);
        // NCHW layout means the last axis is fastest.
        assert_eq!(t.as_slice()[1], t.get([0, 0, 0, 1]));
    }

    #[test]
    fn from_vec_validates_length() {
        let err = Tensor4::from_vec([1, 1, 2, 2], vec![0.0f32; 3]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
        let ok = Tensor4::from_vec([1, 1, 2, 2], vec![0.0f32; 4]);
        assert!(ok.is_ok());
    }

    #[test]
    fn from_fn_matches_indexed_iter() {
        let t = Tensor4::from_fn([2, 1, 3, 2], |[n, _, y, x]| (n * 100 + y * 10 + x) as i64);
        for (idx, v) in t.indexed_iter() {
            assert_eq!(v, (idx[0] * 100 + idx[2] * 10 + idx[3]) as i64);
        }
    }

    #[test]
    fn map_converts_between_domains() {
        let t = Tensor4::from_fn([1, 1, 2, 2], |[_, _, y, x]| (y + x) as f32);
        let q = t.map(Fx16::from_f32);
        assert_eq!(q.get([0, 0, 1, 1]).to_f32(), 2.0);
    }

    #[test]
    fn plane_is_contiguous_hw() {
        let t = Tensor4::from_fn([1, 2, 2, 2], |[_, c, y, x]| (c * 100 + y * 10 + x) as i32);
        assert_eq!(t.plane(0, 1), &[100, 101, 110, 111]);
    }

    #[test]
    fn max_abs_diff_zero_for_identical() {
        let t = Tensor4::from_fn([1, 1, 4, 4], |[_, _, y, x]| (y * 4 + x) as f32);
        assert_eq!(t.max_abs_diff(&t.clone()), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn debug_bounds_check_panics() {
        let t: Tensor4<f32> = Tensor4::zeros([1, 1, 2, 2]);
        let _ = t.get([0, 0, 2, 0]);
    }
}
