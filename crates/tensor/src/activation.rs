//! Activation functions applied by the TFE output memory system.
//!
//! The hardware applies ReLU to PSums read out of the PSum memories
//! (Fig. 13: "read, added to adder trees and activated by the ReLU
//! function"). CReLU — one of the four transferred-filter algorithms in
//! Section II — concatenates the ReLU of a signal and of its negation, so
//! it is provided here as well for the `tfe-transfer` extension.

use crate::tensor::Tensor4;

/// ReLU over a whole tensor.
#[must_use]
pub fn relu(input: &Tensor4<f32>) -> Tensor4<f32> {
    input.map(|v| v.max(0.0))
}

/// ReLU of a single value.
#[must_use]
pub fn relu_scalar(v: f32) -> f32 {
    v.max(0.0)
}

/// Leaky ReLU of a single value with the given negative slope.
#[must_use]
pub fn leaky_relu_scalar(v: f32, slope: f32) -> f32 {
    if v >= 0.0 {
        v
    } else {
        v * slope
    }
}

/// Concatenated ReLU (CReLU, Shang et al. 2016): stacks `relu(x)` and
/// `relu(−x)` along the channel axis, doubling the channel count.
///
/// This is the activation used by the CReLU transferred-filter algorithm:
/// the "negative-phase" filters are the negations of the positive ones, so
/// only half the filters are stored.
#[must_use]
pub fn crelu(input: &Tensor4<f32>) -> Tensor4<f32> {
    let [n, c, h, w] = input.dims();
    Tensor4::from_fn([n, 2 * c, h, w], |[b, ch, y, x]| {
        if ch < c {
            input.get([b, ch, y, x]).max(0.0)
        } else {
            (-input.get([b, ch - c, y, x])).max(0.0)
        }
    })
}

/// Numerically stable softmax over the channel axis of a `[batch, C, 1, 1]`
/// tensor, used by the training substrate's classifier head.
#[must_use]
pub fn softmax_channels(input: &Tensor4<f32>) -> Tensor4<f32> {
    let [n, c, h, w] = input.dims();
    debug_assert_eq!((h, w), (1, 1), "softmax expects a flattened head");
    let mut out = Tensor4::zeros([n, c, h, w]);
    for b in 0..n {
        let max = (0..c)
            .map(|ch| input.get([b, ch, 0, 0]))
            .fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for ch in 0..c {
            denom += (input.get([b, ch, 0, 0]) - max).exp();
        }
        for ch in 0..c {
            out.set(
                [b, ch, 0, 0],
                (input.get([b, ch, 0, 0]) - max).exp() / denom,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_zeroes_negatives_only() {
        let t = Tensor4::from_vec([1, 1, 1, 4], vec![-2.0, -0.0, 0.5, 3.0]).unwrap();
        let r = relu(&t);
        assert_eq!(r.as_slice(), &[0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn crelu_doubles_channels_and_splits_phases() {
        let t = Tensor4::from_vec([1, 2, 1, 1], vec![1.5, -2.0]).unwrap();
        let r = crelu(&t);
        assert_eq!(r.dims(), [1, 4, 1, 1]);
        assert_eq!(r.get([0, 0, 0, 0]), 1.5); // relu(+1.5)
        assert_eq!(r.get([0, 1, 0, 0]), 0.0); // relu(-2.0)
        assert_eq!(r.get([0, 2, 0, 0]), 0.0); // relu(-1.5)
        assert_eq!(r.get([0, 3, 0, 0]), 2.0); // relu(+2.0)
    }

    #[test]
    fn crelu_preserves_all_information() {
        // x can be reconstructed as crelu[0..c] - crelu[c..2c].
        let t = Tensor4::from_vec([1, 3, 1, 1], vec![0.25, -1.0, 4.0]).unwrap();
        let r = crelu(&t);
        for ch in 0..3 {
            let rebuilt = r.get([0, ch, 0, 0]) - r.get([0, ch + 3, 0, 0]);
            assert_eq!(rebuilt, t.get([0, ch, 0, 0]));
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let t = Tensor4::from_vec([1, 3, 1, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let s = softmax_channels(&t);
        let sum: f32 = (0..3).map(|c| s.get([0, c, 0, 0])).sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(s.get([0, 2, 0, 0]) > s.get([0, 1, 0, 0]));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor4::from_vec([1, 2, 1, 1], vec![1000.0, 1001.0]).unwrap();
        let s = softmax_channels(&t);
        assert!(s.get([0, 1, 0, 0]).is_finite());
        assert!(s.get([0, 1, 0, 0]) > 0.7);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        assert_eq!(leaky_relu_scalar(-2.0, 0.1), -0.2);
        assert_eq!(leaky_relu_scalar(2.0, 0.1), 2.0);
    }
}
