//! im2col lowering: convolution as matrix multiplication.
//!
//! The classic GEMM formulation unrolls every convolution window into a
//! column of a `[N·K², E·F]` patch matrix, so the layer becomes one
//! `[M, N·K²] × [N·K², E·F]` product. It is the third independent
//! convolution implementation in this workspace (after the direct loop
//! nest and the TFE datapath) and is used by tests as a cross-check and
//! by anyone who wants a faster CPU reference.

use crate::shape::LayerShape;
use crate::tensor::Tensor4;
use crate::TensorError;

/// Unrolls one batch element into the `[N·K², E·F]` patch matrix
/// (row-major, rows = unrolled filter taps, columns = output positions).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `input` disagrees with
/// `shape`.
pub fn im2col(
    input: &Tensor4<f32>,
    batch: usize,
    shape: &LayerShape,
) -> Result<Vec<f32>, TensorError> {
    let [b, ic, ih, iw] = input.dims();
    for (what, expected, actual) in [
        ("input channels", shape.n(), ic),
        ("input height", shape.h(), ih),
        ("input width", shape.w(), iw),
    ] {
        if expected != actual {
            return Err(TensorError::ShapeMismatch {
                what,
                expected,
                actual,
            });
        }
    }
    if batch >= b {
        return Err(TensorError::IndexOutOfBounds {
            index: batch,
            bound: b,
        });
    }
    let (k, e, f) = (shape.k(), shape.e(), shape.f());
    let (stride, pad, dilation) = (shape.stride(), shape.pad(), shape.dilation());
    let rows = shape.n() * k * k;
    let cols = e * f;
    let mut out = vec![0.0f32; rows * cols];
    for c in 0..shape.n() {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                for oy in 0..e {
                    let iy = (oy * stride + ky * dilation) as isize - pad as isize;
                    for ox in 0..f {
                        let ix = (ox * stride + kx * dilation) as isize - pad as isize;
                        let col = oy * f + ox;
                        if iy >= 0 && iy < shape.h() as isize && ix >= 0 && ix < shape.w() as isize
                        {
                            out[row * cols + col] = input.get([batch, c, iy as usize, ix as usize]);
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Convolution via im2col + GEMM; numerically identical to
/// [`crate::conv::conv2d_f32`] up to f32 summation order.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the operands disagree with
/// `shape`.
pub fn conv2d_im2col(
    input: &Tensor4<f32>,
    weights: &Tensor4<f32>,
    shape: &LayerShape,
) -> Result<Tensor4<f32>, TensorError> {
    let [m, wc, kh, kw] = weights.dims();
    for (what, expected, actual) in [
        ("filter count", shape.m(), m),
        ("weight channels", shape.n(), wc),
        ("filter height", shape.k(), kh),
        ("filter width", shape.k(), kw),
    ] {
        if expected != actual {
            return Err(TensorError::ShapeMismatch {
                what,
                expected,
                actual,
            });
        }
    }
    let batch = input.dims()[0];
    let (e, f) = (shape.e(), shape.f());
    let rows = shape.n() * shape.k() * shape.k();
    let cols = e * f;
    let w_flat = weights.as_slice();
    let mut out = Tensor4::zeros([batch, shape.m(), e, f]);
    for b in 0..batch {
        let patches = im2col(input, b, shape)?;
        for filter in 0..shape.m() {
            let w_row = &w_flat[filter * rows..(filter + 1) * rows];
            for col in 0..cols {
                let mut acc = 0.0f32;
                for (r, &w) in w_row.iter().enumerate() {
                    acc += w * patches[r * cols + col];
                }
                out.set([b, filter, col / f, col % f], acc);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_f32;

    fn det(seed: &mut u32) -> f32 {
        *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
        ((*seed >> 16) as f32 / 65536.0) - 0.5
    }

    #[test]
    fn im2col_matches_direct_convolution() {
        let shape = LayerShape::conv("g", 3, 5, 9, 9, 3, 1, 1).unwrap();
        let mut seed = 17;
        let input = Tensor4::from_fn([2, 3, 9, 9], |_| det(&mut seed));
        let weights = Tensor4::from_fn([5, 3, 3, 3], |_| det(&mut seed));
        let gemm = conv2d_im2col(&input, &weights, &shape).unwrap();
        let direct = conv2d_f32(&input, &weights, None, &shape).unwrap();
        assert!(gemm.max_abs_diff(&direct) < 1e-4);
    }

    #[test]
    fn im2col_matches_direct_with_stride_and_dilation() {
        let shape = LayerShape::conv("sd", 2, 3, 11, 11, 3, 2, 1)
            .unwrap()
            .with_dilation(2)
            .unwrap();
        let mut seed = 23;
        let input = Tensor4::from_fn([1, 2, 11, 11], |_| det(&mut seed));
        let weights = Tensor4::from_fn([3, 2, 3, 3], |_| det(&mut seed));
        let gemm = conv2d_im2col(&input, &weights, &shape).unwrap();
        let direct = conv2d_f32(&input, &weights, None, &shape).unwrap();
        assert!(gemm.max_abs_diff(&direct) < 1e-4);
    }

    #[test]
    fn patch_matrix_layout() {
        // A 2x2 input with a 2x2 filter, no padding: one output position,
        // the patch column is the flattened window.
        let shape = LayerShape::conv("p", 1, 1, 2, 2, 2, 1, 0).unwrap();
        let input = Tensor4::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let patches = im2col(&input, 0, &shape).unwrap();
        assert_eq!(patches, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn out_of_range_batch_rejected() {
        let shape = LayerShape::conv("b", 1, 1, 2, 2, 2, 1, 0).unwrap();
        let input = Tensor4::<f32>::zeros([1, 1, 2, 2]);
        assert!(matches!(
            im2col(&input, 1, &shape),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn mismatched_weights_rejected() {
        let shape = LayerShape::conv("m", 2, 2, 4, 4, 3, 1, 1).unwrap();
        let input = Tensor4::<f32>::zeros([1, 2, 4, 4]);
        let weights = Tensor4::<f32>::zeros([2, 1, 3, 3]);
        assert!(conv2d_im2col(&input, &weights, &shape).is_err());
    }
}
