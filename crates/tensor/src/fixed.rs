//! 16-bit fixed-point arithmetic (Q8.8), the numeric format of the TFE
//! datapath.
//!
//! The paper's engine is a 16-bit design (Section V.A: "the same data width
//! format (16 bit) … used in Eyeriss"). We model samples as Q8.8
//! (8 integer bits, 8 fractional bits) and partial sums as a widened 32-bit
//! accumulator ([`Accum`]), matching the hardware's PSum registers that are
//! wider than the sample path so row-length accumulations do not overflow.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Number of fractional bits in [`Fx16`].
pub const FRAC_BITS: u32 = 8;

/// Scale factor (2^[`FRAC_BITS`]) between the integer representation and
/// the real value.
pub const SCALE: i32 = 1 << FRAC_BITS;

/// A 16-bit Q8.8 fixed-point sample.
///
/// Arithmetic saturates rather than wraps, as a hardware datapath would.
/// Construct from a float with [`Fx16::from_f32`] and read back with
/// [`Fx16::to_f32`]:
///
/// ```
/// use tfe_tensor::fixed::Fx16;
/// let x = Fx16::from_f32(1.5);
/// let y = Fx16::from_f32(-0.25);
/// assert_eq!((x * y).to_f32(), -0.375);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fx16(i16);

impl Fx16 {
    /// The value `0.0`.
    pub const ZERO: Fx16 = Fx16(0);
    /// The value `1.0`.
    pub const ONE: Fx16 = Fx16(SCALE as i16);
    /// Largest representable value (≈ 127.996).
    pub const MAX: Fx16 = Fx16(i16::MAX);
    /// Smallest representable value (−128.0).
    pub const MIN: Fx16 = Fx16(i16::MIN);

    /// Creates a sample directly from its raw Q8.8 bit pattern.
    #[must_use]
    pub const fn from_bits(bits: i16) -> Self {
        Fx16(bits)
    }

    /// The raw Q8.8 bit pattern.
    #[must_use]
    pub const fn to_bits(self) -> i16 {
        self.0
    }

    /// Converts from `f32`, rounding to nearest and saturating at the
    /// representable range.
    #[must_use]
    pub fn from_f32(value: f32) -> Self {
        let scaled = (value * SCALE as f32).round();
        let clamped = scaled.clamp(i16::MIN as f32, i16::MAX as f32);
        Fx16(clamped as i16)
    }

    /// Converts to `f32` exactly (every Q8.8 value is representable).
    #[must_use]
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / SCALE as f32
    }

    /// Whether the sample is exactly zero. The TFE PE clock-gates its
    /// multiplier on zero operands (Section IV, "Processing Element").
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition in the sample domain.
    #[must_use]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Fx16(self.0.saturating_add(rhs.0))
    }

    /// Full-precision product, widened into the accumulator domain
    /// (Q16.16). This is what a PE's multiplier emits onto the data bus.
    #[must_use]
    pub fn widening_mul(self, rhs: Self) -> Accum {
        Accum(self.0 as i32 * rhs.0 as i32)
    }
}

impl fmt::Display for Fx16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl fmt::LowerHex for Fx16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Fx16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Fx16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Fx16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl From<i16> for Fx16 {
    /// Interprets the integer as a whole number of units (not raw bits).
    fn from(value: i16) -> Self {
        Fx16((value as i32 * SCALE).clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }
}

impl Add for Fx16 {
    type Output = Fx16;
    fn add(self, rhs: Fx16) -> Fx16 {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Fx16 {
    fn add_assign(&mut self, rhs: Fx16) {
        *self = *self + rhs;
    }
}

impl Sub for Fx16 {
    type Output = Fx16;
    fn sub(self, rhs: Fx16) -> Fx16 {
        Fx16(self.0.saturating_sub(rhs.0))
    }
}

impl Neg for Fx16 {
    type Output = Fx16;
    fn neg(self) -> Fx16 {
        Fx16(self.0.saturating_neg())
    }
}

impl Mul for Fx16 {
    type Output = Fx16;
    /// Rounded Q8.8 × Q8.8 → Q8.8 product (sample-domain multiply).
    fn mul(self, rhs: Fx16) -> Fx16 {
        self.widening_mul(rhs).to_sample()
    }
}

/// The widened (Q16.16, 32-bit) partial-sum accumulator.
///
/// Matches the TFE's PSum registers and stacked registers, which carry
/// full-precision products so repeated reuse (PPSR/ERRR) never loses
/// precision relative to a fused accumulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Accum(i32);

impl Accum {
    /// The zero accumulator.
    pub const ZERO: Accum = Accum(0);

    /// Creates an accumulator directly from its raw Q16.16 bit pattern.
    #[must_use]
    pub const fn from_bits(bits: i32) -> Self {
        Accum(bits)
    }

    /// The raw Q16.16 bit pattern.
    #[must_use]
    pub const fn to_bits(self) -> i32 {
        self.0
    }

    /// Lifts a sample into the accumulator domain without loss.
    #[must_use]
    pub fn from_sample(sample: Fx16) -> Self {
        Accum((sample.to_bits() as i32) << FRAC_BITS)
    }

    /// Converts back to the sample domain with round-to-nearest and
    /// saturation — the quantization performed when a finished PSum leaves
    /// the output memory system.
    #[must_use]
    pub fn to_sample(self) -> Fx16 {
        // Saturating rounding add: an accumulator clamped at `i32::MAX`
        // must round to the positive sample extreme, not wrap negative.
        let rounded = self.0.saturating_add(1 << (FRAC_BITS - 1)) >> FRAC_BITS;
        Fx16(rounded.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }

    /// Converts to `f32` exactly.
    #[must_use]
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / (SCALE as f32 * SCALE as f32)
    }

    /// ReLU in the accumulator domain, used by the output memory system's
    /// activation stage before pooling.
    #[must_use]
    pub fn relu(self) -> Accum {
        Accum(self.0.max(0))
    }
}

impl fmt::Display for Accum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl Add for Accum {
    type Output = Accum;
    fn add(self, rhs: Accum) -> Accum {
        Accum(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Accum {
    fn add_assign(&mut self, rhs: Accum) {
        *self = *self + rhs;
    }
}

impl Sub for Accum {
    type Output = Accum;
    fn sub(self, rhs: Accum) -> Accum {
        Accum(self.0.saturating_sub(rhs.0))
    }
}

impl Neg for Accum {
    type Output = Accum;
    fn neg(self) -> Accum {
        Accum(self.0.saturating_neg())
    }
}

impl Sum for Accum {
    fn sum<I: Iterator<Item = Accum>>(iter: I) -> Accum {
        iter.fold(Accum::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_values() {
        for v in [-128.0, -1.0, -0.5, 0.0, 0.25, 1.0, 3.75, 127.0] {
            assert_eq!(Fx16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn from_f32_saturates() {
        assert_eq!(Fx16::from_f32(1000.0), Fx16::MAX);
        assert_eq!(Fx16::from_f32(-1000.0), Fx16::MIN);
    }

    #[test]
    fn widening_mul_is_exact() {
        let a = Fx16::from_f32(2.5);
        let b = Fx16::from_f32(-1.25);
        assert_eq!(a.widening_mul(b).to_f32(), -3.125);
    }

    #[test]
    fn to_sample_saturates_at_the_accumulator_extremes() {
        // A clamped accumulator must quantize to the matching sample
        // extreme; the rounding add used to overflow at `i32::MAX`.
        assert_eq!(Accum::from_bits(i32::MAX).to_sample(), Fx16::MAX);
        assert_eq!(Accum::from_bits(i32::MIN).to_sample(), Fx16::MIN);
    }

    #[test]
    fn sample_mul_rounds_to_nearest() {
        // 0.00390625 * 0.5 = 0.001953125, which rounds up to 1/256.
        let tiny = Fx16::from_bits(1);
        let half = Fx16::from_f32(0.5);
        assert_eq!((tiny * half).to_bits(), 1);
    }

    #[test]
    fn accumulator_addition_matches_float_within_representation() {
        let samples = [0.5f32, -0.25, 3.0, 1.5, -2.75];
        let acc: Accum = samples
            .iter()
            .map(|&v| Fx16::from_f32(v).widening_mul(Fx16::ONE))
            .sum();
        let expected: f32 = samples.iter().sum();
        assert_eq!(acc.to_f32(), expected);
    }

    #[test]
    fn accum_relu_clamps_negative() {
        let neg = Fx16::from_f32(-1.0).widening_mul(Fx16::ONE);
        assert_eq!(neg.relu(), Accum::ZERO);
        let pos = Fx16::from_f32(1.0).widening_mul(Fx16::ONE);
        assert_eq!(pos.relu(), pos);
    }

    #[test]
    fn sample_add_saturates() {
        assert_eq!(Fx16::MAX + Fx16::ONE, Fx16::MAX);
        assert_eq!(Fx16::MIN + -Fx16::ONE, Fx16::MIN);
    }

    #[test]
    fn from_i16_units() {
        assert_eq!(Fx16::from(3i16).to_f32(), 3.0);
        // 200 units saturates the Q8.8 range.
        assert_eq!(Fx16::from(200i16), Fx16::MAX);
    }

    #[test]
    fn accum_sample_round_trip() {
        for v in [-4.5f32, 0.0, 0.125, 88.25] {
            let acc = Accum::from_sample(Fx16::from_f32(v));
            assert_eq!(acc.to_sample().to_f32(), v);
        }
    }

    #[test]
    fn bit_pattern_formatting() {
        let one = Fx16::ONE;
        assert_eq!(format!("{one:x}"), "100");
        assert_eq!(format!("{one:b}"), "100000000");
        assert_eq!(format!("{one:o}"), "400");
        assert_eq!(format!("{one:X}"), "100");
    }

    #[test]
    fn zero_detection_for_clock_gating() {
        assert!(Fx16::ZERO.is_zero());
        assert!(!Fx16::from_f32(0.01).is_zero());
    }
}
