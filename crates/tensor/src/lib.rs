//! Tensor and numeric substrate for the TFE reproduction.
//!
//! This crate provides everything the rest of the workspace treats as the
//! "ground truth" for CNN arithmetic:
//!
//! * [`shape::LayerShape`] — the shape parameters of a convolutional layer,
//!   mirroring Table I of the paper (`N`, `M`, `H/W`, `E/F`, `K`).
//! * [`fixed::Fx16`] — the 16-bit fixed-point (Q8.8) sample type used by the
//!   TFE datapath, with a widened [`fixed::Accum`] accumulator matching the
//!   hardware's partial-sum registers.
//! * [`tensor::Tensor4`] — a dense NCHW tensor.
//! * [`conv`] — reference (direct, unoptimized) convolution, the golden
//!   model against which the simulator's functional datapath is checked.
//! * [`pool`] / [`activation`] — pooling and activation functions as used by
//!   the TFE output memory system.
//!
//! # Example
//!
//! ```
//! use tfe_tensor::shape::LayerShape;
//! use tfe_tensor::tensor::Tensor4;
//! use tfe_tensor::conv::conv2d_f32;
//!
//! # fn main() -> Result<(), tfe_tensor::TensorError> {
//! let shape = LayerShape::conv("toy", 1, 2, 8, 8, 3, 1, 1)?;
//! let input = Tensor4::filled([1, 1, 8, 8], 1.0f32);
//! let weights = Tensor4::filled([2, 1, 3, 3], 0.5f32);
//! let out = conv2d_f32(&input, &weights, None, &shape)?;
//! assert_eq!(out.dims(), [1, 2, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod conv;
pub mod fixed;
pub mod im2col;
pub mod pool;
pub mod shape;
pub mod tensor;

mod error;

pub use error::TensorError;
