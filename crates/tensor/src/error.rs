use std::fmt;

/// Error type for tensor and layer-shape operations.
///
/// Returned by constructors that validate their arguments
/// ([`crate::shape::LayerShape::conv`], [`crate::conv::conv2d_f32`], …).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// A dimension was zero or otherwise out of the supported range.
    InvalidDimension {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: usize,
    },
    /// The filter does not fit inside the (padded) input.
    FilterTooLarge {
        /// Filter height/width.
        filter: usize,
        /// Padded input extent the filter was checked against.
        padded_input: usize,
    },
    /// Two tensors (or a tensor and a layer shape) disagree on a dimension.
    ShapeMismatch {
        /// What was being matched, e.g. `"weight channels"`.
        what: &'static str,
        /// Dimension the operation expected.
        expected: usize,
        /// Dimension that was provided.
        actual: usize,
    },
    /// An element index was outside the tensor bounds.
    IndexOutOfBounds {
        /// The flat index or offending coordinate.
        index: usize,
        /// The bound that was exceeded.
        bound: usize,
    },
    /// The channel-group count is zero or does not divide a channel
    /// extent (grouped/depthwise convolution geometry).
    InvalidGroups {
        /// The rejected group count.
        groups: usize,
        /// Which channel extent failed to divide.
        what: &'static str,
        /// That extent's value.
        channels: usize,
    },
    /// The dilated receptive field `dilation × (K − 1) + 1` exceeds the
    /// padded input extent.
    DilatedExtentTooLarge {
        /// The dilated receptive extent.
        extent: usize,
        /// The dilation that produced it.
        dilation: usize,
        /// Padded input extent the field was checked against.
        padded_input: usize,
    },
    /// A fractional parameter (e.g. a pruning sparsity) was outside
    /// `[0, 1]` — rejected as a typed error rather than silently
    /// clamped.
    InvalidFraction {
        /// Human-readable name of the offending parameter.
        what: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::InvalidDimension { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            TensorError::FilterTooLarge {
                filter,
                padded_input,
            } => write!(
                f,
                "filter of extent {filter} does not fit padded input of extent {padded_input}"
            ),
            TensorError::ShapeMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch for {what}: expected {expected}, got {actual}"
            ),
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for extent {bound}")
            }
            TensorError::InvalidGroups {
                groups,
                what,
                channels,
            } => write!(
                f,
                "group count {groups} does not divide {what} = {channels}"
            ),
            TensorError::DilatedExtentTooLarge {
                extent,
                dilation,
                padded_input,
            } => write!(
                f,
                "dilated receptive extent {extent} (dilation {dilation}) exceeds padded input of extent {padded_input}"
            ),
            TensorError::InvalidFraction { what } => {
                write!(f, "invalid {what}: must be a fraction in [0, 1]")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TensorError::InvalidDimension {
            what: "filter size",
            value: 0,
        };
        assert_eq!(e.to_string(), "invalid filter size: 0");

        let e = TensorError::ShapeMismatch {
            what: "weight channels",
            expected: 3,
            actual: 4,
        };
        assert!(e.to_string().contains("weight channels"));
        assert!(e.to_string().contains("expected 3"));

        let e = TensorError::InvalidGroups {
            groups: 3,
            what: "ifmap channels (N)",
            channels: 8,
        };
        assert_eq!(
            e.to_string(),
            "group count 3 does not divide ifmap channels (N) = 8"
        );

        let e = TensorError::DilatedExtentTooLarge {
            extent: 11,
            dilation: 5,
            padded_input: 9,
        };
        assert!(e.to_string().contains("dilated receptive extent 11"));
        assert!(e.to_string().contains("padded input of extent 9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
