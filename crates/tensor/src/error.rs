use std::fmt;

/// Error type for tensor and layer-shape operations.
///
/// Returned by constructors that validate their arguments
/// ([`crate::shape::LayerShape::conv`], [`crate::conv::conv2d_f32`], …).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// A dimension was zero or otherwise out of the supported range.
    InvalidDimension {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: usize,
    },
    /// The filter does not fit inside the (padded) input.
    FilterTooLarge {
        /// Filter height/width.
        filter: usize,
        /// Padded input extent the filter was checked against.
        padded_input: usize,
    },
    /// Two tensors (or a tensor and a layer shape) disagree on a dimension.
    ShapeMismatch {
        /// What was being matched, e.g. `"weight channels"`.
        what: &'static str,
        /// Dimension the operation expected.
        expected: usize,
        /// Dimension that was provided.
        actual: usize,
    },
    /// An element index was outside the tensor bounds.
    IndexOutOfBounds {
        /// The flat index or offending coordinate.
        index: usize,
        /// The bound that was exceeded.
        bound: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::InvalidDimension { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            TensorError::FilterTooLarge {
                filter,
                padded_input,
            } => write!(
                f,
                "filter of extent {filter} does not fit padded input of extent {padded_input}"
            ),
            TensorError::ShapeMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch for {what}: expected {expected}, got {actual}"
            ),
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for extent {bound}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TensorError::InvalidDimension {
            what: "filter size",
            value: 0,
        };
        assert_eq!(e.to_string(), "invalid filter size: 0");

        let e = TensorError::ShapeMismatch {
            what: "weight channels",
            expected: 3,
            actual: 4,
        };
        assert!(e.to_string().contains("weight channels"));
        assert!(e.to_string().contains("expected 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
