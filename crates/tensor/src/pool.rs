//! Pooling, as performed by the TFE output memory system.
//!
//! The paper's architecture pools row by row: activations of one ofmap row
//! are first reduced horizontally (`1 × p` pooling through `Pool_Reg`),
//! then combined with the previous partial row read back from `O_Memory`
//! (Section IV, "Output Memory System"). The functions here compute the
//! same results in a tile-at-once manner; the simulator's memory model
//! reproduces the row-wise access pattern and checks against these.

use crate::tensor::Tensor4;
use crate::TensorError;

/// The pooling reduction to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Maximum over the window (used by AlexNet/VGG/GoogLeNet).
    Max,
    /// Arithmetic mean over the window (used by GoogLeNet/ResNet heads).
    Average,
}

/// Configuration of one pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolSpec {
    /// Reduction kind.
    pub kind: PoolKind,
    /// Square window extent (e.g. 2 for 2×2).
    pub window: usize,
    /// Stride between windows (commonly equal to `window`).
    pub stride: usize,
}

impl PoolSpec {
    /// A `window × window` pooling with stride equal to the window — the
    /// common non-overlapping configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `window` is zero.
    pub fn non_overlapping(kind: PoolKind, window: usize) -> Result<Self, TensorError> {
        if window == 0 {
            return Err(TensorError::InvalidDimension {
                what: "pool window",
                value: window,
            });
        }
        Ok(PoolSpec {
            kind,
            window,
            stride: window,
        })
    }

    /// Output extent given an input extent, discarding partial windows as
    /// the TFE's row-wise pooling does.
    #[must_use]
    pub fn out_extent(&self, input: usize) -> usize {
        if input < self.window {
            0
        } else {
            (input - self.window) / self.stride + 1
        }
    }
}

/// Applies pooling to every channel of every batch element.
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] if the input is smaller than
/// the pooling window.
pub fn pool2d(input: &Tensor4<f32>, spec: PoolSpec) -> Result<Tensor4<f32>, TensorError> {
    let [batch, channels, h, w] = input.dims();
    let (oh, ow) = (spec.out_extent(h), spec.out_extent(w));
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidDimension {
            what: "pool input extent",
            value: h.min(w),
        });
    }
    let mut out = Tensor4::zeros([batch, channels, oh, ow]);
    let win_len = (spec.window * spec.window) as f32;
    for b in 0..batch {
        for c in 0..channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = match spec.kind {
                        PoolKind::Max => f32::NEG_INFINITY,
                        PoolKind::Average => 0.0,
                    };
                    for ky in 0..spec.window {
                        for kx in 0..spec.window {
                            let v = input.get([b, c, oy * spec.stride + ky, ox * spec.stride + kx]);
                            match spec.kind {
                                PoolKind::Max => acc = acc.max(v),
                                PoolKind::Average => acc += v,
                            }
                        }
                    }
                    if spec.kind == PoolKind::Average {
                        acc /= win_len;
                    }
                    out.set([b, c, oy, ox], acc);
                }
            }
        }
    }
    Ok(out)
}

/// Row-wise pooling of a single ofmap row pair, mirroring the hardware's
/// `Pool_Reg` + `O_Memory` two-phase reduction for a 2×2 window.
///
/// `previous` is the horizontally-pooled previous row (as read back from
/// `O_Memory`); `current` is the freshly produced row. Returns the final
/// pooled row. Exposed so the simulator's memory system can be validated
/// against [`pool2d`].
#[must_use]
pub fn pool_rows_max(previous: &[f32], current: &[f32]) -> Vec<f32> {
    previous
        .iter()
        .zip(current)
        .map(|(&a, &b)| a.max(b))
        .collect()
}

/// Horizontal (`1 × 2`) max pooling of one row — the `Pool_Reg` phase.
#[must_use]
pub fn pool_row_horizontal_max(row: &[f32]) -> Vec<f32> {
    row.chunks_exact(2)
        .map(|pair| pair[0].max(pair[1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_2x2() {
        let input = Tensor4::from_fn([1, 1, 4, 4], |[_, _, y, x]| (y * 4 + x) as f32);
        let spec = PoolSpec::non_overlapping(PoolKind::Max, 2).unwrap();
        let out = pool2d(&input, spec).unwrap();
        assert_eq!(out.dims(), [1, 1, 2, 2]);
        assert_eq!(out.get([0, 0, 0, 0]), 5.0);
        assert_eq!(out.get([0, 0, 1, 1]), 15.0);
    }

    #[test]
    fn average_pool_2x2() {
        let input = Tensor4::from_fn([1, 1, 2, 2], |[_, _, y, x]| (y * 2 + x) as f32);
        let spec = PoolSpec::non_overlapping(PoolKind::Average, 2).unwrap();
        let out = pool2d(&input, spec).unwrap();
        assert_eq!(out.get([0, 0, 0, 0]), 1.5);
    }

    #[test]
    fn overlapping_pool_3x3_stride2() {
        // AlexNet-style overlapped pooling.
        let input = Tensor4::from_fn([1, 1, 5, 5], |[_, _, y, x]| (y * 5 + x) as f32);
        let spec = PoolSpec {
            kind: PoolKind::Max,
            window: 3,
            stride: 2,
        };
        let out = pool2d(&input, spec).unwrap();
        assert_eq!(out.dims(), [1, 1, 2, 2]);
        assert_eq!(out.get([0, 0, 0, 0]), 12.0);
        assert_eq!(out.get([0, 0, 1, 1]), 24.0);
    }

    #[test]
    fn partial_windows_discarded() {
        let spec = PoolSpec::non_overlapping(PoolKind::Max, 2).unwrap();
        assert_eq!(spec.out_extent(5), 2);
        assert_eq!(spec.out_extent(1), 0);
    }

    #[test]
    fn row_wise_pipeline_matches_tile_pool() {
        // Emulate the hardware's row-by-row 2x2 pooling on a 4x4 plane and
        // compare against the tile-at-once result.
        let input = Tensor4::from_fn([1, 1, 4, 4], |[_, _, y, x]| ((y * 7 + x * 3) % 11) as f32);
        let spec = PoolSpec::non_overlapping(PoolKind::Max, 2).unwrap();
        let expected = pool2d(&input, spec).unwrap();

        let plane = input.plane(0, 0);
        let mut pooled_rows = Vec::new();
        let mut o_memory: Option<Vec<f32>> = None;
        for row in plane.chunks_exact(4) {
            let horizontal = pool_row_horizontal_max(row);
            match o_memory.take() {
                None => o_memory = Some(horizontal),
                Some(prev) => pooled_rows.push(pool_rows_max(&prev, &horizontal)),
            }
        }
        let flat: Vec<f32> = pooled_rows.into_iter().flatten().collect();
        assert_eq!(flat, expected.plane(0, 0));
    }

    #[test]
    fn zero_window_rejected() {
        assert!(PoolSpec::non_overlapping(PoolKind::Max, 0).is_err());
    }

    #[test]
    fn too_small_input_rejected() {
        let input = Tensor4::zeros([1, 1, 1, 1]);
        let spec = PoolSpec::non_overlapping(PoolKind::Max, 2).unwrap();
        assert!(pool2d(&input, spec).is_err());
    }
}
