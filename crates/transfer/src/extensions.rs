//! The other two transferred-filter algorithms from Section II: CReLU and
//! MBA.
//!
//! The paper implements DCNN and SCNN on the TFE datapath and notes that
//! CReLU and MBA "can both compress the network size \[but\] are implemented
//! on the conventional CNN architecture through specific control logic".
//! We provide them as extensions: their compression arithmetic feeds the
//! factor-effectiveness analysis of Section V.E (they share the SCNN's
//! compression/acceleration behaviour on canonical layers), and their
//! functional semantics are available for the training substrate.

use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;

/// CReLU (concatenated ReLU, Shang et al. 2016): the layer stores `M/2`
/// filters; the other half are their negations, and the activation
/// concatenates positive and negative phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CRelu;

impl CRelu {
    /// Parameters stored for a layer of `M` effective filters: half the
    /// dense count (negated filters are derived).
    #[must_use]
    pub fn stored_params(shape: &LayerShape) -> u64 {
        shape.params().div_ceil(2)
    }

    /// Parameter reduction factor (2×).
    #[must_use]
    pub fn param_reduction() -> f64 {
        2.0
    }

    /// MACs on a negation-aware datapath: products for a filter and its
    /// negation differ only in sign, so each pair is computed once (2×).
    #[must_use]
    pub fn macs(shape: &LayerShape) -> u64 {
        shape.macs().div_ceil(2)
    }

    /// Expands the stored half-bank `[M/2, N, K, K]` into the effective
    /// `[M, N, K, K]` bank with negated copies.
    #[must_use]
    pub fn expand(stored: &Tensor4<f32>) -> Tensor4<f32> {
        let [half, n, kh, kw] = stored.dims();
        Tensor4::from_fn([2 * half, n, kh, kw], |[m, c, y, x]| {
            if m < half {
                stored.get([m, c, y, x])
            } else {
                -stored.get([m - half, c, y, x])
            }
        })
    }
}

/// MBA (multi-bias nonlinear activation, Li et al. 2016): one stored
/// filter serves `B` effective output maps that differ only in their bias
/// before the nonlinearity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mba {
    /// Number of biases (effective maps) per stored filter.
    pub biases: usize,
}

impl Mba {
    /// Creates an MBA configuration with `biases` effective maps per
    /// stored filter. The paper's typical configuration is 2–4.
    #[must_use]
    pub fn new(biases: usize) -> Self {
        Mba {
            biases: biases.max(1),
        }
    }

    /// Parameters stored: the filter bank shrinks by the bias multiplicity
    /// (bias storage itself is negligible: one scalar per map).
    #[must_use]
    pub fn stored_params(&self, shape: &LayerShape) -> u64 {
        shape.params().div_ceil(self.biases as u64)
    }

    /// MACs: the convolution for each stored filter runs once; adding a
    /// bias per effective map is not a MAC in the paper's accounting.
    #[must_use]
    pub fn macs(&self, shape: &LayerShape) -> u64 {
        shape.macs().div_ceil(self.biases as u64)
    }

    /// Applies the multi-bias expansion to one stored-filter response plane
    /// (pre-activation values), producing `biases` biased copies.
    #[must_use]
    pub fn expand_plane(&self, plane: &[f32], bias_values: &[f32]) -> Vec<Vec<f32>> {
        bias_values
            .iter()
            .take(self.biases)
            .map(|&b| plane.iter().map(|&v| v + b).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> LayerShape {
        LayerShape::conv("c", 4, 8, 8, 8, 3, 1, 1).unwrap()
    }

    #[test]
    fn crelu_halves_params_and_macs() {
        let shape = layer();
        assert_eq!(CRelu::stored_params(&shape) * 2, shape.params());
        assert_eq!(CRelu::macs(&shape) * 2, shape.macs());
        assert_eq!(CRelu::param_reduction(), 2.0);
    }

    #[test]
    fn crelu_expansion_negates_second_half() {
        let stored = Tensor4::from_fn([2, 1, 3, 3], |[m, _, y, x]| (m * 9 + y * 3 + x) as f32);
        let full = CRelu::expand(&stored);
        assert_eq!(full.dims(), [4, 1, 3, 3]);
        assert_eq!(full.get([2, 0, 1, 1]), -stored.get([0, 0, 1, 1]));
        assert_eq!(full.get([3, 0, 2, 2]), -stored.get([1, 0, 2, 2]));
    }

    #[test]
    fn mba_divides_by_bias_multiplicity() {
        let shape = layer();
        let mba = Mba::new(4);
        assert_eq!(mba.stored_params(&shape) * 4, shape.params());
        assert_eq!(mba.macs(&shape) * 4, shape.macs());
    }

    #[test]
    fn mba_expand_plane_applies_each_bias() {
        let mba = Mba::new(2);
        let planes = mba.expand_plane(&[1.0, 2.0], &[0.5, -0.5]);
        assert_eq!(planes, vec![vec![1.5, 2.5], vec![0.5, 1.5]]);
    }

    #[test]
    fn mba_zero_biases_clamped_to_one() {
        let mba = Mba::new(0);
        assert_eq!(mba.biases, 1);
    }
}
