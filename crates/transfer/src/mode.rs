//! Execution-mode policy: how a compiled engine chooses between its
//! dense, transferred, weight-repetition (UCNN-style factorized), and
//! compressed-sparse (EIE-style) run paths.
//!
//! The TFE premise — reuse is a property of the *weights*, computable
//! once at compile time — also covers the two comparator families the
//! paper measures against (PAPERS.md): UCNN's weight-repetition
//! factorization and EIE's compressed-sparse execution of pruned
//! models. [`ExecMode`] names the four executable paths and
//! [`ModePolicy`] is the pure decision function the engine's compile
//! pass (`tfe_sim::engine`'s `plan` module) evaluates per stage from
//! two weight statistics:
//!
//! * **sparsity** — the fraction of logical filter taps that quantized
//!   to exactly zero (magnitude pruning feeds this path via
//!   `tfe_baselines::SparseFilterBank::prune`);
//! * **repetition** — `1 − unique/nonzero` over the stage's quantized
//!   nonzero weight values: how much of the weight stream is repeated
//!   values a factorized dot product can share one multiply across.
//!
//! Every alternate mode is **bit-identical** to the dense path by
//! construction (see the engine's `plan` module for the exactness
//! arguments), so the policy is purely a performance choice — any
//! threshold setting is correct, which is what lets tests force every
//! mode everywhere.

use std::fmt;

/// The execution path one compiled stage runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Conventional dense row sweeps.
    Dense,
    /// Transferred-filter machinery (DCNN meta rows / SCNN orbits) —
    /// the paper's own reuse structure, chosen by the transfer scheme
    /// rather than by this policy.
    Transferred,
    /// UCNN-style factorized dot products: input activations grouped by
    /// shared quantized weight value, one multiply per unique weight.
    Factorized,
    /// EIE/CSR-style compressed-sparse row streams: only nonzero
    /// weights are stored (index + value) and swept.
    Sparse,
}

impl ExecMode {
    /// Stable lowercase label, used by telemetry rows and stats tables.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ExecMode::Dense => "dense",
            ExecMode::Transferred => "transferred",
            ExecMode::Factorized => "factorized",
            ExecMode::Sparse => "sparse",
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The per-stage mode decision function: thresholds over the two
/// compile-time weight statistics.
///
/// Both statistics live in `[0, 1]`, so a threshold above `1.0`
/// disables its mode entirely ([`ModePolicy::DENSE_ONLY`]) and a
/// threshold of `0.0` forces it wherever structurally possible
/// ([`ModePolicy::FORCE_SPARSE`] / [`ModePolicy::FORCE_FACTORIZED`] —
/// safe because every mode is bit-identical).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModePolicy {
    /// Minimum zero-tap fraction for a dense stage to compile to
    /// [`ExecMode::Sparse`]. Checked first: skipping work beats sharing
    /// multiplies.
    pub sparse_threshold: f64,
    /// Minimum repeated-value fraction (`1 − unique/nonzero`) for a
    /// dense stage to compile to [`ExecMode::Factorized`].
    pub factorize_threshold: f64,
}

impl ModePolicy {
    /// Never leaves the dense/transferred paths — the baseline side of
    /// every mode-parity comparison and `engine_modes` bench cell.
    pub const DENSE_ONLY: ModePolicy = ModePolicy {
        sparse_threshold: 2.0,
        factorize_threshold: 2.0,
    };

    /// Compiles every dense stage to the compressed-sparse path.
    pub const FORCE_SPARSE: ModePolicy = ModePolicy {
        sparse_threshold: 0.0,
        factorize_threshold: 2.0,
    };

    /// Compiles every dense stage to the factorized path.
    pub const FORCE_FACTORIZED: ModePolicy = ModePolicy {
        sparse_threshold: 2.0,
        factorize_threshold: 0.0,
    };

    /// Chooses the mode for a dense-weight stage from its compile-time
    /// weight statistics. Transferred stages never reach this decision
    /// (their mode is fixed by the transfer scheme).
    #[must_use]
    pub fn decide(&self, sparsity: f64, repetition: f64) -> ExecMode {
        if sparsity >= self.sparse_threshold {
            ExecMode::Sparse
        } else if repetition >= self.factorize_threshold {
            ExecMode::Factorized
        } else {
            ExecMode::Dense
        }
    }
}

impl Default for ModePolicy {
    /// Sparse wins from 40% zero taps (half the bench's lightest
    /// pruning level, with quantization-induced zeros on top);
    /// factorization needs 75% repeated values (≥ 4 taps sharing each
    /// multiply on average) before the gather overhead pays.
    fn default() -> Self {
        ModePolicy {
            sparse_threshold: 0.4,
            factorize_threshold: 0.75,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_picks_each_mode() {
        let p = ModePolicy::default();
        assert_eq!(p.decide(0.0, 0.0), ExecMode::Dense);
        assert_eq!(p.decide(0.9, 0.0), ExecMode::Sparse);
        assert_eq!(p.decide(0.0, 0.9), ExecMode::Factorized);
        // Sparsity is checked first when both qualify.
        assert_eq!(p.decide(0.9, 0.9), ExecMode::Sparse);
    }

    #[test]
    fn forcing_policies_cover_the_whole_statistic_range() {
        for stats in [(0.0, 0.0), (1.0, 1.0), (0.3, 0.7)] {
            assert_eq!(
                ModePolicy::DENSE_ONLY.decide(stats.0, stats.1),
                ExecMode::Dense
            );
            assert_eq!(
                ModePolicy::FORCE_SPARSE.decide(stats.0, stats.1),
                ExecMode::Sparse
            );
            assert_eq!(
                ModePolicy::FORCE_FACTORIZED.decide(stats.0, stats.1),
                ExecMode::Factorized
            );
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ExecMode::Dense.as_str(), "dense");
        assert_eq!(ExecMode::Transferred.to_string(), "transferred");
        assert_eq!(ExecMode::Factorized.as_str(), "factorized");
        assert_eq!(ExecMode::Sparse.as_str(), "sparse");
    }
}
