//! Converting a trained dense network into transferred form.
//!
//! The paper converts networks *before* training ("networks are first
//! converted to the transferred filter-based networks and pre-trained",
//! Section V.A) — the `tfe-train` crate does that with weight tying. For
//! post-hoc conversion of an already-trained dense bank (useful in the
//! examples and as an initialization for fine-tuning), this module fits
//! the compressed representation by least squares:
//!
//! * **DCNN** — each meta-filter weight is the mean of all dense-filter
//!   weights that map onto it under the translation structure (the exact
//!   least-squares solution, since each meta weight appears with
//!   coefficient 1 in each constraint).
//! * **SCNN** — each base is the mean of the orbit members re-aligned to
//!   the base orientation (the least-squares projection onto the tied
//!   weight space).

use crate::d4::D4;
use crate::layer::TransferredLayer;
use crate::meta::MetaFilter;
use crate::scheme::TransferScheme;
use crate::scnn::{transform_channels, Orientation, ScnnGroup, ORBIT, ORIENTATIONS};
use crate::TransferError;
use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;

/// Fits a transferred representation to a dense `[M, N/groups, K, K]`
/// bank under `scheme` (least-squares projection; see module docs).
///
/// Untransferable layers — including depth-wise and grouped geometry —
/// are returned dense and unchanged.
///
/// # Errors
///
/// Returns [`TransferError::DataLengthMismatch`] if the bank disagrees
/// with `shape`.
pub fn fit_layer(
    weights: &Tensor4<f32>,
    shape: &LayerShape,
    scheme: TransferScheme,
) -> Result<TransferredLayer, TransferError> {
    let dims = weights.dims();
    if dims != [shape.m(), shape.channels_per_group(), shape.k(), shape.k()] {
        return Err(TransferError::DataLengthMismatch {
            expected: shape.m() * shape.channels_per_group() * shape.k() * shape.k(),
            actual: weights.len(),
        });
    }
    if !scheme.applies_to(shape) {
        return Ok(TransferredLayer::Dense {
            weights: weights.clone(),
        });
    }
    match scheme {
        TransferScheme::Dcnn { .. } => {
            let z = scheme
                .effective_meta(shape.k())
                .expect("applies_to implies effective meta");
            fit_dcnn(weights, shape, z)
        }
        TransferScheme::Scnn => fit_scnn(weights, shape),
    }
}

fn fit_dcnn(
    weights: &Tensor4<f32>,
    shape: &LayerShape,
    z: usize,
) -> Result<TransferredLayer, TransferError> {
    let k = shape.k();
    let per_axis = z - k + 1;
    let group = per_axis * per_axis;
    let meta_count = shape.m().div_ceil(group);
    let mut metas = Vec::with_capacity(meta_count);
    for g in 0..meta_count {
        // Accumulate each dense filter of this group into its window of
        // the meta grid, then average by coverage count.
        let mut sums = vec![0.0f64; shape.n() * z * z];
        let mut counts = vec![0u32; shape.n() * z * z];
        for (slot, m) in (g * group..((g + 1) * group).min(shape.m())).enumerate() {
            let (dy, dx) = (slot / per_axis, slot % per_axis);
            for c in 0..shape.n() {
                for y in 0..k {
                    for x in 0..k {
                        let idx = c * z * z + (dy + y) * z + (dx + x);
                        sums[idx] += f64::from(weights.get([m, c, y, x]));
                        counts[idx] += 1;
                    }
                }
            }
        }
        let data: Vec<f32> = sums
            .iter()
            .zip(&counts)
            .map(|(&s, &n)| {
                if n == 0 {
                    0.0
                } else {
                    (s / f64::from(n)) as f32
                }
            })
            .collect();
        metas.push(MetaFilter::new(shape.n(), z, data)?);
    }
    Ok(TransferredLayer::Dcnn {
        k,
        m: shape.m(),
        metas,
    })
}

fn fit_scnn(weights: &Tensor4<f32>, shape: &LayerShape) -> Result<TransferredLayer, TransferError> {
    let (n, k) = (shape.n(), shape.k());
    let per = n * k * k;
    let group_count = shape.m().div_ceil(ORBIT);
    let mut groups = Vec::with_capacity(group_count);
    for g in 0..group_count {
        let mut sums = [vec![0.0f64; per], vec![0.0f64; per]];
        let mut counts = [0u32; 2];
        for (slot, m) in (g * ORBIT..((g + 1) * ORBIT).min(shape.m())).enumerate() {
            let orientation = ORIENTATIONS[slot];
            let o = Orientation::of(orientation);
            // Re-align this member back to its base orientation.
            let member: Vec<f32> = (0..per)
                .map(|i| {
                    let c = i / (k * k);
                    let y = (i % (k * k)) / k;
                    let x = i % k;
                    weights.get([m, c, y, x])
                })
                .collect();
            let aligned = transform_channels(&member, n, k, base_inverse(orientation));
            for (s, v) in sums[o.base].iter_mut().zip(&aligned) {
                *s += f64::from(*v);
            }
            counts[o.base] += 1;
        }
        let base_vec = |idx: usize| -> Vec<f32> {
            sums[idx]
                .iter()
                .map(|&s| {
                    if counts[idx] == 0 {
                        0.0
                    } else {
                        (s / f64::from(counts[idx])) as f32
                    }
                })
                .collect()
        };
        let base0 = base_vec(0);
        let base1 = if counts[1] == 0 {
            transform_channels(&base0, n, k, D4::Rot90)
        } else {
            base_vec(1)
        };
        groups.push(ScnnGroup::from_bases(n, k, base0, base1)?);
    }
    Ok(TransferredLayer::Scnn {
        m: shape.m(),
        groups,
    })
}

/// The transformation taking orbit member `g` back to its stored base
/// orientation (inverse of the flips applied after the base).
fn base_inverse(g: D4) -> D4 {
    let (base, flip_h, flip_v) = g.decompose();
    // member = base then flips; aligned = member with flips undone.
    let mut undo = D4::Id;
    if flip_v {
        undo = undo.then(D4::FlipV);
    }
    if flip_h {
        undo = undo.then(D4::FlipH);
    }
    debug_assert_eq!(base.then(D4::Id), base);
    undo
}

/// Root-mean-square error between a dense bank and the expansion of its
/// fitted transferred representation — the compression fidelity metric
/// used by the examples.
///
/// # Errors
///
/// Propagates errors from [`fit_layer`] and expansion.
pub fn fit_rmse(
    weights: &Tensor4<f32>,
    shape: &LayerShape,
    scheme: TransferScheme,
) -> Result<f64, TransferError> {
    let fitted = fit_layer(weights, shape, scheme)?;
    let expanded = fitted.expand_to_dense()?;
    let mut sum = 0.0f64;
    for (idx, v) in weights.indexed_iter() {
        let d = f64::from(v - expanded.get(idx));
        sum += d * d;
    }
    Ok((sum / weights.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(seed: &mut u32) -> f32 {
        *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
        ((*seed >> 16) as f32 / 65536.0) - 0.5
    }

    #[test]
    fn fitting_an_exactly_transferred_bank_is_lossless_dcnn() {
        let shape = LayerShape::conv("c", 2, 8, 8, 8, 3, 1, 1).unwrap();
        let mut seed = 41;
        let layer =
            TransferredLayer::random(&shape, TransferScheme::DCNN4, || det(&mut seed)).unwrap();
        let dense = layer.expand_to_dense().unwrap();
        let rmse = fit_rmse(&dense, &shape, TransferScheme::DCNN4).unwrap();
        assert!(rmse < 1e-6, "rmse = {rmse}");
    }

    #[test]
    fn fitting_an_exactly_transferred_bank_is_lossless_scnn() {
        let shape = LayerShape::conv("c", 2, 8, 8, 8, 3, 1, 1).unwrap();
        let mut seed = 43;
        let layer =
            TransferredLayer::random(&shape, TransferScheme::Scnn, || det(&mut seed)).unwrap();
        let dense = layer.expand_to_dense().unwrap();
        let rmse = fit_rmse(&dense, &shape, TransferScheme::Scnn).unwrap();
        assert!(rmse < 1e-6, "rmse = {rmse}");
    }

    #[test]
    fn fitting_random_weights_is_lossy_but_bounded() {
        let shape = LayerShape::conv("c", 2, 8, 8, 8, 3, 1, 1).unwrap();
        let weights = Tensor4::from_fn([8, 2, 3, 3], |[m, c, y, x]| {
            ((m * 131 + c * 31 + y * 7 + x) % 13) as f32 / 13.0 - 0.5
        });
        let rmse = fit_rmse(&weights, &shape, TransferScheme::DCNN4).unwrap();
        assert!(rmse > 0.0);
        // Projection can never exceed the data's own RMS.
        let rms: f64 = (weights
            .as_slice()
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            / weights.len() as f64)
            .sqrt();
        assert!(rmse <= rms + 1e-9);
    }

    #[test]
    fn fit_preserves_filter_count_with_partial_groups() {
        let shape = LayerShape::conv("c", 1, 10, 8, 8, 3, 1, 1).unwrap();
        let weights = Tensor4::from_fn([10, 1, 3, 3], |[m, _, y, x]| (m + y + x) as f32);
        let fitted = fit_layer(&weights, &shape, TransferScheme::Scnn).unwrap();
        assert_eq!(fitted.filters(), 10);
        assert_eq!(fitted.expand_to_dense().unwrap().dims()[0], 10);
    }

    #[test]
    fn pointwise_fit_returns_dense_unchanged() {
        let shape = LayerShape::conv("pw", 4, 4, 8, 8, 1, 1, 0).unwrap();
        let weights = Tensor4::from_fn([4, 4, 1, 1], |[m, c, _, _]| (m * 4 + c) as f32);
        let fitted = fit_layer(&weights, &shape, TransferScheme::DCNN6).unwrap();
        assert_eq!(fitted, TransferredLayer::Dense { weights });
    }

    #[test]
    fn wrong_bank_shape_rejected() {
        let shape = LayerShape::conv("c", 2, 8, 8, 8, 3, 1, 1).unwrap();
        let weights = Tensor4::<f32>::zeros([8, 2, 5, 5]);
        assert!(fit_layer(&weights, &shape, TransferScheme::DCNN4).is_err());
    }
}
