use std::fmt;

/// Error type for transferred-filter construction and conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransferError {
    /// The meta filter extent `Z` is smaller than the effective filter
    /// extent `K`, so no transferred filter can be extracted.
    MetaSmallerThanFilter {
        /// Meta filter extent.
        z: usize,
        /// Effective filter extent.
        k: usize,
    },
    /// The layer kind cannot be transferred (1×1, depth-wise, FC). The TFE
    /// runs such layers in conventional mode instead; constructing a
    /// transferred representation for them is a caller bug.
    NotTransferable {
        /// Why the layer is untransferable.
        reason: &'static str,
    },
    /// A raw-data constructor received a buffer of the wrong length.
    DataLengthMismatch {
        /// Required element count.
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// An extent parameter was zero.
    ZeroExtent {
        /// Name of the offending parameter.
        what: &'static str,
    },
    /// A filter-count does not fit the scheme's grouping (e.g. the caller
    /// asked for more transferred filters than a meta filter provides).
    GroupingMismatch {
        /// Description of the violated constraint.
        what: &'static str,
        /// The number of filters requested.
        requested: usize,
        /// The number available under the scheme.
        available: usize,
    },
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::MetaSmallerThanFilter { z, k } => {
                write!(
                    f,
                    "meta filter extent {z} is smaller than filter extent {k}"
                )
            }
            TransferError::NotTransferable { reason } => {
                write!(f, "layer cannot be transferred: {reason}")
            }
            TransferError::DataLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length mismatch: expected {expected} elements, got {actual}"
                )
            }
            TransferError::ZeroExtent { what } => write!(f, "{what} must be nonzero"),
            TransferError::GroupingMismatch {
                what,
                requested,
                available,
            } => write!(
                f,
                "grouping mismatch ({what}): requested {requested}, available {available}"
            ),
        }
    }
}

impl std::error::Error for TransferError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TransferError::MetaSmallerThanFilter { z: 2, k: 3 };
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: Send + Sync + 'static>() {}
        check::<TransferError>();
    }
}
