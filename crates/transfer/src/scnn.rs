//! SCNN symmetry orbits (Fig. 2(b) of the paper).
//!
//! An SCNN group derives eight effective filters — the D4 orbit — from two
//! *stored* base filters: the original orientation and its 90° rotation.
//! The six remaining orientations are recovered in hardware for free:
//! horizontal flips by PPSR, vertical flips by ERRR, and the 180°/270°
//! rotations by both together (Section V.E: "either technique can only
//! accelerate two of eight filters").

use crate::d4::{transform_grid, D4};
use crate::TransferError;
use tfe_tensor::tensor::Tensor4;

/// Number of orientations in a full SCNN orbit.
pub const ORBIT: usize = 8;

/// Number of base filters the engine stores per orbit (identity and 90°).
pub const STORED_BASES: usize = 2;

/// The eight orbit orientations in the order the TFE emits their ofmaps.
///
/// The order interleaves the two stored bases with their derived flips so
/// that index `i` maps to `(base = i / 4, flips = i % 4)`.
pub const ORIENTATIONS: [D4; ORBIT] = [
    D4::Id,
    D4::FlipH,
    D4::FlipV,
    D4::Rot180,
    D4::Rot90,
    D4::FlipA,
    D4::FlipD,
    D4::Rot270,
];

/// How one orbit member is obtained from its stored base — which reuse
/// machinery the datapath needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Orientation {
    /// Index of the stored base filter (0 = identity, 1 = 90° rotation).
    pub base: usize,
    /// Derived through PPSR's horizontal-symmetric partial-sum reuse.
    pub flip_h: bool,
    /// Derived through ERRR's vertical (entire-row) result reuse.
    pub flip_v: bool,
}

impl Orientation {
    /// Classifies a D4 element relative to the stored bases.
    #[must_use]
    pub fn of(g: D4) -> Orientation {
        let (base, flip_h, flip_v) = g.decompose();
        Orientation {
            base: usize::from(base == D4::Rot90),
            flip_h,
            flip_v,
        }
    }

    /// Whether this orientation requires no derivation (it *is* a stored
    /// base, so the PE array computes it directly).
    #[must_use]
    pub fn is_stored(self) -> bool {
        !self.flip_h && !self.flip_v
    }
}

/// One SCNN group: the stored base filters of a single orbit.
///
/// Each base is an `N`-channel `K × K` filter in channel-major, row-major
/// layout, exactly as [`crate::meta::MetaFilter`] stores weights.
#[derive(Debug, Clone, PartialEq)]
pub struct ScnnGroup {
    channels: usize,
    k: usize,
    /// Base 0: the original orientation.
    base0: Vec<f32>,
    /// Base 1: the 90°-rotated orientation (stored explicitly because the
    /// row-wise datapath cannot derive a rotation from row partial sums).
    base1: Vec<f32>,
}

impl ScnnGroup {
    /// Creates a group from the identity-orientation base filter; the 90°
    /// base is derived (as it would be at network-conversion time).
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::ZeroExtent`] for zero extents or
    /// [`TransferError::DataLengthMismatch`] for a bad buffer length.
    pub fn from_base(channels: usize, k: usize, base0: Vec<f32>) -> Result<Self, TransferError> {
        if channels == 0 {
            return Err(TransferError::ZeroExtent {
                what: "group channels",
            });
        }
        if k == 0 {
            return Err(TransferError::ZeroExtent {
                what: "filter extent",
            });
        }
        let expected = channels * k * k;
        if base0.len() != expected {
            return Err(TransferError::DataLengthMismatch {
                expected,
                actual: base0.len(),
            });
        }
        let base1 = transform_channels(&base0, channels, k, D4::Rot90);
        Ok(ScnnGroup {
            channels,
            k,
            base0,
            base1,
        })
    }

    /// Creates a group with two independently trained bases (the general
    /// case: SCNN training ties weights within, not across, rotations).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ScnnGroup::from_base`], checked for both
    /// buffers.
    pub fn from_bases(
        channels: usize,
        k: usize,
        base0: Vec<f32>,
        base1: Vec<f32>,
    ) -> Result<Self, TransferError> {
        let mut group = Self::from_base(channels, k, base0)?;
        let expected = channels * k * k;
        if base1.len() != expected {
            return Err(TransferError::DataLengthMismatch {
                expected,
                actual: base1.len(),
            });
        }
        group.base1 = base1;
        Ok(group)
    }

    /// Number of channels (`N`).
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Filter extent (`K`).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The stored base filter for `index` ∈ {0, 1}.
    ///
    /// # Panics
    ///
    /// Panics if `index > 1`.
    #[must_use]
    pub fn base(&self, index: usize) -> &[f32] {
        match index {
            0 => &self.base0,
            1 => &self.base1,
            other => panic!("SCNN group has 2 stored bases, index {other} requested"),
        }
    }

    /// Stored parameter count: `2 × N × K²` per orbit of 8 — the paper's
    /// 4× SCNN parameter reduction.
    #[must_use]
    pub fn stored_params(&self) -> usize {
        self.base0.len() + self.base1.len()
    }

    /// Materializes the orbit member with the given orientation index
    /// (see [`ORIENTATIONS`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    #[must_use]
    pub fn orient(&self, index: usize) -> Vec<f32> {
        let g = ORIENTATIONS[index];
        let o = Orientation::of(g);
        let base = self.base(o.base);
        let mut out = base.to_vec();
        if o.flip_h {
            out = transform_channels(&out, self.channels, self.k, D4::FlipH);
        }
        if o.flip_v {
            out = transform_channels(&out, self.channels, self.k, D4::FlipV);
        }
        out
    }

    /// Expands the full orbit into a dense `[8, N, K, K]` filter bank in
    /// [`ORIENTATIONS`] order.
    #[must_use]
    pub fn expand(&self) -> Tensor4<f32> {
        let mut data = Vec::with_capacity(ORBIT * self.channels * self.k * self.k);
        for i in 0..ORBIT {
            data.extend(self.orient(i));
        }
        Tensor4::from_vec([ORBIT, self.channels, self.k, self.k], data)
            .expect("orbit expansion has 8 * channels * k * k elements by construction")
    }
}

/// Applies a D4 transformation channel-by-channel to a channel-major bank
/// of `k × k` grids.
#[must_use]
pub fn transform_channels(data: &[f32], channels: usize, k: usize, g: D4) -> Vec<f32> {
    let per = k * k;
    debug_assert_eq!(data.len(), channels * per);
    let mut out = Vec::with_capacity(data.len());
    for c in 0..channels {
        out.extend(transform_grid(&data[c * per..(c + 1) * per], k, g));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_group() -> ScnnGroup {
        let base: Vec<f32> = (0..18).map(|v| v as f32).collect();
        ScnnGroup::from_base(2, 3, base).unwrap()
    }

    #[test]
    fn orbit_and_storage_constants_match_paper() {
        assert_eq!(ORBIT, 8);
        assert_eq!(STORED_BASES, 2);
        // Parameter reduction = 8 filters / 2 stored = 4x (Fig. 17).
        assert_eq!(ORBIT / STORED_BASES, 4);
    }

    #[test]
    fn orientation_classification() {
        // Exactly two orientations are stored directly.
        let stored = ORIENTATIONS
            .iter()
            .filter(|&&g| Orientation::of(g).is_stored())
            .count();
        assert_eq!(stored, STORED_BASES);
        // PPSR alone (flip_h, no flip_v) derives exactly two of eight.
        let ppsr_only = ORIENTATIONS
            .iter()
            .map(|&g| Orientation::of(g))
            .filter(|o| o.flip_h && !o.flip_v)
            .count();
        assert_eq!(ppsr_only, 2);
        // ERRR alone derives exactly two of eight.
        let errr_only = ORIENTATIONS
            .iter()
            .map(|&g| Orientation::of(g))
            .filter(|o| !o.flip_h && o.flip_v)
            .count();
        assert_eq!(errr_only, 2);
        // The 180/270 rotations need both (the paper's observation).
        let both = ORIENTATIONS
            .iter()
            .map(|&g| Orientation::of(g))
            .filter(|o| o.flip_h && o.flip_v)
            .count();
        assert_eq!(both, 2);
    }

    #[test]
    fn orient_matches_direct_d4_action() {
        let group = counting_group();
        for (i, &g) in ORIENTATIONS.iter().enumerate() {
            let expected = transform_channels(group.base(0), 2, 3, g);
            let got = group.orient(i);
            // Orientations deriving from base 1 only match when base1 is
            // the rotation of base0 (true for from_base construction).
            assert_eq!(got, expected, "orientation {g:?}");
        }
    }

    #[test]
    fn independent_bases_are_respected() {
        let base0: Vec<f32> = (0..9).map(|v| v as f32).collect();
        let base1: Vec<f32> = (0..9).map(|v| (v * v) as f32).collect();
        let group = ScnnGroup::from_bases(1, 3, base0.clone(), base1.clone()).unwrap();
        assert_eq!(group.orient(0), base0);
        assert_eq!(group.orient(4), base1);
        // FlipA = flipH of base1 under our decomposition.
        assert_eq!(group.orient(5), transform_channels(&base1, 1, 3, D4::FlipH));
    }

    #[test]
    fn expand_has_eight_distinct_filters_for_asymmetric_base() {
        let group = counting_group();
        let bank = group.expand();
        assert_eq!(bank.dims(), [8, 2, 3, 3]);
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for m in 0..8 {
            let key: Vec<i64> = (0..2)
                .flat_map(|c| (0..3).flat_map(move |y| (0..3).map(move |x| (c, y, x))))
                .map(|(c, y, x)| bank.get([m, c, y, x]) as i64)
                .collect();
            seen.insert(key);
        }
        assert_eq!(seen.len(), 8, "counting base has a trivial stabilizer");
    }

    #[test]
    fn stored_params_give_4x_reduction() {
        let group = counting_group();
        let dense_params = ORBIT * 2 * 9;
        assert_eq!(dense_params / group.stored_params(), 4);
    }

    #[test]
    fn symmetric_base_collapses_orbit() {
        // A fully symmetric filter (all ones) yields identical orientations
        // — the degenerate case the engine must still handle.
        let group = ScnnGroup::from_base(1, 3, vec![1.0; 9]).unwrap();
        for i in 1..8 {
            assert_eq!(group.orient(i), group.orient(0));
        }
    }

    #[test]
    fn constructor_validates() {
        assert!(ScnnGroup::from_base(0, 3, vec![]).is_err());
        assert!(ScnnGroup::from_base(1, 0, vec![]).is_err());
        assert!(ScnnGroup::from_base(1, 3, vec![0.0; 8]).is_err());
        assert!(ScnnGroup::from_bases(1, 3, vec![0.0; 9], vec![0.0; 8]).is_err());
    }
}
