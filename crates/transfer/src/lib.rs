//! Transferred-filter algorithms (Section II of the TFE paper).
//!
//! Transferred-filter methods compress a CNN by storing a small set of
//! *source* parameters from which many effective filters are derived by a
//! cheap geometric transformation:
//!
//! * **DCNN** (doubly convolutional, Zhai et al. 2016) — a `Z × Z` *meta
//!   filter* stores the weights; every `K × K` window of it (there are
//!   `(Z−K+1)²`) is one *transferred filter*. See [`meta`].
//! * **SCNN** (symmetry CNN, Cohen & Welling 2016) — a base filter's D4
//!   orbit (rotations by 90° and horizontal/vertical flips) supplies eight
//!   orientations from two stored bases. See [`scnn`] and [`d4`].
//! * **CReLU** and **MBA** — filter negation and multi-bias variants,
//!   provided as extensions in [`extensions`].
//!
//! [`layer::TransferredLayer`] is the structural representation shared with
//! the simulator; [`layer::TransferredLayer::expand_to_dense`] recovers the
//! equivalent dense filter bank, which is the oracle used everywhere to
//! prove the redundancy-elimination machinery computes the right values.
//! [`analysis`] implements the paper's closed-form compression formulas
//! (Eq. 1–5).
//!
//! # Example
//!
//! ```
//! use tfe_transfer::analysis;
//!
//! // Paper Eq. 4/5 at Z = 6, K = 3: a 4x parameter and MAC reduction.
//! assert_eq!(analysis::dcnn_param_reduction(6, 3), 4.0);
//! assert_eq!(analysis::dcnn_mac_reduction(6, 3), 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod d4;
pub mod extensions;
pub mod fit;
pub mod layer;
pub mod meta;
pub mod mode;
pub mod scheme;
pub mod scnn;

mod error;

pub use error::TransferError;
pub use mode::{ExecMode, ModePolicy};
pub use scheme::{Policy, TransferScheme};
