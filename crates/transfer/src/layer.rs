//! The structural representation of one transferred layer.
//!
//! [`TransferredLayer`] is what the TFE weight memory holds for a layer:
//! either the dense filter bank (conventional mode) or the compressed
//! source parameters (meta filters / SCNN bases). Its
//! [`expand_to_dense`](TransferredLayer::expand_to_dense) method recovers
//! the mathematically equivalent dense bank — the oracle used by the
//! simulator's correctness tests.

use crate::meta::MetaFilter;
use crate::scheme::TransferScheme;
use crate::scnn::ScnnGroup;
use crate::TransferError;
use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;

/// A layer's weights in transferred (or dense) form.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferredLayer {
    /// Conventional dense weights `[M, N/groups, K, K]` — untransferable
    /// layers and layers the per-layer policy keeps dense (AlexNet conv1,
    /// depth-wise and grouped geometry).
    Dense {
        /// The dense filter bank.
        weights: Tensor4<f32>,
    },
    /// DCNN: a list of meta filters, each yielding `(Z−K+1)²` transferred
    /// filters; the final meta filter may be partially used when `M` is
    /// not a multiple of the group size.
    Dcnn {
        /// Effective filter extent `K`.
        k: usize,
        /// Total number of effective filters `M`.
        m: usize,
        /// The stored meta filters.
        metas: Vec<MetaFilter>,
    },
    /// SCNN: a list of orbit groups, each yielding eight oriented filters;
    /// the final group may be partially used.
    Scnn {
        /// Total number of effective filters `M`.
        m: usize,
        /// The stored orbit groups (two bases each).
        groups: Vec<ScnnGroup>,
    },
}

impl TransferredLayer {
    /// Number of stored parameters — what the weight memory holds.
    #[must_use]
    pub fn stored_params(&self) -> u64 {
        match self {
            TransferredLayer::Dense { weights } => weights.len() as u64,
            TransferredLayer::Dcnn { metas, .. } => {
                metas.iter().map(|m| m.stored_params() as u64).sum()
            }
            TransferredLayer::Scnn { groups, .. } => {
                groups.iter().map(|g| g.stored_params() as u64).sum()
            }
        }
    }

    /// Number of effective filters (`M`).
    #[must_use]
    pub fn filters(&self) -> usize {
        match self {
            TransferredLayer::Dense { weights } => weights.dims()[0],
            TransferredLayer::Dcnn { m, .. } | TransferredLayer::Scnn { m, .. } => *m,
        }
    }

    /// Whether the layer runs in transferred mode on the TFE.
    #[must_use]
    pub fn is_transferred(&self) -> bool {
        !matches!(self, TransferredLayer::Dense { .. })
    }

    /// Expands to the mathematically equivalent dense `[M, N, K, K]` bank.
    ///
    /// This is the oracle: convolving the input with this bank must produce
    /// the same ofmaps as the TFE's reuse machinery.
    ///
    /// # Errors
    ///
    /// Returns a [`TransferError`] if the stored representation is
    /// internally inconsistent (wrong channel counts or extents).
    pub fn expand_to_dense(&self) -> Result<Tensor4<f32>, TransferError> {
        match self {
            TransferredLayer::Dense { weights } => Ok(weights.clone()),
            TransferredLayer::Dcnn { k, m, metas } => {
                let first = metas.first().ok_or(TransferError::GroupingMismatch {
                    what: "meta filter list",
                    requested: *m,
                    available: 0,
                })?;
                let channels = first.channels();
                let mut data = Vec::with_capacity(m * channels * k * k);
                let mut produced = 0usize;
                'outer: for meta in metas {
                    if meta.channels() != channels {
                        return Err(TransferError::GroupingMismatch {
                            what: "meta filter channel count",
                            requested: meta.channels(),
                            available: channels,
                        });
                    }
                    let per_axis = meta.offsets_per_axis(*k)?;
                    for dy in 0..per_axis {
                        for dx in 0..per_axis {
                            if produced == *m {
                                break 'outer;
                            }
                            data.extend(meta.extract(*k, dy, dx)?);
                            produced += 1;
                        }
                    }
                }
                if produced < *m {
                    return Err(TransferError::GroupingMismatch {
                        what: "effective filters from meta filters",
                        requested: *m,
                        available: produced,
                    });
                }
                Tensor4::from_vec([*m, channels, *k, *k], data).map_err(|_| {
                    TransferError::DataLengthMismatch {
                        expected: m * channels * k * k,
                        actual: 0,
                    }
                })
            }
            TransferredLayer::Scnn { m, groups } => {
                let first = groups.first().ok_or(TransferError::GroupingMismatch {
                    what: "SCNN group list",
                    requested: *m,
                    available: 0,
                })?;
                let (channels, k) = (first.channels(), first.k());
                let mut data = Vec::with_capacity(m * channels * k * k);
                let mut produced = 0usize;
                'outer: for group in groups {
                    if group.channels() != channels || group.k() != k {
                        return Err(TransferError::GroupingMismatch {
                            what: "SCNN group geometry",
                            requested: group.channels() * group.k(),
                            available: channels * k,
                        });
                    }
                    for i in 0..crate::scnn::ORBIT {
                        if produced == *m {
                            break 'outer;
                        }
                        data.extend(group.orient(i));
                        produced += 1;
                    }
                }
                if produced < *m {
                    return Err(TransferError::GroupingMismatch {
                        what: "effective filters from SCNN groups",
                        requested: *m,
                        available: produced,
                    });
                }
                Tensor4::from_vec([*m, channels, k, k], data).map_err(|_| {
                    TransferError::DataLengthMismatch {
                        expected: m * channels * k * k,
                        actual: 0,
                    }
                })
            }
        }
    }

    /// Builds a randomly-initialized transferred layer for `shape` under
    /// `scheme` (drawing weights from `next` — typically a closure over an
    /// RNG). Layers the scheme does not transfer — pointwise, FC,
    /// oversized filters, and now depth-wise/grouped geometry — come back
    /// dense with a `[M, N/groups, K, K]` bank.
    ///
    /// # Errors
    ///
    /// Returns [`TransferError`] if the transferred representation cannot
    /// be constructed (internally inconsistent group geometry).
    pub fn random(
        shape: &LayerShape,
        scheme: TransferScheme,
        mut next: impl FnMut() -> f32,
    ) -> Result<Self, TransferError> {
        if !scheme.applies_to(shape) {
            let weights = Tensor4::from_fn(
                [shape.m(), shape.channels_per_group(), shape.k(), shape.k()],
                |_| next(),
            );
            return Ok(TransferredLayer::Dense { weights });
        }
        match scheme {
            TransferScheme::Dcnn { .. } => {
                let z = scheme
                    .effective_meta(shape.k())
                    .expect("applies_to implies effective meta");
                let group = scheme.group_size(shape.k());
                let meta_count = shape.m().div_ceil(group);
                let metas = (0..meta_count)
                    .map(|_| MetaFilter::from_fn(shape.n(), z, |_, _, _| next()))
                    .collect();
                Ok(TransferredLayer::Dcnn {
                    k: shape.k(),
                    m: shape.m(),
                    metas,
                })
            }
            TransferScheme::Scnn => {
                let group_count = shape.m().div_ceil(crate::scnn::ORBIT);
                let per = shape.n() * shape.k() * shape.k();
                let groups = (0..group_count)
                    .map(|_| {
                        let base0: Vec<f32> = (0..per).map(|_| next()).collect();
                        let base1: Vec<f32> = (0..per).map(|_| next()).collect();
                        ScnnGroup::from_bases(shape.n(), shape.k(), base0, base1)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(TransferredLayer::Scnn {
                    m: shape.m(),
                    groups,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_tensor::conv::conv2d_f32;

    fn det(seed: &mut u32) -> f32 {
        // Small deterministic LCG for test weight generation.
        *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
        ((*seed >> 16) as f32 / 65536.0) - 0.5
    }

    #[test]
    fn dcnn_expansion_matches_filter_count_and_params() {
        let shape = LayerShape::conv("c", 3, 8, 10, 10, 3, 1, 1).unwrap();
        let mut seed = 7;
        let layer =
            TransferredLayer::random(&shape, TransferScheme::DCNN4, || det(&mut seed)).unwrap();
        // 8 filters / group of 4 = 2 meta filters of 3 x 16 weights.
        assert_eq!(layer.stored_params(), 2 * 3 * 16);
        let dense = layer.expand_to_dense().unwrap();
        assert_eq!(dense.dims(), [8, 3, 3, 3]);
    }

    #[test]
    fn scnn_expansion_matches_filter_count_and_params() {
        let shape = LayerShape::conv("c", 2, 16, 10, 10, 3, 1, 1).unwrap();
        let mut seed = 3;
        let layer =
            TransferredLayer::random(&shape, TransferScheme::Scnn, || det(&mut seed)).unwrap();
        // 16 filters / orbit of 8 = 2 groups of 2 bases x 2 x 9 weights.
        assert_eq!(layer.stored_params(), 2 * 2 * 2 * 9);
        let dense = layer.expand_to_dense().unwrap();
        assert_eq!(dense.dims(), [16, 2, 3, 3]);
    }

    #[test]
    fn partial_group_truncates_expansion() {
        let shape = LayerShape::conv("c", 1, 6, 8, 8, 3, 1, 1).unwrap();
        let mut seed = 11;
        let layer =
            TransferredLayer::random(&shape, TransferScheme::Scnn, || det(&mut seed)).unwrap();
        let dense = layer.expand_to_dense().unwrap();
        assert_eq!(dense.dims()[0], 6);
        // Storage still charges the full group (one orbit).
        assert_eq!(layer.stored_params(), 2 * 9);
    }

    #[test]
    fn untransferable_layers_come_back_dense() {
        let pw = LayerShape::conv("pw", 4, 4, 8, 8, 1, 1, 0).unwrap();
        let mut seed = 5;
        let layer = TransferredLayer::random(&pw, TransferScheme::Scnn, || det(&mut seed)).unwrap();
        assert!(!layer.is_transferred());
        assert_eq!(layer.stored_params(), pw.params());
    }

    #[test]
    fn depthwise_layer_falls_back_to_grouped_dense_bank() {
        let dw = LayerShape::depthwise("dw", 4, 8, 8, 3, 1, 1).unwrap();
        let mut seed = 5;
        let layer = TransferredLayer::random(&dw, TransferScheme::Scnn, || det(&mut seed)).unwrap();
        assert!(!layer.is_transferred());
        // One channel slice per filter: [M, N/groups, K, K] = [4, 1, 3, 3].
        match &layer {
            TransferredLayer::Dense { weights } => assert_eq!(weights.dims(), [4, 1, 3, 3]),
            other => panic!("expected dense fallback, got {other:?}"),
        }
        assert_eq!(layer.stored_params(), dw.params());
    }

    #[test]
    fn grouped_layer_falls_back_to_grouped_dense_bank() {
        let grouped = LayerShape::conv("g", 8, 6, 8, 8, 3, 1, 1)
            .unwrap()
            .with_groups(2)
            .unwrap();
        let mut seed = 9;
        let layer =
            TransferredLayer::random(&grouped, TransferScheme::DCNN4, || det(&mut seed)).unwrap();
        assert!(!layer.is_transferred());
        match &layer {
            TransferredLayer::Dense { weights } => assert_eq!(weights.dims(), [6, 4, 3, 3]),
            other => panic!("expected dense fallback, got {other:?}"),
        }
        assert_eq!(layer.stored_params(), grouped.params());
    }

    #[test]
    fn dcnn_expanded_bank_convolves_like_shared_weights() {
        // Convolving with the expanded bank must show the translation
        // property: output of filter (0,1) at column x equals output of
        // filter (0,0) at column x computed on a shifted window. We verify
        // via an impulse input.
        let shape = LayerShape::conv("c", 1, 4, 6, 6, 3, 1, 0).unwrap();
        let meta = MetaFilter::from_fn(1, 4, |_, y, x| (y * 4 + x) as f32);
        let layer = TransferredLayer::Dcnn {
            k: 3,
            m: 4,
            metas: vec![meta.clone()],
        };
        let dense = layer.expand_to_dense().unwrap();
        let mut input = Tensor4::zeros([1, 1, 6, 6]);
        input.set([0, 0, 2, 2], 1.0);
        let out = conv2d_f32(&input, &dense, None, &shape).unwrap();
        // For an impulse at (2,2), output(m, y, x) = w_m(2-y, 2-x).
        // Filter 1 is the meta window at (0,1): w(y,x) = meta(y, x+1).
        assert_eq!(out.get([0, 1, 0, 0]), meta.get(0, 2, 3));
        assert_eq!(out.get([0, 0, 0, 0]), meta.get(0, 2, 2));
    }

    #[test]
    fn filters_accessor_reports_m() {
        let shape = LayerShape::conv("c", 1, 12, 8, 8, 3, 1, 1).unwrap();
        let mut seed = 17;
        let layer =
            TransferredLayer::random(&shape, TransferScheme::DCNN6, || det(&mut seed)).unwrap();
        assert_eq!(layer.filters(), 12);
        assert!(layer.is_transferred());
    }
}
