//! Transfer schemes — the paper's evaluated configurations.

use crate::TransferError;
use tfe_tensor::shape::{ConvKind, LayerShape};

/// A transferred-filter scheme, as evaluated in the paper.
///
/// The paper sweeps three configurations: the 4×4 and 6×6 meta-filter
/// DCNNs and the SCNN. [`TransferScheme::Dcnn`] carries the *preferred*
/// meta extent; per-layer the effective extent may differ (heterogeneous
/// meta filters for GoogLeNet's 5×5 layers — Section V.C.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferScheme {
    /// Doubly CNN with a `Z × Z` meta filter.
    Dcnn {
        /// Meta filter extent `Z`.
        z: usize,
    },
    /// Symmetry CNN (D4 orbits of eight, two stored bases).
    Scnn,
}

impl TransferScheme {
    /// The paper's 4×4 DCNN configuration.
    pub const DCNN4: TransferScheme = TransferScheme::Dcnn { z: 4 };
    /// The paper's 6×6 DCNN configuration.
    pub const DCNN6: TransferScheme = TransferScheme::Dcnn { z: 6 };

    /// A short label matching the paper's figures (e.g. `"DCNN4x4"`).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            TransferScheme::Dcnn { z } => format!("DCNN{z}x{z}"),
            TransferScheme::Scnn => "SCNN".to_owned(),
        }
    }

    /// The meta extent actually used for a layer with filter extent `k`,
    /// or `None` if the layer cannot be transferred under this scheme.
    ///
    /// Mirrors the paper's per-layer policy:
    /// * `k == 1` is never transferable;
    /// * DCNN needs `Z > K` to extract more than one filter — for `K = 5`
    ///   a heterogeneous 6×6 meta filter is used even in the 4×4
    ///   configuration (GoogLeNet), and large filters (`K ≥ 7`, e.g.
    ///   AlexNet's 11×11 conv1) are kept dense to preserve accuracy;
    /// * SCNN applies to any `k ≥ 2` canonical convolution.
    #[must_use]
    pub fn effective_meta(self, k: usize) -> Option<usize> {
        match self {
            TransferScheme::Dcnn { z } => match k {
                0 | 1 => None,
                _ if k >= 8 => None,
                5 => Some(6),
                7 => Some(8),
                _ if k < z => Some(z),
                // k between z and 6: grow the meta filter just enough to
                // provide a 2x2 grid of translations.
                _ if k < 6 => Some(k + 1),
                _ => None,
            },
            TransferScheme::Scnn => None,
        }
    }

    /// Number of effective filters derived per stored group for a layer
    /// with filter extent `k`, or 1 if untransferable (each filter stands
    /// alone).
    #[must_use]
    pub fn group_size(self, k: usize) -> usize {
        match self {
            TransferScheme::Dcnn { .. } => self
                .effective_meta(k)
                .map_or(1, |z| (z - k + 1) * (z - k + 1)),
            TransferScheme::Scnn => {
                if k >= 2 {
                    crate::scnn::ORBIT
                } else {
                    1
                }
            }
        }
    }

    /// Whether this scheme transfers a layer of the given shape at all.
    #[must_use]
    pub fn applies_to(self, shape: &LayerShape) -> bool {
        shape.kind().transferable() && self.group_size(shape.k()) > 1
    }

    /// Validates that the scheme itself is well-formed (meta extent ≥ 2).
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::ZeroExtent`] for a degenerate meta extent.
    pub fn validate(self) -> Result<(), TransferError> {
        if let TransferScheme::Dcnn { z } = self {
            if z < 2 {
                return Err(TransferError::ZeroExtent {
                    what: "meta filter extent",
                });
            }
        }
        Ok(())
    }

    /// Rejects layer kinds the TFE does not support at all (depth-wise
    /// convolution — the paper's MobileNet exclusion).
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::NotTransferable`] for depth-wise layers.
    pub fn check_supported(shape: &LayerShape) -> Result<(), TransferError> {
        if shape.kind() == ConvKind::DepthWise {
            return Err(TransferError::NotTransferable {
                reason: "depth-wise convolution removes cross-filter redundancy (MobileNet-like networks are excluded by the paper)",
            });
        }
        Ok(())
    }
}

impl std::fmt::Display for TransferScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(TransferScheme::DCNN4.label(), "DCNN4x4");
        assert_eq!(TransferScheme::DCNN6.label(), "DCNN6x6");
        assert_eq!(TransferScheme::Scnn.label(), "SCNN");
    }

    #[test]
    fn group_sizes_for_3x3_filters() {
        assert_eq!(TransferScheme::DCNN4.group_size(3), 4);
        assert_eq!(TransferScheme::DCNN6.group_size(3), 16);
        assert_eq!(TransferScheme::Scnn.group_size(3), 8);
    }

    #[test]
    fn pointwise_never_transfers() {
        for scheme in [
            TransferScheme::DCNN4,
            TransferScheme::DCNN6,
            TransferScheme::Scnn,
        ] {
            assert_eq!(scheme.group_size(1), 1, "{scheme}");
        }
    }

    #[test]
    fn heterogeneous_meta_for_googlenet_5x5() {
        // Both DCNN configurations fall back to a 6x6 meta for 5x5 filters.
        assert_eq!(TransferScheme::DCNN4.effective_meta(5), Some(6));
        assert_eq!(TransferScheme::DCNN6.effective_meta(5), Some(6));
        assert_eq!(TransferScheme::DCNN4.group_size(5), 4);
    }

    #[test]
    fn heterogeneous_meta_for_7x7_first_layers() {
        // SqueezeNet/GoogLeNet/ResANet conv1 (7x7) transfers through an
        // 8x8 meta filter: (8-7+1)^2 = 4 filters per meta.
        assert_eq!(TransferScheme::DCNN6.effective_meta(7), Some(8));
        assert_eq!(TransferScheme::DCNN6.group_size(7), 4);
    }

    #[test]
    fn alexnet_11x11_kept_dense() {
        assert_eq!(TransferScheme::DCNN4.effective_meta(11), None);
        assert_eq!(TransferScheme::DCNN6.effective_meta(11), None);
        assert_eq!(TransferScheme::DCNN6.group_size(11), 1);
    }

    #[test]
    fn applies_to_respects_layer_kind() {
        let conv = LayerShape::conv("c", 16, 16, 8, 8, 3, 1, 1).unwrap();
        let pw = LayerShape::conv("p", 16, 16, 8, 8, 1, 1, 0).unwrap();
        let fc = LayerShape::fully_connected("f", 64, 10).unwrap();
        assert!(TransferScheme::Scnn.applies_to(&conv));
        assert!(!TransferScheme::Scnn.applies_to(&pw));
        assert!(!TransferScheme::Scnn.applies_to(&fc));
    }

    #[test]
    fn depthwise_is_rejected_outright() {
        let dw = LayerShape::depthwise("dw", 8, 8, 8, 3, 1, 1).unwrap();
        assert!(TransferScheme::check_supported(&dw).is_err());
        let conv = LayerShape::conv("c", 8, 8, 8, 8, 3, 1, 1).unwrap();
        assert!(TransferScheme::check_supported(&conv).is_ok());
    }

    #[test]
    fn degenerate_meta_rejected() {
        assert!(TransferScheme::Dcnn { z: 1 }.validate().is_err());
        assert!(TransferScheme::DCNN4.validate().is_ok());
    }
}
