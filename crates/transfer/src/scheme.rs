//! Transfer schemes — the paper's evaluated configurations — and the
//! per-layer transfer [`Policy`] deciding which layers transfer and
//! which fall back to dense execution.

use crate::TransferError;
use tfe_tensor::shape::{ConvKind, LayerShape};

/// The per-layer transfer decision: transfer under the scheme, or keep
/// the layer's dense weights (untransferred) and run it conventionally.
///
/// Replaces the old outright rejection of depth-wise layers: every
/// geometry now resolves to an explicit policy, and layers where the
/// transferred-filter redundancy does not exist (depth-wise/grouped,
/// pointwise, FC, oversized filters) are *recorded* as dense rather
/// than erroring at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// The layer transfers under the scheme that produced this policy.
    Transfer,
    /// The layer keeps dense weights and runs conventionally.
    Dense {
        /// Why the layer is untransferred (human-readable, stable).
        reason: &'static str,
    },
}

impl Policy {
    /// Whether the policy transfers the layer.
    #[must_use]
    pub fn transfers(self) -> bool {
        matches!(self, Policy::Transfer)
    }
}

/// A transferred-filter scheme, as evaluated in the paper.
///
/// The paper sweeps three configurations: the 4×4 and 6×6 meta-filter
/// DCNNs and the SCNN. [`TransferScheme::Dcnn`] carries the *preferred*
/// meta extent; per-layer the effective extent may differ (heterogeneous
/// meta filters for GoogLeNet's 5×5 layers — Section V.C.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferScheme {
    /// Doubly CNN with a `Z × Z` meta filter.
    Dcnn {
        /// Meta filter extent `Z`.
        z: usize,
    },
    /// Symmetry CNN (D4 orbits of eight, two stored bases).
    Scnn,
}

impl TransferScheme {
    /// The paper's 4×4 DCNN configuration.
    pub const DCNN4: TransferScheme = TransferScheme::Dcnn { z: 4 };
    /// The paper's 6×6 DCNN configuration.
    pub const DCNN6: TransferScheme = TransferScheme::Dcnn { z: 6 };

    /// A short label matching the paper's figures (e.g. `"DCNN4x4"`).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            TransferScheme::Dcnn { z } => format!("DCNN{z}x{z}"),
            TransferScheme::Scnn => "SCNN".to_owned(),
        }
    }

    /// The meta extent actually used for a layer with filter extent `k`,
    /// or `None` if the layer cannot be transferred under this scheme.
    ///
    /// Mirrors the paper's per-layer policy:
    /// * `k == 1` is never transferable;
    /// * DCNN needs `Z > K` to extract more than one filter — for `K = 5`
    ///   a heterogeneous 6×6 meta filter is used even in the 4×4
    ///   configuration (GoogLeNet), and large filters (`K ≥ 7`, e.g.
    ///   AlexNet's 11×11 conv1) are kept dense to preserve accuracy;
    /// * SCNN applies to any `k ≥ 2` canonical convolution.
    #[must_use]
    pub fn effective_meta(self, k: usize) -> Option<usize> {
        match self {
            TransferScheme::Dcnn { z } => match k {
                0 | 1 => None,
                _ if k >= 8 => None,
                5 => Some(6),
                7 => Some(8),
                _ if k < z => Some(z),
                // k between z and 6: grow the meta filter just enough to
                // provide a 2x2 grid of translations.
                _ if k < 6 => Some(k + 1),
                _ => None,
            },
            TransferScheme::Scnn => None,
        }
    }

    /// Number of effective filters derived per stored group for a layer
    /// with filter extent `k`, or 1 if untransferable (each filter stands
    /// alone).
    #[must_use]
    pub fn group_size(self, k: usize) -> usize {
        match self {
            TransferScheme::Dcnn { .. } => self
                .effective_meta(k)
                .map_or(1, |z| (z - k + 1) * (z - k + 1)),
            TransferScheme::Scnn => {
                if k >= 2 {
                    crate::scnn::ORBIT
                } else {
                    1
                }
            }
        }
    }

    /// Whether this scheme transfers a layer of the given shape at all.
    ///
    /// Grouped and depth-wise layers never transfer: the cross-filter
    /// redundancy DCNN/SCNN exploit lives across the *full* channel
    /// extent, which channel grouping removes.
    #[must_use]
    pub fn applies_to(self, shape: &LayerShape) -> bool {
        shape.kind().transferable() && shape.groups() == 1 && self.group_size(shape.k()) > 1
    }

    /// Resolves the per-layer transfer decision for `shape`.
    ///
    /// Every geometry resolves — depth-wise, grouped, pointwise, FC and
    /// oversized-filter layers come back as [`Policy::Dense`] with a
    /// stable reason; canonical convolutions the scheme covers come back
    /// as [`Policy::Transfer`].
    #[must_use]
    pub fn policy_for(self, shape: &LayerShape) -> Policy {
        if shape.kind() == ConvKind::DepthWise {
            return Policy::Dense {
                reason: "depth-wise convolution has no cross-filter redundancy to transfer",
            };
        }
        if shape.groups() > 1 {
            return Policy::Dense {
                reason: "channel grouping removes the cross-filter redundancy transfer exploits",
            };
        }
        if !shape.kind().transferable() {
            return Policy::Dense {
                reason: "layer kind is not a canonical convolution",
            };
        }
        if self.group_size(shape.k()) <= 1 {
            return Policy::Dense {
                reason: "filter extent yields no derived filters under this scheme",
            };
        }
        Policy::Transfer
    }

    /// Validates that the scheme itself is well-formed (meta extent ≥ 2).
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::ZeroExtent`] for a degenerate meta extent.
    pub fn validate(self) -> Result<(), TransferError> {
        if let TransferScheme::Dcnn { z } = self {
            if z < 2 {
                return Err(TransferError::ZeroExtent {
                    what: "meta filter extent",
                });
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for TransferScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(TransferScheme::DCNN4.label(), "DCNN4x4");
        assert_eq!(TransferScheme::DCNN6.label(), "DCNN6x6");
        assert_eq!(TransferScheme::Scnn.label(), "SCNN");
    }

    #[test]
    fn group_sizes_for_3x3_filters() {
        assert_eq!(TransferScheme::DCNN4.group_size(3), 4);
        assert_eq!(TransferScheme::DCNN6.group_size(3), 16);
        assert_eq!(TransferScheme::Scnn.group_size(3), 8);
    }

    #[test]
    fn pointwise_never_transfers() {
        for scheme in [
            TransferScheme::DCNN4,
            TransferScheme::DCNN6,
            TransferScheme::Scnn,
        ] {
            assert_eq!(scheme.group_size(1), 1, "{scheme}");
        }
    }

    #[test]
    fn heterogeneous_meta_for_googlenet_5x5() {
        // Both DCNN configurations fall back to a 6x6 meta for 5x5 filters.
        assert_eq!(TransferScheme::DCNN4.effective_meta(5), Some(6));
        assert_eq!(TransferScheme::DCNN6.effective_meta(5), Some(6));
        assert_eq!(TransferScheme::DCNN4.group_size(5), 4);
    }

    #[test]
    fn heterogeneous_meta_for_7x7_first_layers() {
        // SqueezeNet/GoogLeNet/ResANet conv1 (7x7) transfers through an
        // 8x8 meta filter: (8-7+1)^2 = 4 filters per meta.
        assert_eq!(TransferScheme::DCNN6.effective_meta(7), Some(8));
        assert_eq!(TransferScheme::DCNN6.group_size(7), 4);
    }

    #[test]
    fn alexnet_11x11_kept_dense() {
        assert_eq!(TransferScheme::DCNN4.effective_meta(11), None);
        assert_eq!(TransferScheme::DCNN6.effective_meta(11), None);
        assert_eq!(TransferScheme::DCNN6.group_size(11), 1);
    }

    #[test]
    fn applies_to_respects_layer_kind() {
        let conv = LayerShape::conv("c", 16, 16, 8, 8, 3, 1, 1).unwrap();
        let pw = LayerShape::conv("p", 16, 16, 8, 8, 1, 1, 0).unwrap();
        let fc = LayerShape::fully_connected("f", 64, 10).unwrap();
        assert!(TransferScheme::Scnn.applies_to(&conv));
        assert!(!TransferScheme::Scnn.applies_to(&pw));
        assert!(!TransferScheme::Scnn.applies_to(&fc));
    }

    #[test]
    fn depthwise_resolves_to_dense_policy() {
        // Depth-wise layers are no longer rejected outright: every scheme
        // resolves them to an explicit dense (untransferred) policy.
        let dw = LayerShape::depthwise("dw", 8, 8, 8, 3, 1, 1).unwrap();
        let conv = LayerShape::conv("c", 8, 8, 8, 8, 3, 1, 1).unwrap();
        for scheme in [
            TransferScheme::DCNN4,
            TransferScheme::DCNN6,
            TransferScheme::Scnn,
        ] {
            let policy = scheme.policy_for(&dw);
            assert!(!policy.transfers(), "{scheme}: {policy:?}");
            assert!(
                matches!(policy, Policy::Dense { reason } if reason.contains("depth-wise")),
                "{scheme}: {policy:?}"
            );
            assert!(!scheme.applies_to(&dw), "{scheme}");
            assert_eq!(scheme.policy_for(&conv), Policy::Transfer, "{scheme}");
        }
    }

    #[test]
    fn grouped_convolution_resolves_to_dense_policy() {
        let grouped = LayerShape::conv("g", 8, 8, 8, 8, 3, 1, 1)
            .unwrap()
            .with_groups(2)
            .unwrap();
        for scheme in [
            TransferScheme::DCNN4,
            TransferScheme::DCNN6,
            TransferScheme::Scnn,
        ] {
            assert!(!scheme.applies_to(&grouped), "{scheme}");
            assert!(
                matches!(scheme.policy_for(&grouped), Policy::Dense { reason }
                    if reason.contains("grouping")),
                "{scheme}"
            );
        }
    }

    #[test]
    fn policy_reasons_cover_untransferable_kinds() {
        let pw = LayerShape::conv("p", 16, 16, 8, 8, 1, 1, 0).unwrap();
        let fc = LayerShape::fully_connected("f", 64, 10).unwrap();
        for shape in [&pw, &fc] {
            assert!(matches!(
                TransferScheme::Scnn.policy_for(shape),
                Policy::Dense { reason } if reason.contains("canonical")
            ));
        }
        // AlexNet's 11x11 conv1 is a canonical convolution that still
        // yields no derived filters under DCNN.
        let big = LayerShape::conv("c1", 3, 96, 55, 55, 11, 4, 2).unwrap();
        assert!(matches!(
            TransferScheme::DCNN4.policy_for(&big),
            Policy::Dense { reason } if reason.contains("derived filters")
        ));
    }

    #[test]
    fn degenerate_meta_rejected() {
        assert!(TransferScheme::Dcnn { z: 1 }.validate().is_err());
        assert!(TransferScheme::DCNN4.validate().is_ok());
    }
}
