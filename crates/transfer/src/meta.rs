//! DCNN meta filters (Fig. 2(a) of the paper).
//!
//! A meta filter is an `N`-channel `Z × Z` weight grid. The DCNN's
//! transferred filters are the `(Z−K+1)²` translated `K × K` windows of the
//! meta filter, enumerated row-major by their `(dy, dx)` offset — the same
//! order the TFE's PPSR/ERRR machinery produces their partial sums.

use crate::TransferError;
use tfe_tensor::tensor::Tensor4;

/// An `N`-channel `Z × Z` meta filter.
///
/// ```
/// use tfe_transfer::meta::MetaFilter;
///
/// # fn main() -> Result<(), tfe_transfer::TransferError> {
/// let meta = MetaFilter::from_fn(1, 4, |_, y, x| (y * 4 + x) as f32);
/// // A 4x4 meta filter yields (4-3+1)^2 = 4 transferred 3x3 filters.
/// assert_eq!(meta.transferred_count(3)?, 4);
/// let tf = meta.extract(3, 0, 1)?; // window at row 0, col 1
/// assert_eq!(tf[0], 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MetaFilter {
    channels: usize,
    z: usize,
    /// Channel-major, then row-major weights: `data[c * z * z + y * z + x]`.
    data: Vec<f32>,
}

impl MetaFilter {
    /// Creates a meta filter from channel-major, row-major weights.
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::ZeroExtent`] if `channels` or `z` is zero
    /// and [`TransferError::DataLengthMismatch`] if `data` has the wrong
    /// length.
    pub fn new(channels: usize, z: usize, data: Vec<f32>) -> Result<Self, TransferError> {
        if channels == 0 {
            return Err(TransferError::ZeroExtent {
                what: "meta filter channels",
            });
        }
        if z == 0 {
            return Err(TransferError::ZeroExtent {
                what: "meta filter extent",
            });
        }
        let expected = channels * z * z;
        if data.len() != expected {
            return Err(TransferError::DataLengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(MetaFilter { channels, z, data })
    }

    /// Creates a meta filter by evaluating `f(channel, y, x)`.
    #[must_use]
    pub fn from_fn(
        channels: usize,
        z: usize,
        mut f: impl FnMut(usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(channels * z * z);
        for c in 0..channels {
            for y in 0..z {
                for x in 0..z {
                    data.push(f(c, y, x));
                }
            }
        }
        MetaFilter { channels, z, data }
    }

    /// Number of channels (`N`).
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Meta filter extent (`Z`).
    #[must_use]
    pub fn z(&self) -> usize {
        self.z
    }

    /// The stored weight at `(channel, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[must_use]
    pub fn get(&self, channel: usize, y: usize, x: usize) -> f32 {
        assert!(channel < self.channels && y < self.z && x < self.z);
        self.data[channel * self.z * self.z + y * self.z + x]
    }

    /// Number of stored weights (`N × Z²`) — the DCNN's parameter cost for
    /// this group of transferred filters (paper Eq. 2).
    #[must_use]
    pub fn stored_params(&self) -> usize {
        self.data.len()
    }

    /// Number of `K × K` transferred filters this meta filter yields:
    /// `(Z − K + 1)²`.
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::MetaSmallerThanFilter`] if `k > z`.
    pub fn transferred_count(&self, k: usize) -> Result<usize, TransferError> {
        if k > self.z {
            return Err(TransferError::MetaSmallerThanFilter { z: self.z, k });
        }
        let per_axis = self.z - k + 1;
        Ok(per_axis * per_axis)
    }

    /// Offsets per axis for `K × K` extraction (`Z − K + 1`).
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::MetaSmallerThanFilter`] if `k > z`.
    pub fn offsets_per_axis(&self, k: usize) -> Result<usize, TransferError> {
        if k > self.z {
            return Err(TransferError::MetaSmallerThanFilter { z: self.z, k });
        }
        Ok(self.z - k + 1)
    }

    /// Extracts the transferred filter at offset `(dy, dx)` as
    /// channel-major, row-major `K × K` weights.
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::MetaSmallerThanFilter`] if `k > z` and
    /// [`TransferError::GroupingMismatch`] if the offset exceeds `Z − K`.
    pub fn extract(&self, k: usize, dy: usize, dx: usize) -> Result<Vec<f32>, TransferError> {
        let per_axis = self.offsets_per_axis(k)?;
        if dy >= per_axis || dx >= per_axis {
            return Err(TransferError::GroupingMismatch {
                what: "transferred filter offset",
                requested: dy.max(dx),
                available: per_axis - 1,
            });
        }
        let mut out = Vec::with_capacity(self.channels * k * k);
        for c in 0..self.channels {
            for y in 0..k {
                for x in 0..k {
                    out.push(self.get(c, dy + y, dx + x));
                }
            }
        }
        Ok(out)
    }

    /// Expands all transferred filters into a dense `[G, N, K, K]` bank
    /// where `G = (Z−K+1)²`, ordered row-major by `(dy, dx)`.
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::MetaSmallerThanFilter`] if `k > z`.
    pub fn expand(&self, k: usize) -> Result<Tensor4<f32>, TransferError> {
        let per_axis = self.offsets_per_axis(k)?;
        let g = per_axis * per_axis;
        let mut data = Vec::with_capacity(g * self.channels * k * k);
        for dy in 0..per_axis {
            for dx in 0..per_axis {
                data.extend(self.extract(k, dy, dx)?);
            }
        }
        Ok(Tensor4::from_vec([g, self.channels, k, k], data)
            .expect("expansion length is g * channels * k * k by construction"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_meta(channels: usize, z: usize) -> MetaFilter {
        MetaFilter::from_fn(channels, z, |c, y, x| (c * 100 + y * 10 + x) as f32)
    }

    #[test]
    fn counts_for_paper_configurations() {
        let meta4 = counting_meta(1, 4);
        let meta6 = counting_meta(1, 6);
        assert_eq!(meta4.transferred_count(3).unwrap(), 4);
        assert_eq!(meta6.transferred_count(3).unwrap(), 16);
        assert_eq!(meta6.transferred_count(5).unwrap(), 4);
    }

    #[test]
    fn extraction_is_translation() {
        let meta = counting_meta(1, 4);
        // Offset (0,0): rows 0..3, cols 0..3.
        assert_eq!(
            meta.extract(3, 0, 0).unwrap(),
            vec![0., 1., 2., 10., 11., 12., 20., 21., 22.]
        );
        // Offset (1,1): rows 1..4, cols 1..4.
        assert_eq!(
            meta.extract(3, 1, 1).unwrap(),
            vec![11., 12., 13., 21., 22., 23., 31., 32., 33.]
        );
    }

    #[test]
    fn adjacent_transferred_filters_share_weights() {
        // The defining redundancy the TFE exploits: filter (0,0) columns
        // 1..3 equal filter (0,1) columns 0..2.
        let meta = counting_meta(2, 4);
        let a = meta.extract(3, 0, 0).unwrap();
        let b = meta.extract(3, 0, 1).unwrap();
        for c in 0..2 {
            for y in 0..3 {
                for x in 0..2 {
                    let ai = c * 9 + y * 3 + (x + 1);
                    let bi = c * 9 + y * 3 + x;
                    assert_eq!(a[ai], b[bi]);
                }
            }
        }
    }

    #[test]
    fn expand_orders_row_major_by_offset() {
        let meta = counting_meta(1, 4);
        let bank = meta.expand(3).unwrap();
        assert_eq!(bank.dims(), [4, 1, 3, 3]);
        // Filter index 1 corresponds to offset (0, 1).
        assert_eq!(bank.get([1, 0, 0, 0]), meta.get(0, 0, 1));
        // Filter index 2 corresponds to offset (1, 0).
        assert_eq!(bank.get([2, 0, 0, 0]), meta.get(0, 1, 0));
    }

    #[test]
    fn k_equal_z_yields_single_filter() {
        let meta = counting_meta(1, 3);
        assert_eq!(meta.transferred_count(3).unwrap(), 1);
        let bank = meta.expand(3).unwrap();
        assert_eq!(bank.dims(), [1, 1, 3, 3]);
    }

    #[test]
    fn oversized_k_rejected() {
        let meta = counting_meta(1, 4);
        assert!(matches!(
            meta.extract(5, 0, 0),
            Err(TransferError::MetaSmallerThanFilter { z: 4, k: 5 })
        ));
    }

    #[test]
    fn out_of_range_offset_rejected() {
        let meta = counting_meta(1, 4);
        assert!(meta.extract(3, 2, 0).is_err());
        assert!(meta.extract(3, 0, 2).is_err());
    }

    #[test]
    fn constructor_validates() {
        assert!(MetaFilter::new(0, 4, vec![]).is_err());
        assert!(MetaFilter::new(1, 0, vec![]).is_err());
        assert!(MetaFilter::new(1, 2, vec![0.0; 3]).is_err());
        assert!(MetaFilter::new(1, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn stored_params_matches_eq2_per_group() {
        let meta = counting_meta(3, 6);
        assert_eq!(meta.stored_params(), 3 * 36);
    }
}
