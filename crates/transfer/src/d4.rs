//! The dihedral group D4 acting on square filters.
//!
//! SCNN (Fig. 2(b) of the paper) derives effective filters from a base
//! filter through "rotation by a step of 90° and horizontal/vertical
//! flipping". This module implements those transformations on row-major
//! `K × K` grids and exposes the full eight-element group so orbits can be
//! enumerated and composition laws property-tested.

/// One element of the dihedral group D4 (symmetries of the square).
///
/// The names follow the geometric action on a filter grid: `Rot90` rotates
/// the weights 90° counter-clockwise, `FlipH` mirrors left–right (the
/// paper's "horizontally symmetric" filters), `FlipV` mirrors top–bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum D4 {
    /// Identity.
    Id,
    /// 90° counter-clockwise rotation.
    Rot90,
    /// 180° rotation.
    Rot180,
    /// 270° counter-clockwise rotation.
    Rot270,
    /// Horizontal mirror (left–right flip; reverses each row).
    FlipH,
    /// Vertical mirror (top–bottom flip; reverses row order).
    FlipV,
    /// Flip across the main diagonal (transpose).
    FlipD,
    /// Flip across the anti-diagonal.
    FlipA,
}

impl D4 {
    /// All eight group elements, in a stable order.
    pub const ALL: [D4; 8] = [
        D4::Id,
        D4::Rot90,
        D4::Rot180,
        D4::Rot270,
        D4::FlipH,
        D4::FlipV,
        D4::FlipD,
        D4::FlipA,
    ];

    /// Maps a source coordinate `(y, x)` in a `k × k` grid to the
    /// coordinate holding its value after applying `self`.
    ///
    /// Concretely, `transformed[self.apply_index(k, y, x)] = original[(y, x)]`.
    #[must_use]
    pub fn apply_index(self, k: usize, y: usize, x: usize) -> (usize, usize) {
        let last = k - 1;
        match self {
            D4::Id => (y, x),
            D4::Rot90 => (last - x, y),
            D4::Rot180 => (last - y, last - x),
            D4::Rot270 => (x, last - y),
            D4::FlipH => (y, last - x),
            D4::FlipV => (last - y, x),
            D4::FlipD => (x, y),
            D4::FlipA => (last - x, last - y),
        }
    }

    /// The group inverse.
    #[must_use]
    pub fn inverse(self) -> D4 {
        match self {
            D4::Rot90 => D4::Rot270,
            D4::Rot270 => D4::Rot90,
            other => other, // identity, 180° and all flips are involutions
        }
    }

    /// Group composition: `self.then(g)` applies `self` first, then `g`.
    #[must_use]
    pub fn then(self, g: D4) -> D4 {
        // Compose by tracking where two probe points land. The action on
        // a 3x3 grid distinguishes all eight elements.
        let k = 3;
        let probe = [(0usize, 1usize), (1usize, 0usize)];
        let mut landed = [(0usize, 0usize); 2];
        for (i, &(y, x)) in probe.iter().enumerate() {
            let (y1, x1) = self.apply_index(k, y, x);
            landed[i] = g.apply_index(k, y1, x1);
        }
        for candidate in D4::ALL {
            if probe
                .iter()
                .zip(&landed)
                .all(|(&(y, x), &l)| candidate.apply_index(k, y, x) == l)
            {
                return candidate;
            }
        }
        unreachable!("composition of two D4 elements is always a D4 element")
    }

    /// Decomposes the element as `flips ∘ rotation-base`, where the base is
    /// either `Id` or `Rot90` — the two orientations the SCNN engine stores
    /// — and the flips are the horizontal/vertical mirrors the PPSR (h) and
    /// ERRR (v) machinery can derive for free (Section V.E).
    ///
    /// Returns `(base, flip_h, flip_v)` such that applying `base`, then
    /// `FlipH` if `flip_h`, then `FlipV` if `flip_v`, equals `self`.
    #[must_use]
    pub fn decompose(self) -> (D4, bool, bool) {
        match self {
            D4::Id => (D4::Id, false, false),
            D4::FlipH => (D4::Id, true, false),
            D4::FlipV => (D4::Id, false, true),
            D4::Rot180 => (D4::Id, true, true),
            D4::Rot90 => (D4::Rot90, false, false),
            D4::FlipA => (D4::Rot90, true, false),
            D4::FlipD => (D4::Rot90, false, true),
            D4::Rot270 => (D4::Rot90, true, true),
        }
    }
}

/// Applies a D4 element to a row-major `k × k` grid, returning the
/// transformed grid.
///
/// # Panics
///
/// Panics if `grid.len() != k * k`.
#[must_use]
pub fn transform_grid<T: Copy + Default>(grid: &[T], k: usize, g: D4) -> Vec<T> {
    assert_eq!(grid.len(), k * k, "grid length must be k*k");
    let mut out = vec![T::default(); k * k];
    for y in 0..k {
        for x in 0..k {
            let (ty, tx) = g.apply_index(k, y, x);
            out[ty * k + tx] = grid[y * k + x];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRID: [i32; 9] = [1, 2, 3, 4, 5, 6, 7, 8, 9];

    #[test]
    fn identity_is_noop() {
        assert_eq!(transform_grid(&GRID, 3, D4::Id), GRID.to_vec());
    }

    #[test]
    fn rot90_counter_clockwise() {
        // 1 2 3      3 6 9
        // 4 5 6  ->  2 5 8
        // 7 8 9      1 4 7
        assert_eq!(
            transform_grid(&GRID, 3, D4::Rot90),
            vec![3, 6, 9, 2, 5, 8, 1, 4, 7]
        );
    }

    #[test]
    fn flip_h_reverses_rows() {
        assert_eq!(
            transform_grid(&GRID, 3, D4::FlipH),
            vec![3, 2, 1, 6, 5, 4, 9, 8, 7]
        );
    }

    #[test]
    fn flip_v_reverses_row_order() {
        assert_eq!(
            transform_grid(&GRID, 3, D4::FlipV),
            vec![7, 8, 9, 4, 5, 6, 1, 2, 3]
        );
    }

    #[test]
    fn rot180_equals_fliph_then_flipv() {
        let direct = transform_grid(&GRID, 3, D4::Rot180);
        let via_flips = transform_grid(&transform_grid(&GRID, 3, D4::FlipH), 3, D4::FlipV);
        assert_eq!(direct, via_flips);
    }

    #[test]
    fn flipd_is_transpose() {
        assert_eq!(
            transform_grid(&GRID, 3, D4::FlipD),
            vec![1, 4, 7, 2, 5, 8, 3, 6, 9]
        );
    }

    #[test]
    fn every_element_composed_with_inverse_is_identity() {
        for g in D4::ALL {
            assert_eq!(g.then(g.inverse()), D4::Id, "{g:?}");
            assert_eq!(g.inverse().then(g), D4::Id, "{g:?}");
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        for a in D4::ALL {
            for b in D4::ALL {
                let composed = transform_grid(&GRID, 3, a.then(b));
                let sequential = transform_grid(&transform_grid(&GRID, 3, a), 3, b);
                assert_eq!(composed, sequential, "{a:?} then {b:?}");
            }
        }
    }

    #[test]
    fn group_is_closed_and_has_eight_elements() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for a in D4::ALL {
            for b in D4::ALL {
                seen.insert(a.then(b));
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn works_on_even_extent() {
        let grid = [1, 2, 3, 4]; // 2x2
        assert_eq!(transform_grid(&grid, 2, D4::Rot180), vec![4, 3, 2, 1]);
        assert_eq!(transform_grid(&grid, 2, D4::FlipH), vec![2, 1, 4, 3]);
    }

    #[test]
    fn decomposition_reconstructs_every_element() {
        for g in D4::ALL {
            let (base, flip_h, flip_v) = g.decompose();
            let mut composed = base;
            if flip_h {
                composed = composed.then(D4::FlipH);
            }
            if flip_v {
                composed = composed.then(D4::FlipV);
            }
            assert_eq!(composed, g, "decomposition of {g:?}");
        }
    }

    #[test]
    fn decomposition_bases_are_only_id_and_rot90() {
        for g in D4::ALL {
            let (base, _, _) = g.decompose();
            assert!(matches!(base, D4::Id | D4::Rot90), "{g:?} -> {base:?}");
        }
    }
}
