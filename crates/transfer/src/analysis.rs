//! Closed-form compression and acceleration analysis (paper Eq. 1–5 and
//! the Fig. 19 ablation factors).
//!
//! These formulas are the analytic ground truth: property tests in
//! `tfe-sim` assert that the simulator's *counted* MACs and parameters
//! match them on every layer.

use crate::scheme::TransferScheme;
use crate::scnn::{Orientation, ORIENTATIONS, STORED_BASES};
use tfe_tensor::shape::LayerShape;

/// Which redundancy-elimination techniques are enabled — the Fig. 19
/// ablation axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReuseConfig {
    /// Product and partial-sum reuse (horizontal, within a filter row).
    pub ppsr: bool,
    /// Entire-row result reuse (vertical, across filter rows).
    pub errr: bool,
}

impl ReuseConfig {
    /// Both techniques on — the shipping TFE configuration.
    pub const FULL: ReuseConfig = ReuseConfig {
        ppsr: true,
        errr: true,
    };
    /// Both techniques off — the naive transferred-filter implementation.
    pub const NONE: ReuseConfig = ReuseConfig {
        ppsr: false,
        errr: false,
    };
    /// PPSR only.
    pub const PPSR_ONLY: ReuseConfig = ReuseConfig {
        ppsr: true,
        errr: false,
    };
    /// ERRR only.
    pub const ERRR_ONLY: ReuseConfig = ReuseConfig {
        ppsr: false,
        errr: true,
    };
}

impl Default for ReuseConfig {
    fn default() -> Self {
        ReuseConfig::FULL
    }
}

/// Paper Eq. 1: parameters of an original CNN layer,
/// `NUM_P_O = N × M × K²`.
#[must_use]
pub fn original_params(shape: &LayerShape) -> u64 {
    shape.params()
}

/// Paper Eq. 1: MACs of an original CNN layer,
/// `NUM_M_O = E × F × N × M × K²`.
#[must_use]
pub fn original_macs(shape: &LayerShape) -> u64 {
    shape.macs()
}

/// Paper Eq. 2: parameters of the DCNN representation,
/// `NUM_P_D = M / (Z−K+1)² × N × Z²`.
///
/// Exact when `(Z−K+1)²` divides `M`; otherwise the trailing partial meta
/// filter is charged in full (ceiling division), which is what a real
/// weight memory must store.
#[must_use]
pub fn dcnn_params(shape: &LayerShape, z: usize) -> u64 {
    let g = group_count(z, shape.k());
    let meta_filters = (shape.m() as u64).div_ceil(g as u64);
    meta_filters * shape.n() as u64 * (z * z) as u64
}

/// Paper Eq. 2: MACs of a *direct* (no reuse) DCNN implementation — equal
/// to the original layer's MACs, since every transferred filter is
/// convolved independently.
#[must_use]
pub fn dcnn_direct_macs(shape: &LayerShape) -> u64 {
    shape.macs()
}

/// Paper Eq. 3: MACs of the DCNN on the TFE with full reuse,
/// `NUM_M_T = E × F × M × Z² × N / (Z−K+1)²`.
#[must_use]
pub fn dcnn_tfe_macs(shape: &LayerShape, z: usize) -> u64 {
    dcnn_macs_with(shape, z, ReuseConfig::FULL)
}

/// MACs of the DCNN on the TFE under an arbitrary reuse configuration
/// (Fig. 19 ablation).
///
/// Per meta-filter row step, the naive cost is `(Z−K+1) × K` multiplies;
/// PPSR reduces it to `Z`. The identical factor applies vertically for
/// ERRR. With `G = (Z−K+1)²` transferred filters per meta filter:
///
/// * none:        `E·F·N·M·K²`           (direct, Eq. 2)
/// * PPSR only:   `E·F·N·M·K²  × Z/((Z−K+1)K)` (horizontal factor)
/// * ERRR only:   symmetric vertical factor
/// * both:        `E·F·N·M·Z²/G`          (Eq. 3)
#[must_use]
pub fn dcnn_macs_with(shape: &LayerShape, z: usize, reuse: ReuseConfig) -> u64 {
    let k = shape.k() as u64;
    let per_axis = (z as u64).saturating_sub(k) + 1;
    let spatial = shape.e() as u64 * shape.f() as u64 * shape.n() as u64 * shape.m() as u64;
    let h_cost = if reuse.ppsr { z as u64 } else { per_axis * k };
    let v_cost = if reuse.errr { z as u64 } else { per_axis * k };
    // Cost per transferred-filter group, divided back per filter:
    // spatial already includes all M filters; each group of G = per_axis²
    // filters costs h_cost × v_cost instead of G × K².
    spatial * h_cost * v_cost / (per_axis * per_axis)
}

/// Paper Eq. 4/5: DCNN parameter (and MAC) reduction ratio,
/// `(Z−K+1)² × K² / Z²`.
#[must_use]
pub fn dcnn_param_reduction(z: usize, k: usize) -> f64 {
    let per_axis = (z - k + 1) as f64;
    per_axis * per_axis * (k * k) as f64 / (z * z) as f64
}

/// Paper Eq. 5: DCNN MAC reduction ratio — identical to Eq. 4.
#[must_use]
pub fn dcnn_mac_reduction(z: usize, k: usize) -> f64 {
    dcnn_param_reduction(z, k)
}

/// SCNN parameter count: `2 × N × K²` per orbit of eight filters (partial
/// trailing orbits charged in full).
#[must_use]
pub fn scnn_params(shape: &LayerShape) -> u64 {
    let orbits = (shape.m() as u64).div_ceil(crate::scnn::ORBIT as u64);
    orbits * STORED_BASES as u64 * shape.n() as u64 * (shape.k() * shape.k()) as u64
}

/// SCNN MACs on the TFE under a reuse configuration.
///
/// Of the eight orbit orientations, two are stored bases (always
/// computed); each remaining member is free exactly when the reuse
/// machinery for all of its required flips is enabled (Section V.E).
#[must_use]
pub fn scnn_macs_with(shape: &LayerShape, reuse: ReuseConfig) -> u64 {
    let computed = ORIENTATIONS
        .iter()
        .filter(|&&g| {
            let o = Orientation::of(g);
            let h_free = !o.flip_h || reuse.ppsr;
            let v_free = !o.flip_v || reuse.errr;
            !(h_free && v_free) || o.is_stored()
        })
        .count() as u64;
    shape.macs() * computed / crate::scnn::ORBIT as u64
}

/// SCNN parameter reduction ratio: orbit size over stored bases (4×).
#[must_use]
pub fn scnn_param_reduction() -> f64 {
    crate::scnn::ORBIT as f64 / STORED_BASES as f64
}

/// SCNN MAC reduction ratio under a reuse configuration.
#[must_use]
pub fn scnn_mac_reduction(reuse: ReuseConfig) -> f64 {
    let unit =
        LayerShape::conv("unit", 1, 8, 8, 8, 3, 1, 1).expect("static unit layer shape is valid");
    unit.macs() as f64 / scnn_macs_with(&unit, reuse) as f64
}

/// Per-layer parameters under a scheme, respecting the per-layer transfer
/// policy (untransferable layers keep their dense parameters).
#[must_use]
pub fn scheme_params(shape: &LayerShape, scheme: TransferScheme) -> u64 {
    if !scheme.applies_to(shape) {
        return shape.params();
    }
    match scheme {
        TransferScheme::Dcnn { .. } => {
            let z = scheme
                .effective_meta(shape.k())
                .expect("applies_to implies an effective meta extent");
            dcnn_params(shape, z)
        }
        TransferScheme::Scnn => scnn_params(shape),
    }
}

/// Per-layer TFE MACs under a scheme and reuse configuration
/// (untransferable layers run conventionally at their dense MAC count).
#[must_use]
pub fn scheme_macs(shape: &LayerShape, scheme: TransferScheme, reuse: ReuseConfig) -> u64 {
    if !scheme.applies_to(shape) {
        return shape.macs();
    }
    match scheme {
        TransferScheme::Dcnn { .. } => {
            let z = scheme
                .effective_meta(shape.k())
                .expect("applies_to implies an effective meta extent");
            dcnn_macs_with(shape, z, reuse)
        }
        TransferScheme::Scnn => scnn_macs_with(shape, reuse),
    }
}

fn group_count(z: usize, k: usize) -> usize {
    let per_axis = z.saturating_sub(k) + 1;
    per_axis * per_axis
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vgg_layer() -> LayerShape {
        LayerShape::conv("conv", 64, 64, 56, 56, 3, 1, 1).unwrap()
    }

    #[test]
    fn eq4_eq5_paper_values() {
        // Z=4, K=3 -> 2.25x; Z=6, K=3 -> 4x (Fig. 17: "2.27x" and "4.0x").
        assert_eq!(dcnn_param_reduction(4, 3), 2.25);
        assert_eq!(dcnn_param_reduction(6, 3), 4.0);
        assert_eq!(dcnn_mac_reduction(6, 3), 4.0);
        // Z=6, K=5 (GoogLeNet heterogeneous meta): 4*25/36.
        assert!((dcnn_param_reduction(6, 5) - 100.0 / 36.0).abs() < 1e-12);
    }

    #[test]
    fn largest_reduction_at_k_equal_half_z_plus_one() {
        // Section V.E: K = (Z+1)/2 maximizes the reduction for fixed Z.
        let z = 7;
        let best_k = usize::div_ceil(z, 2);
        let best = dcnn_param_reduction(z, best_k);
        for k in 2..=z {
            assert!(dcnn_param_reduction(z, k) <= best + 1e-12, "k={k}");
        }
    }

    #[test]
    fn dcnn_tfe_macs_matches_eq3() {
        let shape = vgg_layer();
        // Eq. 3 with M divisible by G: E·F·M·Z²·N / (Z−K+1)².
        let z = 6u64;
        let expected =
            shape.e() as u64 * shape.f() as u64 * shape.m() as u64 * z * z * shape.n() as u64 / 16;
        assert_eq!(dcnn_tfe_macs(&shape, 6), expected);
        // And the ratio against Eq. 1 equals Eq. 5.
        let ratio = shape.macs() as f64 / dcnn_tfe_macs(&shape, 6) as f64;
        assert!((ratio - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fig19_dcnn_ablation_factors() {
        let shape = vgg_layer();
        let base = shape.macs() as f64;
        // 4x4 DCNN: PPSR and ERRR each give 1.5x, combined 2.25x.
        let p = base / dcnn_macs_with(&shape, 4, ReuseConfig::PPSR_ONLY) as f64;
        let e = base / dcnn_macs_with(&shape, 4, ReuseConfig::ERRR_ONLY) as f64;
        let full = base / dcnn_macs_with(&shape, 4, ReuseConfig::FULL) as f64;
        assert!((p - 1.5).abs() < 1e-9);
        assert!((e - 1.5).abs() < 1e-9);
        assert!((full - 2.25).abs() < 1e-9);
        // 6x6 DCNN: 2.0x each, 4.0x combined.
        let p6 = base / dcnn_macs_with(&shape, 6, ReuseConfig::PPSR_ONLY) as f64;
        let full6 = base / dcnn_macs_with(&shape, 6, ReuseConfig::FULL) as f64;
        assert!((p6 - 2.0).abs() < 1e-9);
        assert!((full6 - 4.0).abs() < 1e-9);
        // No reuse: direct implementation, no savings (Eq. 2).
        assert_eq!(dcnn_macs_with(&shape, 6, ReuseConfig::NONE), shape.macs());
    }

    #[test]
    fn fig19_scnn_ablation_factors() {
        // Stored 2 of 8; PPSR alone frees 2, ERRR alone frees 2, both free 6.
        assert!((scnn_mac_reduction(ReuseConfig::NONE) - 1.0).abs() < 1e-9);
        assert!((scnn_mac_reduction(ReuseConfig::PPSR_ONLY) - 8.0 / 6.0).abs() < 1e-9);
        assert!((scnn_mac_reduction(ReuseConfig::ERRR_ONLY) - 8.0 / 6.0).abs() < 1e-9);
        assert!((scnn_mac_reduction(ReuseConfig::FULL) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn scnn_param_reduction_is_4x() {
        assert_eq!(scnn_param_reduction(), 4.0);
        let shape = vgg_layer();
        assert_eq!(shape.params() / scnn_params(&shape), 4);
    }

    #[test]
    fn dcnn_params_charge_partial_meta_filters() {
        // M = 10 with G = 4 needs ceil(10/4) = 3 meta filters.
        let shape = LayerShape::conv("c", 2, 10, 8, 8, 3, 1, 1).unwrap();
        assert_eq!(dcnn_params(&shape, 4), 3 * 2 * 16);
    }

    #[test]
    fn untransferable_layers_keep_dense_costs() {
        let pw = LayerShape::conv("pw", 64, 64, 28, 28, 1, 1, 0).unwrap();
        for scheme in [
            TransferScheme::DCNN4,
            TransferScheme::DCNN6,
            TransferScheme::Scnn,
        ] {
            assert_eq!(scheme_params(&pw, scheme), pw.params());
            assert_eq!(scheme_macs(&pw, scheme, ReuseConfig::FULL), pw.macs());
        }
        let fc = LayerShape::fully_connected("fc", 4096, 1000).unwrap();
        assert_eq!(
            scheme_macs(&fc, TransferScheme::Scnn, ReuseConfig::FULL),
            fc.macs()
        );
    }

    #[test]
    fn scheme_dispatch_uses_heterogeneous_meta() {
        // 5x5 filter under DCNN4 uses the 6x6 meta filter.
        let shape = LayerShape::conv("inc5", 16, 32, 14, 14, 5, 1, 2).unwrap();
        let params = scheme_params(&shape, TransferScheme::DCNN4);
        assert_eq!(params, dcnn_params(&shape, 6));
    }
}
