//! Technical-specification tables (Table III of the paper).

use crate::area::AreaModel;
use crate::power::{EnergyModel, EYERISS_POWER_MW};
use serde::Serialize;
use tfe_nets::zoo;
use tfe_sim::config::TfeConfig;
use tfe_sim::perf::{NetworkPerf, PerfConfig};
use tfe_transfer::TransferScheme;

/// One row set of Table III.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TechSpecs {
    /// Architecture name.
    pub architecture: String,
    /// Process technology label.
    pub technology: String,
    /// Supply voltage in volts.
    pub voltage_v: f64,
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// On-chip memory in KB.
    pub memory_kb: f64,
    /// Number of PEs.
    pub pes: usize,
    /// Core area in mm².
    pub area_mm2: f64,
    /// Average power on the VGG/AlexNet calibration workload, mW.
    pub power_mw: f64,
}

/// The TFE's specification row, computed from the area and energy models
/// on the paper's calibration workload (VGGNet and AlexNet averaged,
/// SCNN scheme).
#[must_use]
pub fn tfe_specs() -> TechSpecs {
    let cfg = TfeConfig::paper();
    let area = AreaModel::new().breakdown(&cfg);
    let energy = EnergyModel::new();
    let perf_cfg = PerfConfig::default();
    let mut power_sum = 0.0;
    let mut n = 0.0;
    for net in [zoo::vgg16(), zoo::alexnet()] {
        let perf = NetworkPerf::evaluate(&net.plan(TransferScheme::Scnn), &perf_cfg);
        power_sum += energy.onchip_power_mw(&perf.total_counters(), perf.runtime_seconds());
        n += 1.0;
    }
    TechSpecs {
        architecture: "TFE".to_owned(),
        technology: "TSMC 65nm 1P8M (modelled)".to_owned(),
        voltage_v: 1.0,
        frequency_mhz: cfg.frequency_hz as f64 / 1e6,
        memory_kb: cfg.total_memory_bytes() as f64 / 1024.0,
        pes: cfg.pes(),
        area_mm2: area.total_mm2(),
        power_mw: power_sum / n,
    }
}

/// Eyeriss's specification row, with the figures the TFE paper extracted
/// from the Eyeriss publication.
#[must_use]
pub fn eyeriss_specs() -> TechSpecs {
    TechSpecs {
        architecture: "Eyeriss".to_owned(),
        technology: "TSMC 65nm 1P9M (published)".to_owned(),
        voltage_v: 1.0,
        frequency_mhz: 200.0,
        memory_kb: 181.5,
        pes: 168,
        area_mm2: 12.25,
        power_mw: EYERISS_POWER_MW,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfe_power_near_62_mw() {
        let specs = tfe_specs();
        // Table III: 62 mW. The calibrated model should land in a tight
        // band around it.
        assert!(
            (40.0..90.0).contains(&specs.power_mw),
            "power {} mW",
            specs.power_mw
        );
    }

    #[test]
    fn tfe_beats_eyeriss_on_area_and_power() {
        let tfe = tfe_specs();
        let ey = eyeriss_specs();
        // Paper: 1.73x area and 4.15x power advantage.
        let area_ratio = ey.area_mm2 / tfe.area_mm2;
        let power_ratio = ey.power_mw / tfe.power_mw;
        assert!(area_ratio > 1.3, "area ratio {area_ratio}");
        assert!(power_ratio > 2.5, "power ratio {power_ratio}");
    }

    #[test]
    fn both_designs_run_at_200_mhz_65nm() {
        for s in [tfe_specs(), eyeriss_specs()] {
            assert_eq!(s.frequency_mhz, 200.0);
            assert!(s.technology.contains("65nm"));
            assert_eq!(s.voltage_v, 1.0);
        }
    }

    #[test]
    fn pe_counts_match_table3() {
        assert_eq!(tfe_specs().pes, 256);
        assert_eq!(eyeriss_specs().pes, 168);
    }
}
