//! Energy, power and area model of the TFE (Table III, Fig. 14, Fig. 18).
//!
//! The paper obtains area/power from Synopsys DC + TSMC 65 nm synthesis
//! and DRAM power from Micron's DDR4 calculator. Neither toolchain exists
//! here, so this crate substitutes a **component-level model**: per-event
//! energies and per-component areas at 65 nm (values in the range of
//! published 65 nm characterizations, e.g. Horowitz ISSCC'14 scaled from
//! 45 nm, and the Eyeriss paper's own breakdowns), applied to the event
//! counts the simulator produces. The paper's comparison methodology is
//! preserved exactly: Eyeriss power is taken from its own publication
//! (Section V.A: "the power consumptions … are directly extracted from
//! the Eyeriss paper"), and energy efficiency is performance per energy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod power;
pub mod specs;

pub use area::{AreaBreakdown, AreaModel};
pub use power::{EnergyBreakdown, EnergyModel};
pub use specs::{eyeriss_specs, tfe_specs, TechSpecs};
