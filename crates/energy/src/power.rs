//! Per-event energy model and the Fig. 14(b) / Fig. 18 power accounting.

use tfe_sim::counters::Counters;

/// Per-event energies at TSMC 65 nm, 1 V, in picojoules.
///
/// The values sit in the range of published 65 nm characterizations
/// (16-bit multiply ≈ 0.3–1 pJ, small register file access ≈ 0.1–0.3 pJ,
/// a few-KB SRAM access ≈ 3–8 pJ per 16-bit word, DRAM ≈ 2–4 pJ/bit for
/// the interface plus device). They are *calibrated jointly* so that the
/// modelled TFE running the paper's calibration workload (VGG + AlexNet
/// average) lands at the synthesized design's 62 mW — the substitution
/// documented in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConstants {
    /// One 16-bit multiply.
    pub multiply_pj: f64,
    /// One 32-bit accumulate.
    pub add_pj: f64,
    /// One stacked-register / pipeline-register access.
    pub register_pj: f64,
    /// Operand-register reads feeding each multiply (weight + input).
    pub operand_reads_per_multiply: f64,
    /// One 16-bit word access to an on-chip SRAM (PSum/input memories).
    pub sram_word_pj: f64,
    /// One bit of off-chip DRAM traffic.
    pub dram_bit_pj: f64,
    /// Static + control power in milliwatts (clock tree, top control).
    pub static_mw: f64,
}

impl Default for EnergyConstants {
    fn default() -> Self {
        EnergyConstants {
            multiply_pj: 0.25,
            add_pj: 0.08,
            register_pj: 0.35,
            operand_reads_per_multiply: 2.0,
            sram_word_pj: 5.0,
            dram_bit_pj: 2.5,
            static_mw: 2.0,
        }
    }
}

/// Energy of one network execution, split by component class (Fig. 14(b)'s
/// categories).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// PE array (multipliers + adders), in millijoules.
    pub pe_mj: f64,
    /// Registers (SR group, operand and broadcast registers), mJ.
    pub register_mj: f64,
    /// On-chip SRAM (PSum, input, output, alignment memories), mJ.
    pub sram_mj: f64,
    /// Off-chip DRAM traffic, mJ (reported separately — the paper's chip
    /// power excludes it, as Eyeriss's does).
    pub dram_mj: f64,
    /// Static + control energy over the runtime, mJ.
    pub static_mj: f64,
}

impl EnergyBreakdown {
    /// On-chip energy (what the 62 mW figure covers): everything except
    /// DRAM.
    #[must_use]
    pub fn onchip_mj(&self) -> f64 {
        self.pe_mj + self.register_mj + self.sram_mj + self.static_mj
    }

    /// Total energy including DRAM.
    #[must_use]
    pub fn total_mj(&self) -> f64 {
        self.onchip_mj() + self.dram_mj
    }

    /// Fraction of on-chip energy spent in memory and registers — the
    /// quantity Fig. 14(b) reports as 75.0 %.
    #[must_use]
    pub fn memory_register_fraction(&self) -> f64 {
        (self.register_mj + self.sram_mj) / self.onchip_mj()
    }

    /// Fraction of on-chip energy spent in the PE array (Fig. 14(b):
    /// 21.1 %).
    #[must_use]
    pub fn pe_fraction(&self) -> f64 {
        self.pe_mj / self.onchip_mj()
    }
}

/// The energy model: constants plus conversion helpers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyModel {
    /// The per-event constants in force.
    pub constants: EnergyConstants,
}

impl EnergyModel {
    /// A model with the default (calibrated) constants.
    #[must_use]
    pub fn new() -> Self {
        EnergyModel::default()
    }

    /// Converts simulator counters plus a runtime into an energy
    /// breakdown.
    #[must_use]
    pub fn breakdown(&self, counters: &Counters, runtime_seconds: f64) -> EnergyBreakdown {
        let c = &self.constants;
        let pj_to_mj = 1e-9;
        let pe_mj = (counters.multiplies as f64 * c.multiply_pj + counters.adds as f64 * c.add_pj)
            * pj_to_mj;
        let register_mj = (counters.register_accesses() as f64
            + counters.multiplies as f64 * c.operand_reads_per_multiply)
            * c.register_pj
            * pj_to_mj;
        let sram_mj = counters.sram_accesses() as f64 * c.sram_word_pj * pj_to_mj;
        let dram_mj = counters.dram_bits as f64 * c.dram_bit_pj * pj_to_mj;
        let static_mj = c.static_mw * runtime_seconds;
        EnergyBreakdown {
            pe_mj,
            register_mj,
            sram_mj,
            dram_mj,
            static_mj,
        }
    }

    /// Average on-chip power in milliwatts over a runtime.
    #[must_use]
    pub fn onchip_power_mw(&self, counters: &Counters, runtime_seconds: f64) -> f64 {
        self.breakdown(counters, runtime_seconds).onchip_mj() / runtime_seconds
    }
}

/// Eyeriss chip power on the comparison workloads, as reported in its own
/// paper and reused verbatim by the TFE paper (Table III: 257 mW average
/// over VGGNet and AlexNet at 200 MHz, 1 V).
pub const EYERISS_POWER_MW: f64 = 257.0;

/// Model-based sanity estimate of Eyeriss power from its dataflow's event
/// counts, using the same per-event constants as the TFE model.
///
/// The row-stationary dataflow executes every dense MAC and makes
/// [`tfe_eyeriss::EyerissConfig::rf_accesses_per_mac`] scratchpad accesses
/// per MAC — the register pressure the TFE's SAFM removes. This estimate
/// exists to cross-check that the *same* energy constants that put the
/// TFE at ~62 mW also put Eyeriss in the vicinity of its published
/// 257 mW, i.e. the Fig. 18 comparison is not an artifact of calibration.
#[must_use]
pub fn eyeriss_power_estimate_mw(
    model: &EnergyModel,
    perf: &tfe_eyeriss::EyerissPerf,
    macs: u64,
) -> f64 {
    let c = &model.constants;
    let pj_to_mj = 1e-9;
    let compute_mj = macs as f64 * (c.multiply_pj + c.add_pj) * pj_to_mj;
    let rf_mj = perf.rf_accesses() as f64 * c.register_pj * pj_to_mj;
    // Global-buffer traffic: roughly one 16-bit word per MAC/filter-width
    // (row reuse amortizes K taps per fetch).
    let glb_words = macs as f64 / 3.0;
    let glb_mj = glb_words * c.sram_word_pj * pj_to_mj;
    let static_mj = c.static_mw * perf.runtime_seconds();
    (compute_mj + rf_mj + glb_mj + static_mj) / perf.runtime_seconds()
}

/// Energy-efficiency improvement (performance per energy) of an
/// architecture A over an architecture B running the same workload:
/// `(speedup of A over B) × (power of B / power of A)`.
#[must_use]
pub fn energy_efficiency_improvement(speedup: f64, power_a_mw: f64, power_b_mw: f64) -> f64 {
    speedup * power_b_mw / power_a_mw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters() -> Counters {
        Counters {
            dense_macs: 4_000_000,
            multiplies: 1_000_000,
            adds: 1_100_000,
            sr_reads: 280_000,
            sr_writes: 140_000,
            psum_mem_reads: 90_000,
            psum_mem_writes: 90_000,
            input_mem_reads: 50_000,
            weight_reads: 10_000,
            dram_bits: 8_000_000,
            cycles: 5_000,
        }
    }

    #[test]
    fn breakdown_components_are_positive_and_sum() {
        let model = EnergyModel::new();
        let b = model.breakdown(&sample_counters(), 0.01);
        assert!(b.pe_mj > 0.0 && b.register_mj > 0.0 && b.sram_mj > 0.0);
        assert!((b.total_mj() - (b.onchip_mj() + b.dram_mj)).abs() < 1e-12);
    }

    #[test]
    fn memory_dominates_pe_as_in_fig14() {
        // Fig. 14(b): memory + registers 75.0 %, PE array 21.1 %. With
        // reuse removing most multiplies, the residual traffic dominates.
        let model = EnergyModel::new();
        let b = model.breakdown(&sample_counters(), 0.01);
        assert!(
            b.memory_register_fraction() > b.pe_fraction(),
            "mem {} vs pe {}",
            b.memory_register_fraction(),
            b.pe_fraction()
        );
    }

    #[test]
    fn power_scales_inversely_with_runtime() {
        let model = EnergyModel::new();
        let c = sample_counters();
        let fast = model.onchip_power_mw(&c, 0.001);
        let slow = model.onchip_power_mw(&c, 0.01);
        assert!(fast > slow);
    }

    #[test]
    fn eyeriss_estimate_near_published_power() {
        use tfe_eyeriss::{EyerissConfig, EyerissPerf};
        use tfe_nets::zoo;
        let model = EnergyModel::new();
        let cfg = EyerissConfig::paper();
        let mut sum = 0.0;
        for net in [zoo::vgg16(), zoo::alexnet()] {
            let perf = EyerissPerf::evaluate(&net, &cfg);
            sum += eyeriss_power_estimate_mw(&model, &perf, net.total_macs());
        }
        let avg = sum / 2.0;
        // Published: 257 mW. The cross-check must land within 2x — the
        // same constants cannot both flatter the TFE and bury Eyeriss.
        assert!((130.0..520.0).contains(&avg), "estimate {avg} mW");
    }

    #[test]
    fn efficiency_improvement_combines_speedup_and_power() {
        // 3x faster at a quarter of the power = 12x the efficiency.
        let ee = energy_efficiency_improvement(3.0, 64.25, EYERISS_POWER_MW);
        assert!((ee - 12.0).abs() < 1e-9);
    }
}
