//! Area model (Table III and Fig. 14(a)).
//!
//! Component areas at TSMC 65 nm, built bottom-up from unit areas and the
//! hardware configuration. Unit values are in the range of published
//! 65 nm numbers (a 16-bit multiplier ≈ 1.5–2 kµm², SRAM ≈ 45–60
//! kµm²/KB including periphery for few-KB macros) and are jointly chosen
//! so the totals land near the synthesized design's 7.1 mm² with
//! Fig. 14(a)'s breakdown shape (memory + registers ≈ 69 %, PE array
//! ≈ 17 %, control ≈ 9 %).

use tfe_sim::config::TfeConfig;

/// Unit areas at 65 nm, in square micrometres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaConstants {
    /// One PE: 16-bit multiplier + 32-bit adder + 3 pipeline registers +
    /// mux and clock gating.
    pub pe_um2: f64,
    /// One stacked register (a few 32-bit registers plus muxing).
    pub sr_um2: f64,
    /// One KB of on-chip SRAM including periphery.
    pub sram_per_kb_um2: f64,
    /// One broadcast register lane (per PE column group).
    pub broadcast_reg_um2: f64,
    /// Adder trees, pooling units, ReLU and output muxing.
    pub output_logic_um2: f64,
    /// Top control as a fraction of the subtotal (Fig. 14(a): 8.8 %).
    pub control_fraction: f64,
}

impl Default for AreaConstants {
    fn default() -> Self {
        AreaConstants {
            pe_um2: 4_300.0,
            sr_um2: 2_500.0,
            sram_per_kb_um2: 47_000.0,
            broadcast_reg_um2: 900.0,
            output_logic_um2: 180_000.0,
            control_fraction: 0.088,
        }
    }
}

/// Component areas of a configuration, in mm².
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// PE array.
    pub pe_array_mm2: f64,
    /// SR group + broadcast registers + output logic registers.
    pub registers_mm2: f64,
    /// On-chip SRAM memories.
    pub sram_mm2: f64,
    /// Top control (derived fraction).
    pub control_mm2: f64,
}

impl AreaBreakdown {
    /// Total area in mm².
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.pe_array_mm2 + self.registers_mm2 + self.sram_mm2 + self.control_mm2
    }

    /// Fraction of area in memory + registers (Fig. 14(a): 69.3 %).
    #[must_use]
    pub fn memory_register_fraction(&self) -> f64 {
        (self.registers_mm2 + self.sram_mm2) / self.total_mm2()
    }

    /// Fraction of area in the PE array (Fig. 14(a): 16.5 %).
    #[must_use]
    pub fn pe_fraction(&self) -> f64 {
        self.pe_array_mm2 / self.total_mm2()
    }

    /// Fraction of area in control (Fig. 14(a): 8.8 %).
    #[must_use]
    pub fn control_fraction(&self) -> f64 {
        self.control_mm2 / self.total_mm2()
    }
}

/// The area model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AreaModel {
    /// Unit-area constants in force.
    pub constants: AreaConstants,
}

impl AreaModel {
    /// A model with the default constants.
    #[must_use]
    pub fn new() -> Self {
        AreaModel::default()
    }

    /// Computes the component areas of a TFE configuration.
    #[must_use]
    pub fn breakdown(&self, cfg: &TfeConfig) -> AreaBreakdown {
        let c = &self.constants;
        let pe_array_mm2 = cfg.pes() as f64 * c.pe_um2 / 1e6;
        let registers_mm2 = (cfg.sr_count() as f64 * c.sr_um2
            + cfg.pe_rows as f64 * c.broadcast_reg_um2
            + c.output_logic_um2)
            / 1e6;
        let sram_kb = cfg.total_memory_bytes() as f64 / 1024.0;
        let sram_mm2 = sram_kb * c.sram_per_kb_um2 / 1e6;
        let subtotal = pe_array_mm2 + registers_mm2 + sram_mm2;
        let control_mm2 = subtotal * c.control_fraction / (1.0 - c.control_fraction);
        AreaBreakdown {
            pe_array_mm2,
            registers_mm2,
            sram_mm2,
            control_mm2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_area_near_paper_7_1_mm2() {
        let model = AreaModel::new();
        let b = model.breakdown(&TfeConfig::paper());
        let total = b.total_mm2();
        assert!((5.5..8.5).contains(&total), "total {total} mm^2");
    }

    #[test]
    fn breakdown_shape_matches_fig14a() {
        let model = AreaModel::new();
        let b = model.breakdown(&TfeConfig::paper());
        // Memory + registers dominate (paper: 69.3 %).
        assert!(
            (0.55..0.85).contains(&b.memory_register_fraction()),
            "mem+reg {}",
            b.memory_register_fraction()
        );
        // PE array is a minority (paper: 16.5 %).
        assert!(
            (0.10..0.30).contains(&b.pe_fraction()),
            "pe {}",
            b.pe_fraction()
        );
        // Control fraction equals the configured 8.8 %.
        assert!((b.control_fraction() - 0.088).abs() < 1e-9);
    }

    #[test]
    fn fractions_sum_to_one() {
        let model = AreaModel::new();
        let b = model.breakdown(&TfeConfig::paper());
        let sum = b.memory_register_fraction() + b.pe_fraction() + b.control_fraction();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn area_scales_with_pe_count() {
        let model = AreaModel::new();
        let small = TfeConfig {
            pe_rows: 8,
            pe_cols: 8,
            ..TfeConfig::paper()
        };
        let a_small = model.breakdown(&small);
        let a_big = model.breakdown(&TfeConfig::paper());
        assert!(a_small.pe_array_mm2 < a_big.pe_array_mm2);
        assert_eq!(a_small.sram_mm2, a_big.sram_mm2);
    }
}
