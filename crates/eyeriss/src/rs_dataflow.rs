//! Functional row-stationary dataflow — the Eyeriss baseline as running
//! code.
//!
//! In RS, each PE holds one *filter row* in its weight scratchpad and
//! slides it along one *input row*, producing one row of 1-D partial
//! sums; a vertical set of `K` PEs accumulates the rows into a 2-D window
//! result. Every MAC costs four scratchpad accesses — filter read, input
//! read, partial-sum read and write — which is the per-MAC register
//! pressure the TFE's comparison targets (and what
//! [`crate::EyerissConfig::rf_accesses_per_mac`] encodes).
//!
//! Tests validate the outputs bit-exactly against the reference
//! convolution and pin the counted accesses to the performance model's
//! constant.

use tfe_tensor::fixed::{Accum, Fx16};
use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;
use tfe_tensor::TensorError;

/// Scratchpad access counts of one RS execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RsCounters {
    /// MACs executed (every dense MAC; Eyeriss does not skip work).
    pub macs: u64,
    /// Filter-scratchpad reads.
    pub filter_spad_reads: u64,
    /// Input-scratchpad reads.
    pub input_spad_reads: u64,
    /// Partial-sum-scratchpad reads.
    pub psum_spad_reads: u64,
    /// Partial-sum-scratchpad writes.
    pub psum_spad_writes: u64,
}

impl RsCounters {
    /// Total scratchpad accesses.
    #[must_use]
    pub fn total_spad_accesses(&self) -> u64 {
        self.filter_spad_reads
            + self.input_spad_reads
            + self.psum_spad_reads
            + self.psum_spad_writes
    }

    /// Accesses per MAC (the RS dataflow's defining constant: 4).
    #[must_use]
    pub fn accesses_per_mac(&self) -> f64 {
        self.total_spad_accesses() as f64 / self.macs.max(1) as f64
    }
}

/// One RS processing element: a resident filter row convolved against a
/// streamed input row, with per-tap scratchpad accounting.
fn pe_row_conv(
    filter_row: &[Fx16],
    input_row: &[Fx16],
    stride: usize,
    counters: &mut RsCounters,
) -> Vec<Accum> {
    let k = filter_row.len();
    if input_row.len() < k {
        return Vec::new();
    }
    let out_len = (input_row.len() - k) / stride + 1;
    (0..out_len)
        .map(|x| {
            let mut psum = Accum::ZERO;
            for j in 0..k {
                // filter spad read + input spad read + psum read/write.
                counters.filter_spad_reads += 1;
                counters.input_spad_reads += 1;
                counters.psum_spad_reads += 1;
                counters.psum_spad_writes += 1;
                counters.macs += 1;
                psum += input_row[x * stride + j].widening_mul(filter_row[j]);
            }
            psum
        })
        .collect()
}

/// Executes one dense layer with the row-stationary dataflow.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if operands disagree with
/// `shape`.
pub fn run_layer_rs(
    input: &Tensor4<Fx16>,
    weights: &Tensor4<Fx16>,
    shape: &LayerShape,
) -> Result<(Tensor4<Accum>, RsCounters), TensorError> {
    let [batch, ic, ih, iw] = input.dims();
    for (what, expected, actual) in [
        ("input channels", shape.n(), ic),
        ("input height", shape.h(), ih),
        ("input width", shape.w(), iw),
        ("filter count", shape.m(), weights.dims()[0]),
    ] {
        if expected != actual {
            return Err(TensorError::ShapeMismatch {
                what,
                expected,
                actual,
            });
        }
    }
    let (k, e, f, s, p) = (shape.k(), shape.e(), shape.f(), shape.stride(), shape.pad());
    let mut counters = RsCounters::default();
    let mut out = Tensor4::zeros([batch, shape.m(), e, f]);
    for b in 0..batch {
        // Zero-padded input rows per channel.
        let padded: Vec<Vec<Vec<Fx16>>> = (0..shape.n())
            .map(|c| {
                let mut plane = vec![vec![Fx16::ZERO; shape.w() + 2 * p]; shape.h() + 2 * p];
                for y in 0..shape.h() {
                    for x in 0..shape.w() {
                        plane[y + p][x + p] = input.get([b, c, y, x]);
                    }
                }
                plane
            })
            .collect();
        for m in 0..shape.m() {
            for oy in 0..e {
                // A K-tall PE set: PE ky convolves filter row ky against
                // input row oy*s + ky; the set accumulates vertically.
                let mut window = vec![Accum::ZERO; f];
                for ky in 0..k {
                    // Channel-major accumulation: each channel's row conv
                    // feeds the same psum spad.
                    #[allow(clippy::needless_range_loop)]
                    for c in 0..shape.n() {
                        let filter_row: Vec<Fx16> =
                            (0..k).map(|kx| weights.get([m, c, ky, kx])).collect();
                        let row =
                            pe_row_conv(&filter_row, &padded[c][oy * s + ky], s, &mut counters);
                        for (acc, v) in window.iter_mut().zip(row) {
                            *acc += v;
                        }
                    }
                }
                for (ox, &v) in window.iter().enumerate() {
                    out.set([b, m, oy, ox], v);
                }
            }
        }
    }
    Ok((out, counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_tensor::conv::conv2d_fx;

    fn det(seed: &mut u32) -> f32 {
        *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
        (((*seed >> 20) & 0xf) as f32 - 7.5) / 4.0
    }

    #[test]
    fn rs_dataflow_matches_reference_convolution() {
        let shape = LayerShape::conv("rs", 2, 3, 8, 8, 3, 1, 1).unwrap();
        let mut seed = 5;
        let input = Tensor4::from_fn([1, 2, 8, 8], |_| Fx16::from_f32(det(&mut seed)));
        let weights = Tensor4::from_fn([3, 2, 3, 3], |_| Fx16::from_f32(det(&mut seed)));
        let (out, _) = run_layer_rs(&input, &weights, &shape).unwrap();
        let reference = conv2d_fx(&input, &weights, &shape).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn rs_dataflow_matches_reference_with_stride() {
        let shape = LayerShape::conv("rs2", 1, 2, 9, 9, 3, 2, 1).unwrap();
        let mut seed = 9;
        let input = Tensor4::from_fn([1, 1, 9, 9], |_| Fx16::from_f32(det(&mut seed)));
        let weights = Tensor4::from_fn([2, 1, 3, 3], |_| Fx16::from_f32(det(&mut seed)));
        let (out, _) = run_layer_rs(&input, &weights, &shape).unwrap();
        let reference = conv2d_fx(&input, &weights, &shape).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn four_spad_accesses_per_mac() {
        // Pins the functional dataflow to the performance model's
        // rf_accesses_per_mac = 4.
        let shape = LayerShape::conv("rs", 2, 2, 6, 6, 3, 1, 1).unwrap();
        let input = Tensor4::filled([1, 2, 6, 6], Fx16::ONE);
        let weights = Tensor4::filled([2, 2, 3, 3], Fx16::from_f32(0.5));
        let (_, counters) = run_layer_rs(&input, &weights, &shape).unwrap();
        assert_eq!(counters.accesses_per_mac(), 4.0);
        assert_eq!(counters.macs, counters.filter_spad_reads);
    }

    #[test]
    fn rs_executes_every_dense_mac_including_pad_taps() {
        // Unlike the TFE's reuse machinery, RS computes every window tap;
        // padded taps count too (its PEs stream the padded row).
        let shape = LayerShape::conv("rs", 1, 1, 4, 4, 3, 1, 1).unwrap();
        let input = Tensor4::filled([1, 1, 4, 4], Fx16::ONE);
        let weights = Tensor4::filled([1, 1, 3, 3], Fx16::ONE);
        let (_, counters) = run_layer_rs(&input, &weights, &shape).unwrap();
        // E x F x K^2 = 16 x 9 = 144 MACs (pad taps included).
        assert_eq!(counters.macs, 144);
        assert!(counters.macs >= shape.macs());
    }

    #[test]
    fn operand_mismatch_rejected() {
        let shape = LayerShape::conv("rs", 2, 2, 6, 6, 3, 1, 1).unwrap();
        let input = Tensor4::filled([1, 1, 6, 6], Fx16::ONE); // wrong channels
        let weights = Tensor4::filled([2, 2, 3, 3], Fx16::ONE);
        assert!(run_layer_rs(&input, &weights, &shape).is_err());
    }
}
