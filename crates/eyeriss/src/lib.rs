//! Eyeriss baseline model (Chen et al., ISCA 2016) — the comparison
//! architecture of every TFE experiment.
//!
//! Eyeriss is a row-stationary (RS) spatial accelerator: a 12×14 PE array
//! where each PE performs a 1-D row convolution from local scratchpads and
//! PE *sets* of `K` rows × `e` columns cover 2-D windows. The model here
//! captures what the speedup comparison needs:
//!
//! * a per-layer **utilization** model of the RS mapping (how much of the
//!   array holds useful work),
//! * a cycle model at a **normalized** PE count (Section V.A: "the
//!   computational unit numbers are normalized to be the same in all
//!   compared architectures with hardware utilization taken into
//!   consideration"),
//! * per-MAC scratchpad/NoC access counts for the energy comparison (the
//!   RS dataflow reads weight, input and partial sum from local register
//!   files on every MAC — the register pressure the TFE's SAFM avoids).
//!
//! # Example
//!
//! ```
//! use tfe_eyeriss::{EyerissConfig, EyerissPerf};
//! use tfe_nets::zoo;
//!
//! let perf = EyerissPerf::evaluate(&zoo::vgg16(), &EyerissConfig::default());
//! assert!(perf.total_cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rs_dataflow;

use tfe_nets::{Network, NetworkLayer};
use tfe_tensor::shape::ConvKind;

/// Configuration of the Eyeriss baseline model.
#[derive(Debug, Clone, PartialEq)]
pub struct EyerissConfig {
    /// Physical PE-array rows (12 in the silicon).
    pub array_rows: usize,
    /// Physical PE-array columns (14 in the silicon).
    pub array_cols: usize,
    /// PE count used for normalized speed comparisons (the paper equalizes
    /// compute units with the TFE's 256).
    pub normalized_pes: usize,
    /// Clock frequency in Hz (200 MHz, as in the paper's comparison).
    pub frequency_hz: u64,
    /// Effective utilization of the RS pipeline on single-tap (1×1)
    /// rows, where the row-stationary primitive degenerates. Eyeriss's
    /// spad-based pipeline is built for K-tap rows; a single-tap row
    /// leaves the input/psum reuse registers idle.
    pub single_tap_utilization: f64,
    /// Register-file (scratchpad) accesses per MAC in the RS dataflow:
    /// filter spad read, input spad read, psum spad read + write.
    pub rf_accesses_per_mac: f64,
}

impl EyerissConfig {
    /// The configuration used throughout the paper's comparisons.
    #[must_use]
    pub fn paper() -> Self {
        EyerissConfig {
            array_rows: 12,
            array_cols: 14,
            normalized_pes: 256,
            frequency_hz: 200_000_000,
            single_tap_utilization: 0.75,
            rf_accesses_per_mac: 4.0,
        }
    }
}

impl Default for EyerissConfig {
    fn default() -> Self {
        EyerissConfig::paper()
    }
}

/// PE-array utilization of the row-stationary mapping for one layer.
///
/// Vertical: PE sets are `K` rows tall; `⌊rows/K⌋` sets stack, leaving
/// `rows mod K` idle (filters taller than the array fold at full
/// utilization). Horizontal: each column computes one ofmap row, so maps
/// shorter than the array (`E < cols`) strand columns.
#[must_use]
pub fn utilization(cfg: &EyerissConfig, layer: &NetworkLayer) -> f64 {
    let shape = layer.shape();
    if shape.kind() == ConvKind::FullyConnected {
        // FC layers run as 1x1 convolution over a length-1 map; the paper
        // treats them as neither helped nor hurt in the comparison.
        return 1.0;
    }
    let k = shape.k();
    if k == 1 {
        return cfg.single_tap_utilization;
    }
    let vertical = if k >= cfg.array_rows {
        1.0 // folded mapping keeps all rows busy
    } else {
        ((cfg.array_rows / k) * k) as f64 / cfg.array_rows as f64
    };
    let e = shape.e();
    let horizontal = if e >= cfg.array_cols {
        1.0
    } else {
        ((cfg.array_cols / e) * e) as f64 / cfg.array_cols as f64
    };
    vertical * horizontal
}

/// Per-layer Eyeriss performance.
#[derive(Debug, Clone, PartialEq)]
pub struct EyerissLayerPerf {
    name: String,
    is_fc: bool,
    macs: u64,
    utilization: f64,
    cycles: u64,
}

impl EyerissLayerPerf {
    /// Evaluates the model for one layer.
    #[must_use]
    pub fn evaluate(layer: &NetworkLayer, cfg: &EyerissConfig) -> EyerissLayerPerf {
        let macs = layer.macs();
        let util = utilization(cfg, layer);
        let throughput = cfg.normalized_pes as f64 * util.max(f64::EPSILON);
        EyerissLayerPerf {
            name: layer.shape().name().to_owned(),
            is_fc: layer.is_fc(),
            macs,
            utilization: util,
            cycles: (macs as f64 / throughput).ceil() as u64,
        }
    }

    /// Layer name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the layer is fully connected.
    #[must_use]
    pub fn is_fc(&self) -> bool {
        self.is_fc
    }

    /// Dense MACs executed (Eyeriss performs every MAC).
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// Mapped utilization.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Cycles at the normalized PE count.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

/// Whole-network Eyeriss performance.
#[derive(Debug, Clone, PartialEq)]
pub struct EyerissPerf {
    network_name: String,
    layers: Vec<EyerissLayerPerf>,
    rf_accesses: u64,
    frequency_hz: u64,
}

impl EyerissPerf {
    /// Evaluates every layer of a network.
    #[must_use]
    pub fn evaluate(network: &Network, cfg: &EyerissConfig) -> EyerissPerf {
        let layers: Vec<EyerissLayerPerf> = network
            .layers()
            .iter()
            .map(|l| EyerissLayerPerf::evaluate(l, cfg))
            .collect();
        let rf_accesses = layers
            .iter()
            .map(|l| (l.macs as f64 * cfg.rf_accesses_per_mac) as u64)
            .sum();
        EyerissPerf {
            network_name: network.name().to_owned(),
            layers,
            rf_accesses,
            frequency_hz: cfg.frequency_hz,
        }
    }

    /// The network's name.
    #[must_use]
    pub fn network_name(&self) -> &str {
        &self.network_name
    }

    /// Per-layer results.
    #[must_use]
    pub fn layers(&self) -> &[EyerissLayerPerf] {
        &self.layers
    }

    /// Total cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(EyerissLayerPerf::cycles).sum()
    }

    /// Cycles in convolutional layers.
    #[must_use]
    pub fn conv_cycles(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| !l.is_fc())
            .map(EyerissLayerPerf::cycles)
            .sum()
    }

    /// Cycles in fully connected layers.
    #[must_use]
    pub fn fc_cycles(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.is_fc())
            .map(EyerissLayerPerf::cycles)
            .sum()
    }

    /// Total scratchpad accesses (for the energy comparison).
    #[must_use]
    pub fn rf_accesses(&self) -> u64 {
        self.rf_accesses
    }

    /// Runtime in seconds at the configured frequency.
    #[must_use]
    pub fn runtime_seconds(&self) -> f64 {
        self.total_cycles() as f64 / self.frequency_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_nets::zoo;

    #[test]
    fn vgg_3x3_layers_map_perfectly() {
        let cfg = EyerissConfig::paper();
        let net = zoo::vgg16();
        // conv1_1: K=3 (12/3 exact), E=224 > 14: full utilization.
        let perf = EyerissLayerPerf::evaluate(&net.layers()[0], &cfg);
        assert!((perf.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alexnet_11x11_strands_one_row() {
        let cfg = EyerissConfig::paper();
        let net = zoo::alexnet();
        let perf = EyerissLayerPerf::evaluate(&net.layers()[0], &cfg);
        assert!((perf.utilization() - 11.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn five_by_five_strands_two_rows() {
        let cfg = EyerissConfig::paper();
        let net = zoo::alexnet();
        let conv2 = &net.layers()[1];
        assert_eq!(conv2.shape().k(), 5);
        let perf = EyerissLayerPerf::evaluate(conv2, &cfg);
        assert!((perf.utilization() - 10.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn small_maps_strand_columns() {
        let cfg = EyerissConfig::paper();
        // ResNet stage 3 has E = 8 < 14 columns.
        let net = zoo::resnet56();
        let stage3 = net
            .layers()
            .iter()
            .find(|l| l.shape().e() == 8 && l.shape().k() == 3)
            .unwrap();
        let u = utilization(&cfg, stage3);
        assert!((u - 8.0 / 14.0).abs() < 1e-12, "{u}");
    }

    #[test]
    fn e_7_packs_two_sets_per_column_group() {
        let cfg = EyerissConfig::paper();
        let net = zoo::googlenet();
        let incep5 = net
            .layers()
            .iter()
            .find(|l| l.shape().name().contains("5a/3x3") && l.shape().k() == 3)
            .unwrap();
        assert_eq!(incep5.shape().e(), 7);
        // floor(14/7)*7 = 14: no stranding.
        assert!((utilization(&cfg, incep5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_tap_penalty_applies_to_1x1_not_fc() {
        let cfg = EyerissConfig::paper();
        let net = zoo::googlenet();
        let pw = net
            .layers()
            .iter()
            .find(|l| l.shape().k() == 1 && !l.is_fc())
            .unwrap();
        assert_eq!(utilization(&cfg, pw), 0.75);
        let fc = net.layers().iter().find(|l| l.is_fc()).unwrap();
        assert_eq!(utilization(&cfg, fc), 1.0);
    }

    #[test]
    fn cycles_track_macs_over_throughput() {
        let cfg = EyerissConfig::paper();
        let perf = EyerissPerf::evaluate(&zoo::vgg16(), &cfg);
        // VGG conv at full utilization: cycles ~ conv_macs / 256.
        let expected = zoo::vgg16().conv_macs() / 256;
        let got = perf.conv_cycles();
        let ratio = got as f64 / expected as f64;
        assert!((0.99..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rf_accesses_scale_with_macs() {
        let cfg = EyerissConfig::paper();
        let net = zoo::resnet56();
        let perf = EyerissPerf::evaluate(&net, &cfg);
        assert_eq!(perf.rf_accesses(), net.total_macs() * 4);
    }

    #[test]
    fn network_cycles_split_conv_fc() {
        let cfg = EyerissConfig::paper();
        let perf = EyerissPerf::evaluate(&zoo::alexnet(), &cfg);
        assert_eq!(perf.total_cycles(), perf.conv_cycles() + perf.fc_cycles());
        assert!(perf.fc_cycles() > 0);
        assert!(perf.runtime_seconds() > 0.0);
    }
}
