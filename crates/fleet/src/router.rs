//! The fleet router: model-id dispatch across shards, fleet-wide
//! snapshots, and the [`Frontend`] hookup that serves the whole fleet
//! through one `tfe-serve` TCP endpoint.

use crate::shard::Shard;
use crate::snapshot::FleetSnapshot;
use crate::spec::FleetSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tfe_serve::protocol::WireResponse;
use tfe_serve::{Frontend, Rejected, ServeResult, Ticket};
use tfe_sim::network::FunctionalNetwork;
use tfe_sim::SimError;
use tfe_telemetry::LatencyHistogram;
use tfe_tensor::fixed::Fx16;
use tfe_tensor::tensor::Tensor4;

struct FleetInner {
    /// Shards in spec order; index 0 is the default model.
    shards: Vec<Shard>,
    /// Model id → shard index.
    index: HashMap<String, usize>,
    /// Requests rejected for naming a model no shard serves.
    unknown: AtomicU64,
}

fn fleet_snapshot(inner: &FleetInner) -> FleetSnapshot {
    let mut models = Vec::with_capacity(inner.shards.len());
    let mut latency = LatencyHistogram::new();
    let mut counters = tfe_sim::counters::Counters::new();
    let (mut dispatched, mut shed, mut completed) = (0u64, 0u64, 0u64);
    let (mut expired, mut failed) = (0u64, 0u64);
    let (mut batches, mut batched_requests) = (0u64, 0u64);
    let (mut queue_depth, mut swaps) = (0u64, 0u64);
    for shard in &inner.shards {
        let view = shard.view();
        latency.merge(&view.latency);
        counters.merge(&view.stats.telemetry.total);
        dispatched += view.stats.dispatched;
        shed += view.stats.shed;
        completed += view.stats.completed;
        expired += view.stats.expired;
        failed += view.stats.failed;
        batches += view.stats.batches;
        batched_requests += view.stats.batched_requests;
        queue_depth += view.queue_depth;
        swaps += view.stats.swaps;
        models.push(view.stats);
    }
    FleetSnapshot {
        models,
        unknown_models: inner.unknown.load(Ordering::Relaxed),
        dispatched,
        shed,
        completed,
        expired,
        failed,
        batches,
        batched_requests,
        queue_depth,
        swaps,
        p50_us: latency.quantile_us(0.50),
        p95_us: latency.quantile_us(0.95),
        p99_us: latency.quantile_us(0.99),
        max_us: latency.max_us(),
        counters,
    }
}

/// A running fleet: one [`Shard`] per model of its [`FleetSpec`].
///
/// The `Fleet` value owns lifecycle operations (hot-swap, shutdown);
/// [`FleetClient`] handles cloned from it dispatch requests and read
/// snapshots, and keep working — resolving to
/// [`Rejected::ShuttingDown`] — after shutdown.
pub struct Fleet {
    inner: Arc<FleetInner>,
}

impl Fleet {
    /// Validates the spec, compiles one engine per model, and starts
    /// every shard's replica pool.
    ///
    /// # Errors
    ///
    /// Spec validation or compilation failures ([`SimError`]).
    pub fn start(spec: FleetSpec) -> Result<Fleet, SimError> {
        spec.validate()?;
        let mut shards = Vec::with_capacity(spec.models.len());
        let mut index = HashMap::with_capacity(spec.models.len());
        for model in spec.models {
            index.insert(model.id.clone(), shards.len());
            shards.push(Shard::start(
                model.id,
                &model.network,
                model.serve,
                model.replicas,
            )?);
        }
        Ok(Fleet {
            inner: Arc::new(FleetInner {
                shards,
                index,
                unknown: AtomicU64::new(0),
            }),
        })
    }

    /// A cloneable dispatch handle (also the [`Frontend`] served over
    /// TCP).
    #[must_use]
    pub fn client(&self) -> FleetClient {
        FleetClient {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The served model ids, in registry order (the first is the
    /// default model).
    #[must_use]
    pub fn models(&self) -> Vec<String> {
        self.inner
            .shards
            .iter()
            .map(|s| s.id().to_owned())
            .collect()
    }

    /// Hot-swaps `model`'s engine for one compiled from `network` with
    /// zero downtime — see [`Shard::hot_swap`] for the drain contract.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when `model` is not served;
    /// compilation failures leave the old engine live.
    pub fn hot_swap(&self, model: &str, network: &FunctionalNetwork) -> Result<(), SimError> {
        let &shard = self.inner.index.get(model).ok_or(SimError::InvalidConfig {
            what: "hot_swap target model is not served by this fleet",
        })?;
        self.inner.shards[shard].hot_swap(network)
    }

    /// The fleet-wide point-in-time view.
    #[must_use]
    pub fn snapshot(&self) -> FleetSnapshot {
        fleet_snapshot(&self.inner)
    }

    /// Graceful shutdown: drains every shard's live generation (all
    /// in-flight requests complete) and returns the final fleet view.
    #[must_use]
    pub fn shutdown(self) -> FleetSnapshot {
        for shard in &self.inner.shards {
            shard.retire_live();
        }
        fleet_snapshot(&self.inner)
    }
}

/// Cloneable handle dispatching requests into a [`Fleet`].
#[derive(Clone)]
pub struct FleetClient {
    inner: Arc<FleetInner>,
}

impl FleetClient {
    fn route(&self, model: Option<&str>) -> Result<&Shard, Rejected> {
        match model {
            None => Ok(&self.inner.shards[0]),
            Some(id) => match self.inner.index.get(id) {
                Some(&i) => Ok(&self.inner.shards[i]),
                None => {
                    self.inner.unknown.fetch_add(1, Ordering::Relaxed);
                    Err(Rejected::UnknownModel {
                        model: id.to_owned(),
                    })
                }
            },
        }
    }

    /// Routes one request by model id (`None` = default model) and
    /// returns its [`Ticket`] without waiting.
    ///
    /// # Errors
    ///
    /// [`Rejected::UnknownModel`] for an unserved id, otherwise the
    /// shard's admission errors ([`Rejected::QueueFull`], …).
    pub fn submit(
        &self,
        model: Option<&str>,
        input: Tensor4<Fx16>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, Rejected> {
        self.route(model)?.submit(input, deadline)
    }

    /// Blocking routed round-trip: submit and wait for the result.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](FleetClient::submit), plus any in-flight
    /// rejection.
    pub fn infer(&self, model: Option<&str>, input: Tensor4<Fx16>) -> ServeResult {
        self.submit(model, input, None)?.wait()
    }

    /// The fleet-wide point-in-time view.
    #[must_use]
    pub fn snapshot(&self) -> FleetSnapshot {
        fleet_snapshot(&self.inner)
    }
}

impl Frontend for FleetClient {
    fn infer_routed(
        &self,
        model_id: Option<&str>,
        input: Tensor4<Fx16>,
        deadline: Option<Duration>,
    ) -> ServeResult {
        self.submit(model_id, input, deadline)?.wait()
    }

    fn stats_response(&self) -> WireResponse {
        let snapshot = self.snapshot();
        WireResponse::Stats {
            metrics: snapshot.to_metrics(),
            telemetry: snapshot.to_telemetry(),
            models: Some(snapshot.models.clone()),
        }
    }
}
