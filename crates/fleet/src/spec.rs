//! Fleet configuration: which models to serve, with how many replicas,
//! under which serving knobs.

use tfe_serve::ServeConfig;
use tfe_sim::network::FunctionalNetwork;
use tfe_sim::SimError;
use tfe_transfer::analysis::ReuseConfig;

/// One model entry in a [`FleetSpec`]: an id requests route by, the
/// functional network to compile, a replica count, and the per-replica
/// serving configuration (whose `reuse` field fixes the shard's compiled
/// [`ReuseConfig`]).
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// The model id requests route by (unique within a fleet).
    pub id: String,
    /// The network the shard compiles into its engine.
    pub network: FunctionalNetwork,
    /// Replica services in the shard, each with its own bounded
    /// admission queue, micro-batcher, and scratch pool.
    pub replicas: usize,
    /// Per-replica serving knobs; `serve.reuse` is the shard's compiled
    /// reuse configuration.
    pub serve: ServeConfig,
}

impl ModelSpec {
    /// A one-replica spec under the default [`ServeConfig`].
    #[must_use]
    pub fn new(id: impl Into<String>, network: FunctionalNetwork) -> ModelSpec {
        ModelSpec {
            id: id.into(),
            network,
            replicas: 1,
            serve: ServeConfig::default(),
        }
    }

    /// Sets the replica count.
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> ModelSpec {
        self.replicas = replicas;
        self
    }

    /// Replaces the per-replica serving configuration.
    #[must_use]
    pub fn with_serve(mut self, serve: ServeConfig) -> ModelSpec {
        self.serve = serve;
        self
    }

    /// Sets the reuse configuration the shard's engine compiles under.
    #[must_use]
    pub fn with_reuse(mut self, reuse: ReuseConfig) -> ModelSpec {
        self.serve.reuse = reuse;
        self
    }
}

/// The whole fleet: one [`ModelSpec`] per served model. The first entry
/// is the **default model** — what a request without a `model` id (every
/// protocol-v1 request) runs.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// The served models, default model first.
    pub models: Vec<ModelSpec>,
}

impl FleetSpec {
    /// Wraps a model list as a fleet spec.
    #[must_use]
    pub fn new(models: Vec<ModelSpec>) -> FleetSpec {
        FleetSpec { models }
    }

    /// Validates the spec: at least one model, unique non-empty ids, at
    /// least one replica per shard, and a valid [`ServeConfig`] each.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.models.is_empty() {
            return Err(SimError::InvalidConfig {
                what: "a fleet needs at least one model",
            });
        }
        for (i, model) in self.models.iter().enumerate() {
            if model.id.is_empty() {
                return Err(SimError::InvalidConfig {
                    what: "model ids must be non-empty",
                });
            }
            if self.models[..i].iter().any(|m| m.id == model.id) {
                return Err(SimError::InvalidConfig {
                    what: "model ids must be unique within a fleet",
                });
            }
            if model.replicas == 0 {
                return Err(SimError::InvalidConfig {
                    what: "every shard needs at least one replica",
                });
            }
            model.serve.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_serve::demo::demo_network;

    #[test]
    fn valid_spec_passes() {
        let spec = FleetSpec::new(vec![
            ModelSpec::new("a", demo_network(1)),
            ModelSpec::new("b", demo_network(2)).with_replicas(3),
        ]);
        spec.validate().unwrap();
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let invalid = [
            FleetSpec::new(vec![]),
            FleetSpec::new(vec![ModelSpec::new("", demo_network(1))]),
            FleetSpec::new(vec![
                ModelSpec::new("dup", demo_network(1)),
                ModelSpec::new("dup", demo_network(2)),
            ]),
            FleetSpec::new(vec![ModelSpec::new("a", demo_network(1)).with_replicas(0)]),
        ];
        for spec in invalid {
            assert!(matches!(
                spec.validate(),
                Err(SimError::InvalidConfig { .. })
            ));
        }
    }
}
