//! The fleet-wide serializable view and its projections onto the wire
//! protocol's single-model stats shapes.

use serde::{Deserialize, Serialize};
use tfe_serve::{MetricsSnapshot, ModelStats};
use tfe_sim::counters::Counters;
use tfe_telemetry::TelemetrySnapshot;

/// Point-in-time view of a whole fleet: one [`ModelStats`] row per
/// served model plus fleet-wide routing totals and merged latency
/// quantiles (exact — computed from merged histograms, not from
/// per-model quantiles).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Per-model rows, in registry (spec) order.
    pub models: Vec<ModelStats>,
    /// Requests rejected because they named a model no shard serves.
    pub unknown_models: u64,
    /// Requests the router dispatched to some shard.
    pub dispatched: u64,
    /// Requests shed by shard admission queues (queue-full).
    pub shed: u64,
    /// Requests completed successfully, fleet-wide.
    pub completed: u64,
    /// Requests dropped after their deadline expired.
    pub expired: u64,
    /// Requests failed by a simulator error.
    pub failed: u64,
    /// Micro-batches executed fleet-wide.
    pub batches: u64,
    /// Requests that rode those batches.
    pub batched_requests: u64,
    /// Summed live queue depth at snapshot time.
    pub queue_depth: u64,
    /// Completed engine hot-swaps, fleet-wide.
    pub swaps: u64,
    /// Median request latency upper bound, microseconds (merged across
    /// every replica of every shard).
    pub p50_us: u64,
    /// 95th-percentile request latency upper bound, microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency upper bound, microseconds.
    pub p99_us: u64,
    /// Exact maximum request latency, microseconds.
    pub max_us: u64,
    /// Summed simulator counters across every model's telemetry.
    pub counters: Counters,
}

impl FleetSnapshot {
    /// Projects the fleet view onto the wire protocol's request-level
    /// [`MetricsSnapshot`] (the `metrics` field of a stats response):
    /// unknown-model rejections count as submitted-and-rejected, exactly
    /// like queue sheds.
    #[must_use]
    pub fn to_metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.dispatched + self.unknown_models,
            completed: self.completed,
            rejected: self.shed + self.unknown_models,
            expired: self.expired,
            failed: self.failed,
            batches: self.batches,
            batched_requests: self.batched_requests,
            queue_depth: self.queue_depth,
            p50_us: self.p50_us,
            p95_us: self.p95_us,
            p99_us: self.p99_us,
            max_us: self.max_us,
            counters: self.counters,
        }
    }

    /// Projects the fleet view onto the wire protocol's top-level
    /// [`TelemetrySnapshot`]. Per-layer rows from different networks do
    /// not merge meaningfully (stage indices collide across models), so
    /// the fleet-wide view carries totals only — the real per-layer
    /// breakdowns ride the per-model rows in
    /// [`models`](FleetSnapshot::models).
    #[must_use]
    pub fn to_telemetry(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            layers: Vec::new(),
            recorded: self.models.iter().map(|m| m.telemetry.recorded).sum(),
            dropped: self.models.iter().map(|m| m.telemetry.dropped).sum(),
            total: self.counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> FleetSnapshot {
        FleetSnapshot {
            models: Vec::new(),
            unknown_models: 2,
            dispatched: 50,
            shed: 3,
            completed: 47,
            expired: 0,
            failed: 0,
            batches: 12,
            batched_requests: 47,
            queue_depth: 1,
            swaps: 4,
            p50_us: 100,
            p95_us: 300,
            p99_us: 700,
            max_us: 900,
            counters: Counters {
                multiplies: 11,
                ..Counters::new()
            },
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: FleetSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn metrics_projection_counts_unknown_models_as_rejections() {
        let m = snapshot().to_metrics();
        assert_eq!(m.submitted, 52);
        assert_eq!(m.rejected, 5);
        assert_eq!(m.completed, 47);
        assert_eq!(m.counters.multiplies, 11);
    }

    #[test]
    fn telemetry_projection_is_totals_only() {
        let t = snapshot().to_telemetry();
        assert!(t.layers.is_empty());
        assert_eq!(t.total.multiplies, 11);
    }
}
