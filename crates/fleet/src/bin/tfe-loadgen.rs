//! `tfe-loadgen` — open-loop load generator for the serving stack.
//!
//! Drives a [`tfe_fleet::Fleet`] (in-process, fully offline) with
//! Poisson-ish arrivals: exponential inter-arrival gaps drawn from the
//! vendored `rand` facade under a fixed seed, submitted open-loop — the
//! generator never waits for a response before the next arrival, so
//! overload shows up as queue-full sheds instead of silently throttled
//! offered load.
//!
//! Without `--model` it drives the single classic `"demo"` model —
//! exactly the v1 single-model behavior. Repeatable `--model id[:weight]`
//! flags build a multi-model fleet (ids from the `tfe_nets` zoo, plus
//! `"demo"`) and spread arrivals across the models in proportion to
//! their weights:
//!
//! ```sh
//! cargo run --release -p tfe-fleet --bin tfe-loadgen -- \
//!     --rate 200 --duration 5 --seed 1 \
//!     --model demo:2 --model alexnet:1 --model resnet56:1
//! ```
//!
//! `--batch-hint H` coalesces arrivals client-side into flights of `H`
//! same-model requests submitted back-to-back (the overall request rate
//! stays at `--rate`), feeding the micro-batcher batchable bursts — the
//! filter-stationary batched engine path pays per packed run, so the
//! hint is the client knob that moves the achieved batch size.
//!
//! The report prints fleet-wide p50/p95/p99/max latency, achieved
//! throughput, per-model throughput/shed breakdowns, and a final
//! machine-readable JSON line combining the [`FleetSnapshot`] with
//! per-model offered/achieved rates, the batch hint, and the achieved
//! mean batch size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use tfe_fleet::{demo, Fleet, FleetSnapshot};
use tfe_serve::demo::demo_images;
use tfe_serve::{Rejected, ServeConfig, TelemetrySnapshot};

struct Args {
    rate: f64,
    duration: f64,
    seed: u64,
    batch_size: usize,
    batch_hint: usize,
    delay_us: u64,
    queue: usize,
    executors: usize,
    replicas: usize,
    threads: Option<usize>,
    deadline_ms: Option<u64>,
    models: Vec<(String, f64)>,
    stats: bool,
    stats_interval_ms: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            rate: 200.0,
            duration: 5.0,
            seed: 1,
            batch_size: 8,
            batch_hint: 1,
            delay_us: 2000,
            queue: 256,
            executors: 2,
            replicas: 1,
            threads: None,
            deadline_ms: None,
            models: Vec::new(),
            stats: false,
            stats_interval_ms: 1000,
        }
    }
}

const USAGE: &str = "\
tfe-loadgen: open-loop Poisson load generator for the TFE serving fleet

USAGE:
    tfe-loadgen [--rate R] [--duration S] [--seed N] [--batch-size B]
                [--batch-hint H] [--delay-us U] [--queue Q] [--executors E]
                [--replicas P] [--threads T] [--deadline-ms D]
                [--model ID[:W]]... [--stats] [--stats-interval-ms I]

OPTIONS:
    --rate R         offered arrival rate, requests/second   [default: 200]
    --duration S     run length in seconds                   [default: 5]
    --seed N         RNG seed for arrivals and inputs        [default: 1]
    --batch-size B   micro-batch flush size                  [default: 8]
    --batch-hint H   client-side fan-in: coalesce arrivals into flights
                     of H same-model requests submitted back-to-back
                     (the overall request rate stays at --rate); the JSON
                     tally reports the achieved mean batch
                     size                                    [default: 1]
    --delay-us U     micro-batch flush delay, microseconds   [default: 2000]
    --queue Q        request-queue capacity per replica      [default: 256]
    --executors E    executor workers per replica            [default: 2]
    --replicas P     replica services per model shard        [default: 1]
    --threads T      worker threads per batch                [default: ambient]
    --deadline-ms D  per-request deadline, milliseconds      [default: none]
    --model ID[:W]   serve model ID with arrival weight W (repeatable;
                     ids: 'demo' or any tfe_nets zoo name; the first
                     becomes the default model)              [default: demo:1]
    --stats          poll and print per-model per-layer telemetry tables
                     (latency p50/p95/p99 + reuse ratios) while running
    --stats-interval-ms I
                     telemetry poll period with --stats      [default: 1000]
";

fn parse_to<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value '{value}' for {flag}"))
}

fn parse_model(value: &str) -> Result<(String, f64), String> {
    let (id, weight) = match value.split_once(':') {
        Some((id, w)) => (id, parse_to::<f64>(w, "--model weight")?),
        None => (value, 1.0),
    };
    if id.is_empty() {
        return Err("--model id must be non-empty".to_owned());
    }
    if !weight.is_finite() || weight <= 0.0 {
        return Err(format!("--model {id}: weight must be positive"));
    }
    Ok((id.to_owned(), weight))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--stats" {
            args.stats = true;
            continue;
        }
        let value = argv
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--rate" => args.rate = parse_to(&value, &flag)?,
            "--duration" => args.duration = parse_to(&value, &flag)?,
            "--seed" => args.seed = parse_to(&value, &flag)?,
            "--batch-size" => args.batch_size = parse_to(&value, &flag)?,
            "--batch-hint" => args.batch_hint = parse_to(&value, &flag)?,
            "--delay-us" => args.delay_us = parse_to(&value, &flag)?,
            "--queue" => args.queue = parse_to(&value, &flag)?,
            "--executors" => args.executors = parse_to(&value, &flag)?,
            "--replicas" => args.replicas = parse_to(&value, &flag)?,
            "--threads" => args.threads = Some(parse_to(&value, &flag)?),
            "--deadline-ms" => args.deadline_ms = Some(parse_to(&value, &flag)?),
            "--model" => args.models.push(parse_model(&value)?),
            "--stats-interval-ms" => args.stats_interval_ms = parse_to(&value, &flag)?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    // `is_finite` + `<= 0.0` also rejects NaN, which `> 0.0` alone lets
    // through via negation.
    if !args.rate.is_finite() || args.rate <= 0.0 {
        return Err("--rate must be positive".to_owned());
    }
    if !args.duration.is_finite() || args.duration <= 0.0 {
        return Err("--duration must be positive".to_owned());
    }
    if args.stats_interval_ms == 0 {
        return Err("--stats-interval-ms must be positive".to_owned());
    }
    if args.batch_hint == 0 {
        return Err("--batch-hint must be at least 1".to_owned());
    }
    if args.models.is_empty() {
        args.models.push(("demo".to_owned(), 1.0));
    }
    let mut ids: Vec<&str> = args.models.iter().map(|(id, _)| id.as_str()).collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.len() != args.models.len() {
        return Err("--model ids must be unique".to_owned());
    }
    Ok(args)
}

/// Prints the two per-layer tables of one model's telemetry poll: stage
/// latency quantiles over the ring window, then reuse effectiveness from
/// the exact cumulative counters.
fn print_telemetry(model: &str, elapsed: Duration, snap: &TelemetrySnapshot) {
    println!();
    println!(
        "[{model}] per-layer telemetry @ {:.1}s ({} samples recorded, {} dropped from the window)",
        elapsed.as_secs_f64(),
        snap.recorded,
        snap.dropped
    );
    println!("  layer  label         runs  p50_us  p95_us  p99_us  max_us");
    for l in &snap.layers {
        println!(
            "  {:<5}  {:<10}  {:>6}  {:>6}  {:>6}  {:>6}  {:>6}",
            l.layer, l.label, l.runs, l.p50_us, l.p95_us, l.p99_us, l.max_us
        );
    }
    println!(
        "  layer  label       mode         mac_red  multiplies  dense_macs  sram/mul  reg/mul"
    );
    for l in &snap.layers {
        let per_mul = |n: u64| n as f64 / l.counters.multiplies.max(1) as f64;
        println!(
            "  {:<5}  {:<10}  {:<11}  {:>7.2}  {:>10}  {:>10}  {:>8.2}  {:>7.2}",
            l.layer,
            l.label,
            if l.mode.is_empty() { "-" } else { &l.mode },
            l.mac_reduction,
            l.counters.multiplies,
            l.counters.dense_macs,
            per_mul(l.counters.sram_accesses()),
            per_mul(l.counters.register_accesses()),
        );
    }
}

fn print_fleet_telemetry(elapsed: Duration, snap: &FleetSnapshot) {
    for model in &snap.models {
        print_telemetry(&model.model, elapsed, &model.telemetry);
    }
}

/// Per-model client-side tally of one run.
#[derive(Default)]
struct Tally {
    offered: u64,
    shed: u64,
    completed: u64,
    expired: u64,
    failed: u64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| format!("{e}\n\n{USAGE}"))?;

    let serve = ServeConfig {
        max_batch_size: args.batch_size,
        max_batch_delay: Duration::from_micros(args.delay_us),
        queue_capacity: args.queue,
        executors: args.executors,
        batch_threads: args.threads,
        default_deadline: args.deadline_ms.map(Duration::from_millis),
        ..ServeConfig::default()
    };
    let ids: Vec<&str> = args.models.iter().map(|(id, _)| id.as_str()).collect();
    let mut spec = demo::demo_fleet(&ids, args.seed as u32 ^ 0x5eed)
        .ok_or("--model ids must be 'demo' or tfe_nets zoo names (try --help)")?;
    for model in &mut spec.models {
        model.serve = serve.clone();
        model.replicas = args.replicas;
    }
    let fleet = Fleet::start(spec)?;
    let client = fleet.client();

    let images = demo_images(64, args.seed as u32 ^ 0x1a6e);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let total_weight: f64 = args.models.iter().map(|(_, w)| w).sum();

    println!(
        "offering ~{:.0} req/s for {:.1}s across {} model(s) (seed {}, batch ≤{}, hint {}, delay {}µs, queue {}, {} executor(s), {} replica(s))",
        args.rate,
        args.duration,
        args.models.len(),
        args.seed,
        args.batch_size,
        args.batch_hint,
        args.delay_us,
        args.queue,
        args.executors,
        args.replicas,
    );

    // Client-side fan-in: each Poisson arrival is a *flight* of
    // `batch_hint` same-model requests submitted back-to-back, so the
    // micro-batcher sees them together; the flight rate is scaled down
    // to keep the overall request rate at `--rate`.
    let flight_rate = args.rate / args.batch_hint as f64;

    let start = Instant::now();
    let end = start + Duration::from_secs_f64(args.duration);
    let stats_interval = Duration::from_millis(args.stats_interval_ms);
    let mut next_stats = start + stats_interval;
    let mut next_arrival = start;
    let mut tallies: Vec<Tally> = args.models.iter().map(|_| Tally::default()).collect();
    let mut tickets = Vec::new();

    loop {
        // Exponential inter-arrival gap: -ln(1 - U) / rate.
        let u: f64 = rng.gen();
        let gap = -(1.0 - u).ln() / flight_rate;
        next_arrival += Duration::from_secs_f64(gap);
        if next_arrival >= end {
            break;
        }
        // Wait out the gap stats-aware: sleep only to the nearer of the
        // next arrival and the next poll, so low --rate runs keep a
        // steady poll cadence instead of lagging up to a full gap and
        // then bursting one poll per arrival to catch up.
        loop {
            let now = Instant::now();
            if args.stats && now >= next_stats {
                print_fleet_telemetry(start.elapsed(), &client.snapshot());
                // Advance monotonically past now; a stall longer than
                // the interval skips the missed polls instead of
                // replaying them back-to-back.
                while next_stats <= Instant::now() {
                    next_stats += stats_interval;
                }
                continue;
            }
            if now >= next_arrival {
                break;
            }
            let wake = if args.stats && next_stats < next_arrival {
                next_stats
            } else {
                next_arrival
            };
            std::thread::sleep(wake - now);
        }
        // Weighted model pick, then an image from the shared pool.
        let mut pick = rng.gen::<f64>() * total_weight;
        let mut model = 0usize;
        for (i, (_, w)) in args.models.iter().enumerate() {
            pick -= w;
            if pick <= 0.0 {
                model = i;
                break;
            }
        }
        // The whole flight targets one model — the fan-in only helps
        // batching when the requests can actually share a micro-batch.
        for _ in 0..args.batch_hint {
            let total_offered: u64 = tallies.iter().map(|t| t.offered).sum();
            let image = images[total_offered as usize % images.len()].clone();
            tallies[model].offered += 1;
            match client.submit(Some(&args.models[model].0), image, None) {
                Ok(ticket) => tickets.push((model, ticket)),
                Err(Rejected::QueueFull { .. }) => tallies[model].shed += 1,
                Err(other) => return Err(other.into()),
            }
        }
    }
    let offered_window = start.elapsed();

    // Open loop is over; now settle every outstanding request.
    for (model, ticket) in tickets {
        match ticket.wait() {
            Ok(_) => tallies[model].completed += 1,
            Err(Rejected::DeadlineExceeded) => tallies[model].expired += 1,
            Err(_) => tallies[model].failed += 1,
        }
    }
    let snapshot = fleet.shutdown();

    let offered: u64 = tallies.iter().map(|t| t.offered).sum();
    let completed: u64 = tallies.iter().map(|t| t.completed).sum();
    let shed: u64 = tallies.iter().map(|t| t.shed).sum();
    let expired: u64 = tallies.iter().map(|t| t.expired).sum();
    let failed: u64 = tallies.iter().map(|t| t.failed).sum();
    let window_s = offered_window.as_secs_f64();
    println!();
    println!(
        "offered:     {offered} requests ({:.1} req/s)",
        offered as f64 / window_s
    );
    println!(
        "completed:   {completed} ({:.1} req/s)",
        completed as f64 / window_s
    );
    println!("shed:        {shed} (queue full)");
    println!("expired:     {expired} (deadline)");
    if failed > 0 {
        println!("failed:      {failed}");
    }
    println!(
        "batches:     {} (mean size {:.2})",
        snapshot.batches,
        if snapshot.batches == 0 {
            0.0
        } else {
            snapshot.batched_requests as f64 / snapshot.batches as f64
        }
    );
    println!("latency p50: {} µs", snapshot.p50_us);
    println!("latency p95: {} µs", snapshot.p95_us);
    println!("latency p99: {} µs", snapshot.p99_us);
    println!("latency max: {} µs", snapshot.max_us);
    println!(
        "sim MACs:    {} of {} dense ({:.2}x reduction)",
        snapshot.counters.multiplies,
        snapshot.counters.dense_macs,
        snapshot.counters.mac_reduction()
    );
    println!(
        "sim memory:  {} SRAM word accesses, {} register accesses",
        snapshot.counters.sram_accesses(),
        snapshot.counters.register_accesses()
    );
    println!();
    println!("per-model:   id            offered  completed  ach_rps     shed  expired");
    for ((id, _), tally) in args.models.iter().zip(&tallies) {
        println!(
            "             {:<12}  {:>7}  {:>9}  {:>7.1}  {:>7}  {:>7}",
            id,
            tally.offered,
            tally.completed,
            tally.completed as f64 / window_s,
            tally.shed,
            tally.expired,
        );
    }
    if args.stats {
        print_fleet_telemetry(start.elapsed(), &snapshot);
    }

    // Final machine-readable line: the fleet snapshot plus the client's
    // per-model offered/achieved view.
    use serde::{Serialize, Value};
    let per_model = Value::Array(
        args.models
            .iter()
            .zip(&tallies)
            .map(|((id, weight), tally)| {
                Value::Object(vec![
                    ("model".to_owned(), Value::Str(id.clone())),
                    ("weight".to_owned(), Value::F64(*weight)),
                    ("offered".to_owned(), Value::U64(tally.offered)),
                    ("completed".to_owned(), Value::U64(tally.completed)),
                    (
                        "achieved_rps".to_owned(),
                        Value::F64(tally.completed as f64 / window_s),
                    ),
                    ("shed".to_owned(), Value::U64(tally.shed)),
                    ("expired".to_owned(), Value::U64(tally.expired)),
                    ("failed".to_owned(), Value::U64(tally.failed)),
                ])
            })
            .collect(),
    );
    // The achieved mean batch size is the executors' ground truth
    // (requests per batched run), the number `--batch-hint` exists to
    // move.
    let mean_batch = if snapshot.batches == 0 {
        0.0
    } else {
        snapshot.batched_requests as f64 / snapshot.batches as f64
    };
    let report = Value::Object(vec![
        ("fleet".to_owned(), snapshot.to_value()),
        ("per_model".to_owned(), per_model),
        ("batch_hint".to_owned(), Value::U64(args.batch_hint as u64)),
        ("achieved_mean_batch".to_owned(), Value::F64(mean_batch)),
    ]);
    println!("{}", serde_json::to_string(&report)?);
    Ok(())
}
