//! `tfe-fleet` — a sharded multi-model serving tier over `tfe-serve`.
//!
//! The ROADMAP's north star is serving at fleet scale; the TFE paper
//! compresses one network onto one engine. This crate applies the
//! scaling idea one level up (EIE partitions compressed-weight work
//! across PEs; the Multi-Mode Inference Engine serves many layer
//! configurations on one substrate — see PAPERS.md): many compiled
//! engine shards behind one router.
//!
//! * **Model registry** — a [`FleetSpec`] names each model and its
//!   [`FunctionalNetwork`](tfe_sim::network::FunctionalNetwork);
//!   [`Fleet::start`] compiles one engine shard per (network ×
//!   [`ReuseConfig`](tfe_transfer::analysis::ReuseConfig)) and starts a
//!   replica pool per shard — every replica has its own bounded
//!   admission queue, micro-batcher, and scratch pool, but shares the
//!   shard's one `Arc<Engine>` and telemetry sink.
//! * **Routed dispatch** — [`FleetClient`] routes by model id (`None` =
//!   the default model, i.e. protocol-v1 behavior) with round-robin
//!   replica selection, per-shard shed accounting, and a typed
//!   [`UnknownModel`](tfe_serve::Rejected::UnknownModel) rejection for
//!   unserved ids.
//! * **Merged fleet telemetry** — each shard owns a
//!   [`TelemetryRegistry`](tfe_telemetry::TelemetryRegistry); a
//!   [`FleetSnapshot`] folds them with `merge()` into one per-model,
//!   per-layer view, exported through the TCP stats response (protocol
//!   v2 `models` field) and `tfe-loadgen --stats`.
//! * **Zero-downtime hot-swap** — [`Fleet::hot_swap`] compiles a
//!   replacement engine off-path, atomically swaps it live, then drains
//!   the old generation: every in-flight request completes (bit-
//!   identically) against the engine that admitted it, and the old
//!   generation's metrics and telemetry fold into the shard's history.
//! * **One wire protocol** — [`FleetClient`] implements
//!   [`tfe_serve::Frontend`], so `tfe_serve::TcpServer::bind` serves a
//!   whole fleet exactly as it serves one model.
//!
//! # Example
//!
//! ```
//! use tfe_fleet::{demo, Fleet};
//! use tfe_serve::demo::demo_images;
//!
//! let spec = demo::demo_fleet(&["demo", "alexnet"], 7).unwrap();
//! let fleet = Fleet::start(spec).unwrap();
//! let client = fleet.client();
//! let image = demo_images(1, 42).remove(0);
//! let reply = client.infer(Some("alexnet"), image).unwrap();
//! assert!(reply.counters.multiplies > 0);
//! let snapshot = fleet.shutdown();
//! assert_eq!(snapshot.completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demo;
pub mod router;
pub mod shard;
pub mod snapshot;
pub mod spec;

pub use router::{Fleet, FleetClient};
pub use shard::Shard;
pub use snapshot::FleetSnapshot;
pub use spec::{FleetSpec, ModelSpec};
