//! One model's shard: a compiled engine generation shared by a replica
//! pool, plus the accounting to retire generations without losing their
//! history.
//!
//! A shard's life is a sequence of **generations**. Each generation
//! compiles the model's network once into an [`Engine`], enables one
//! telemetry sink on it, and starts `replicas` independent
//! [`Service`]s over the shared `Arc<Engine>` — each replica has its own
//! bounded admission queue, micro-batcher, and scratch pool, but all of
//! them feed the one per-layer registry.
//!
//! **Hot-swap** compiles the replacement generation entirely off-path,
//! swaps it in under a write lock (dispatch holds the read lock only
//! long enough to clone an `Arc`), then drains the old generation:
//! admission closes, every in-flight request completes against the old
//! engine, and the old generation's metrics, request-latency histogram,
//! and per-layer telemetry are folded into the shard's **retired**
//! accumulator. A submit that raced the swap into the old generation's
//! closing queue either completes normally (it was already admitted) or
//! observes `ShuttingDown` and retries against the new live generation —
//! no admitted request is ever dropped by a swap.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;
use tfe_serve::{Client, ModelStats, Rejected, ServeConfig, Service, Ticket};
use tfe_sim::engine::Engine;
use tfe_sim::network::FunctionalNetwork;
use tfe_sim::SimError;
use tfe_telemetry::{LatencyHistogram, TelemetryRegistry};
use tfe_tensor::fixed::Fx16;
use tfe_tensor::tensor::Tensor4;

/// One compiled engine plus the replica pool serving it.
struct Generation {
    engine: Arc<Engine>,
    clients: Vec<Client>,
    services: Mutex<Vec<Service>>,
    /// Set exactly once when the generation is retired; a drained
    /// generation's accounting lives in the shard's retired accumulator
    /// and must not be read from the generation again.
    drained: AtomicBool,
}

impl Generation {
    fn start(
        network: &FunctionalNetwork,
        serve: &ServeConfig,
        replicas: usize,
    ) -> Result<Generation, SimError> {
        // Compile once per generation; enable telemetry before the Arc
        // so every replica records into the same sink.
        let mut engine = Engine::compile(network, serve.reuse)?;
        engine.enable_telemetry(serve.telemetry_ring);
        let engine = Arc::new(engine);
        let mut services = Vec::with_capacity(replicas);
        let mut clients = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            let service = Service::start_with_engine(Arc::clone(&engine), serve.clone())?;
            clients.push(service.client());
            services.push(service);
        }
        Ok(Generation {
            engine,
            clients,
            services: Mutex::new(services),
            drained: AtomicBool::new(false),
        })
    }
}

/// Accounting carried across generations: everything hot-swapped-out
/// engines contributed, folded in at retire time.
#[derive(Default)]
struct Retired {
    telemetry: TelemetryRegistry,
    latency: LatencyHistogram,
    completed: u64,
    expired: u64,
    failed: u64,
    batches: u64,
    batched_requests: u64,
}

/// A shard's merged point-in-time view: the wire-facing [`ModelStats`]
/// row plus the raw latency histogram (mergeable into a fleet-wide
/// quantile view, unlike the row's precomputed quantiles).
pub(crate) struct ShardView {
    pub(crate) stats: ModelStats,
    pub(crate) latency: LatencyHistogram,
    pub(crate) queue_depth: u64,
}

/// One model's serving shard: the live generation, the retired
/// accumulator, and the router-facing dispatch counters.
pub struct Shard {
    id: String,
    serve: ServeConfig,
    replicas: usize,
    live: RwLock<Arc<Generation>>,
    /// Outer lock for retire/stats (always taken before a generation's
    /// services lock, never after — see [`Shard::retire`]).
    retired: Mutex<Retired>,
    dispatched: AtomicU64,
    shed: AtomicU64,
    swaps: AtomicU64,
    next_replica: AtomicUsize,
}

impl Shard {
    /// Compiles the model's first generation and starts its replicas.
    ///
    /// # Errors
    ///
    /// Compilation or service-start failures ([`SimError`]).
    pub fn start(
        id: impl Into<String>,
        network: &FunctionalNetwork,
        serve: ServeConfig,
        replicas: usize,
    ) -> Result<Shard, SimError> {
        let generation = Generation::start(network, &serve, replicas)?;
        Ok(Shard {
            id: id.into(),
            serve,
            replicas,
            live: RwLock::new(Arc::new(generation)),
            retired: Mutex::new(Retired::default()),
            dispatched: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            next_replica: AtomicUsize::new(0),
        })
    }

    /// The model id this shard serves.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    fn live(&self) -> Arc<Generation> {
        Arc::clone(&self.live.read().expect("live lock poisoned"))
    }

    /// Dispatches one request to the next replica (round-robin),
    /// returning its [`Ticket`] without waiting.
    ///
    /// If an engine hot-swap closes the chosen replica between the live
    /// read and the submit, the request transparently retries against
    /// the new live generation — the swap boundary drops nothing.
    ///
    /// # Errors
    ///
    /// The replica's admission errors: [`Rejected::QueueFull`] (counted
    /// as shed on this shard), [`Rejected::ShuttingDown`] once the shard
    /// itself is retired, or [`Rejected::Failed`] for bad geometry.
    pub fn submit(
        &self,
        input: Tensor4<Fx16>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, Rejected> {
        self.dispatched.fetch_add(1, Ordering::Relaxed);
        // The input moves into the replica on the common path; only a
        // swap-boundary retry needs it back, and `submit_recovering`
        // returns it with the rejection — no per-request clone.
        let mut input = input;
        loop {
            let generation = self.live();
            let replica = self.next_replica.fetch_add(1, Ordering::Relaxed);
            let client = &generation.clients[replica % generation.clients.len()];
            match client.submit_recovering(input, deadline) {
                Ok(ticket) => return Ok(ticket),
                Err((e @ Rejected::QueueFull { .. }, _)) => {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
                Err((Rejected::ShuttingDown, recovered)) => {
                    let live_now = self.live.read().expect("live lock poisoned");
                    if Arc::ptr_eq(&generation, &live_now) {
                        // The shard itself is retiring, not swapping.
                        return Err(Rejected::ShuttingDown);
                    }
                    // A hot-swap landed mid-dispatch; retry on the new
                    // live generation.
                    input = recovered;
                }
                Err((other, _)) => return Err(other),
            }
        }
    }

    /// Zero-downtime engine replacement: compiles `network` into a fresh
    /// generation entirely off the dispatch path, atomically swaps it
    /// live, then drains the old generation (every in-flight request
    /// completes against the old engine) and folds its accounting into
    /// the retired accumulator.
    ///
    /// # Errors
    ///
    /// Compilation or service-start failures leave the old generation
    /// live and untouched.
    pub fn hot_swap(&self, network: &FunctionalNetwork) -> Result<(), SimError> {
        let fresh = Arc::new(Generation::start(network, &self.serve, self.replicas)?);
        let old = {
            let mut live = self.live.write().expect("live lock poisoned");
            std::mem::replace(&mut *live, fresh)
        };
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.retire(&old);
        Ok(())
    }

    /// Drains and retires the current live generation (shard shutdown).
    /// Dispatches after this resolve to [`Rejected::ShuttingDown`].
    pub fn retire_live(&self) {
        let live = self.live();
        self.retire(&live);
    }

    /// Folds a generation's final accounting into the retired
    /// accumulator. Holds the `retired` lock across the whole drain so a
    /// concurrent [`stats`](Shard::stats) can never observe the
    /// generation both live and retired (which would double-count).
    fn retire(&self, generation: &Generation) {
        let mut retired = self.retired.lock().expect("retired lock poisoned");
        if generation.drained.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut services = generation.services.lock().expect("services lock poisoned");
        for mut service in services.drain(..) {
            // Drain first so completions that land during the drain are
            // present in both the histogram and the final snapshot.
            service.drain();
            retired.latency.merge(&service.client().latency_histogram());
            let snap = service.shutdown();
            retired.completed += snap.completed;
            retired.expired += snap.expired;
            retired.failed += snap.failed;
            retired.batches += snap.batches;
            retired.batched_requests += snap.batched_requests;
        }
        retired.telemetry.merge(&generation.engine.telemetry());
    }

    /// The shard's merged point-in-time view: retired accumulator plus
    /// the live generation (when it has not been retired).
    pub(crate) fn view(&self) -> ShardView {
        let retired = self.retired.lock().expect("retired lock poisoned");
        let mut latency = retired.latency.clone();
        let mut telemetry = retired.telemetry.clone();
        let mut completed = retired.completed;
        let mut expired = retired.expired;
        let mut failed = retired.failed;
        let mut batches = retired.batches;
        let mut batched_requests = retired.batched_requests;
        let mut queue_depth = 0u64;
        let mut replicas = 0u64;
        let generation = self.live();
        // The retired lock is still held, so the drained flag cannot
        // flip mid-read: either the generation's numbers come from the
        // accumulator above or from the live fold below, never both.
        if !generation.drained.load(Ordering::SeqCst) {
            let services = generation.services.lock().expect("services lock poisoned");
            replicas = services.len() as u64;
            for service in services.iter() {
                let snap = service.snapshot();
                completed += snap.completed;
                expired += snap.expired;
                failed += snap.failed;
                batches += snap.batches;
                batched_requests += snap.batched_requests;
                queue_depth += snap.queue_depth;
                latency.merge(&service.client().latency_histogram());
            }
            telemetry.merge(&generation.engine.telemetry());
        }
        drop(retired);
        let stats = ModelStats {
            model: self.id.clone(),
            replicas,
            swaps: self.swaps.load(Ordering::Relaxed),
            dispatched: self.dispatched.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            completed,
            expired,
            failed,
            batches,
            batched_requests,
            p50_us: latency.quantile_us(0.50),
            p95_us: latency.quantile_us(0.95),
            p99_us: latency.quantile_us(0.99),
            max_us: latency.max_us(),
            telemetry: telemetry.snapshot(),
        };
        ShardView {
            stats,
            latency,
            queue_depth,
        }
    }

    /// The wire-facing per-model stats row.
    #[must_use]
    pub fn stats(&self) -> ModelStats {
        self.view().stats
    }
}
