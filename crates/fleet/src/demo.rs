//! Deterministic miniature fleet models for demos, the load generator,
//! and the smoke tests.
//!
//! Value-level simulation of the zoo's full ImageNet-scale networks is
//! infeasible, so fleet demos shrink each [`tfe_nets`] network to a
//! two-stage miniature that keeps its signature filter extent: stage 1
//! convolves with the network's leading conv kernel size (clamped odd
//! into `[1, 5]`), stage 2 is the standard 3×3 + 2×2-pool tail every
//! serving demo uses. Grouped networks (the MobileNet family) instead
//! shrink to a depthwise-separable miniature — stem → depthwise →
//! pointwise — so the servable model exercises the engine's grouped
//! dense stages. Every miniature accepts the same
//! `[1, 3, 12, 12]` input geometry
//! ([`tfe_serve::demo::DEMO_INPUT_DIMS`]), so one
//! [`demo_images`](tfe_serve::demo::demo_images) pool drives mixed-model
//! traffic, while weights differ per model id — outputs distinguish the
//! models bit-exactly.

use crate::spec::{FleetSpec, ModelSpec};
use tfe_baselines::sparse_kernel::SparseFilterBank;
use tfe_nets::Network;
use tfe_sim::network::{FunctionalNetwork, FunctionalStage};
use tfe_sim::output::OutputConfig;
use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;
use tfe_transfer::layer::TransferredLayer;
use tfe_transfer::TransferScheme;

fn det(seed: &mut u32) -> f32 {
    *seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
    ((*seed >> 16) as f32 / 65536.0) - 0.5
}

fn id_hash(id: &str) -> u32 {
    id.bytes()
        .fold(5381u32, |h, b| h.wrapping_mul(33).wrapping_add(b.into()))
}

/// Shrinks a zoo network to a servable two-stage miniature: a 3→8
/// convolution with the network's leading filter extent, then the
/// standard 3×3 8→8 stage with 2×2 pooling. Deterministic in `seed`.
///
/// Networks built from grouped convolutions (the MobileNet family)
/// instead shrink to a [`separable_miniature`], preserving their
/// depthwise-separable structure in the servable model.
#[must_use]
pub fn miniature(net: &Network, seed: u32) -> FunctionalNetwork {
    if net.conv_layers().any(|l| l.shape().groups() > 1) {
        return separable_miniature(seed);
    }
    let k = net.conv_layers().next().map_or(3, |l| l.shape().k()).min(5) | 1; // clamp odd into [1, 5] so 12×12 stays 12×12 under pad k/2
    let sparsity = net.max_target_sparsity();
    if sparsity > 0.0 {
        return pruned_miniature(k, sparsity, seed);
    }
    let shapes = vec![
        (
            LayerShape::conv("mini1", 3, 8, 12, 12, k, 1, k / 2).expect("static miniature shape"),
            false,
        ),
        (
            LayerShape::conv("mini2", 8, 8, 12, 12, 3, 1, 1).expect("static miniature shape"),
            true,
        ),
    ];
    let mut state = seed;
    FunctionalNetwork::random(&shapes, TransferScheme::Scnn, || det(&mut state))
        .expect("static miniature network is well-formed")
}

/// The pruned miniature for `-p<percent>` zoo variants
/// ([`tfe_nets::Network::pruned`]): the same two-stage geometry as
/// [`miniature`], but the dense weight banks are magnitude-pruned to
/// `sparsity` through `tfe-baselines`'
/// [`SparseFilterBank::prune`] before being handed to the engine — so a
/// served pruned model actually compiles to the compressed-sparse
/// execution mode (`ExecMode::Sparse` past the default policy
/// threshold) and `tfe-loadgen --stats` shows it end to end.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `sparsity` is outside `[0, 1]` (the typed
/// `TensorError::InvalidFraction` from the pruning kernel) — pruned zoo
/// names only produce fractions in `(0, 1)`.
#[must_use]
pub fn pruned_miniature(k: usize, sparsity: f64, seed: u32) -> FunctionalNetwork {
    let mut state = seed;
    let stages = [
        (
            LayerShape::conv("mini1", 3, 8, 12, 12, k, 1, k / 2).expect("static miniature shape"),
            OutputConfig::RELU_ONLY,
        ),
        (
            LayerShape::conv("mini2", 8, 8, 12, 12, 3, 1, 1).expect("static miniature shape"),
            OutputConfig::RELU_POOL2,
        ),
    ]
    .into_iter()
    .map(|(shape, output)| {
        let dims = [shape.m(), shape.n(), shape.k(), shape.k()];
        let dense = Tensor4::from_fn(dims, |_| det(&mut state));
        let pruned = SparseFilterBank::prune(&dense, sparsity)
            .expect("pruned zoo variants carry a valid sparsity fraction")
            .to_dense();
        FunctionalStage {
            shape,
            weights: TransferredLayer::Dense { weights: pruned },
            bias: Vec::new(),
            output,
        }
    })
    .collect();
    FunctionalNetwork::new(stages).expect("static pruned miniature network is well-formed")
}

/// The depthwise-separable miniature for grouped zoo networks: a 3→8
/// stem convolution, a depthwise 3×3 stage (`groups == channels`,
/// compiled to a grouped dense stage), and a 1×1 pointwise stage with
/// the standard 2×2 pool — one separable block on the shared
/// `[1, 3, 12, 12]` input contract. Deterministic in `seed`.
#[must_use]
pub fn separable_miniature(seed: u32) -> FunctionalNetwork {
    let shapes = vec![
        (
            LayerShape::conv("stem", 3, 8, 12, 12, 3, 1, 1).expect("static miniature shape"),
            false,
        ),
        (
            LayerShape::depthwise("dw", 8, 12, 12, 3, 1, 1).expect("static miniature shape"),
            false,
        ),
        (
            LayerShape::conv("pw", 8, 8, 12, 12, 1, 1, 0).expect("static miniature shape"),
            true,
        ),
    ];
    let mut state = seed;
    FunctionalNetwork::random(&shapes, TransferScheme::Scnn, || det(&mut state))
        .expect("static separable miniature network is well-formed")
}

/// Builds one demo model network by id: `"demo"` is the classic
/// [`tfe_serve::demo::demo_network`]; any [`tfe_nets::zoo`] name
/// resolves to its [`miniature`] with weights seeded from the id (so
/// different models produce different outputs). `None` for an id the
/// zoo does not know.
#[must_use]
pub fn demo_model(id: &str, seed: u32) -> Option<FunctionalNetwork> {
    if id == "demo" {
        return Some(tfe_serve::demo::demo_network(seed));
    }
    let net = tfe_nets::zoo::by_name(id)?;
    Some(miniature(&net, seed ^ id_hash(id)))
}

/// Builds a single-replica [`FleetSpec`] over demo models, in the given
/// id order (the first id becomes the default model). `None` when any
/// id is neither `"demo"` nor a zoo name.
#[must_use]
pub fn demo_fleet(ids: &[&str], seed: u32) -> Option<FleetSpec> {
    let models = ids
        .iter()
        .map(|id| Some(ModelSpec::new(*id, demo_model(id, seed)?)))
        .collect::<Option<Vec<_>>>()?;
    Some(FleetSpec::new(models))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfe_serve::demo::{demo_images, DEMO_INPUT_DIMS};
    use tfe_transfer::analysis::ReuseConfig;

    #[test]
    fn miniatures_accept_demo_inputs_and_differ_by_model() {
        let image = demo_images(1, 3).remove(0);
        assert_eq!(image.dims(), DEMO_INPUT_DIMS);
        let a = demo_model("alexnet", 7).unwrap();
        let b = demo_model("resnet56", 7).unwrap();
        let out_a = a.run(&image, ReuseConfig::FULL).unwrap();
        let out_b = b.run(&image, ReuseConfig::FULL).unwrap();
        // Different seeds per id → different weights → different outputs.
        assert_ne!(out_a.activations, out_b.activations);
        // And deterministic per id.
        let a2 = demo_model("alexnet", 7).unwrap();
        assert_eq!(
            a2.run(&image, ReuseConfig::FULL).unwrap().activations,
            out_a.activations
        );
    }

    #[test]
    fn leading_filter_extent_is_clamped_odd() {
        // AlexNet leads with k=11 → clamped to 5; GoogLeNet k=7 → 5;
        // ResNet k=3 stays 3. All must compile and run.
        for id in ["alexnet", "googlenet", "resnet56", "squeezenet"] {
            let net = demo_model(id, 1).unwrap();
            let k = net.stages()[0].shape.k();
            assert!(k % 2 == 1 && (1..=5).contains(&k), "{id}: k={k}");
        }
    }

    #[test]
    fn mobilenet_mini_serves_as_depthwise_separable_miniature() {
        let net = demo_model("mobilenet-mini", 9).unwrap();
        // Three stages: stem conv, depthwise (groups == channels), pointwise.
        assert_eq!(net.stages().len(), 3);
        let dw = &net.stages()[1].shape;
        assert_eq!(dw.groups(), dw.n());
        assert_eq!(net.stages()[2].shape.k(), 1);
        // Runs on the shared demo input contract.
        let image = demo_images(1, 11).remove(0);
        let out = net.run(&image, ReuseConfig::FULL).unwrap();
        let out2 = demo_model("mobilenet-mini", 9)
            .unwrap()
            .run(&image, ReuseConfig::FULL)
            .unwrap();
        assert_eq!(out.activations, out2.activations);
        // The full-size mobilenet resolves to the same separable shape
        // family, but different weights (different id hash).
        let full = demo_model("mobilenet", 9).unwrap();
        assert_eq!(full.stages().len(), 3);
        assert_ne!(
            full.run(&image, ReuseConfig::FULL).unwrap().activations,
            out.activations
        );
    }

    #[test]
    fn pruned_zoo_ids_serve_sparse_mode_end_to_end() {
        use tfe_transfer::mode::ExecMode;
        let net = demo_model("alexnet-p90", 3).unwrap();
        // Both miniature stages compile to the compressed-sparse mode
        // under the default policy (90% pruned ≫ the 0.4 threshold)…
        let engine = net.engine(ReuseConfig::FULL).unwrap();
        assert_eq!(engine.exec_modes(), vec![ExecMode::Sparse; 2]);
        // …and run bit-identically deterministic on the demo contract.
        let image = demo_images(1, 5).remove(0);
        let out = net.run(&image, ReuseConfig::FULL).unwrap();
        let again = demo_model("alexnet-p90", 3)
            .unwrap()
            .run(&image, ReuseConfig::FULL)
            .unwrap();
        assert_eq!(out.activations, again.activations);
        // The pruned variant differs from the unpruned miniature.
        let dense = demo_model("alexnet", 3).unwrap();
        assert_ne!(
            dense.run(&image, ReuseConfig::FULL).unwrap().activations,
            out.activations
        );
    }

    #[test]
    fn demo_fleet_rejects_unknown_ids() {
        assert!(demo_fleet(&["demo", "alexnet"], 1).is_some());
        assert!(demo_fleet(&["efficientnet"], 1).is_none());
    }
}
