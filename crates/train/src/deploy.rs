//! Deploying a trained (possibly weight-tied) [`SmallCnn`] onto the TFE's
//! functional datapath — the step the paper's flow implies but cannot
//! show at simulation level: train compressed, then *execute* compressed.
//!
//! The conv stages run through `tfe-sim`'s PPSR/ERRR machinery at Q8.8
//! with ReLU + 2×2 pooling in the output memory system; the classifier
//! head is an FC layer executed in CONV fashion (as Section IV describes)
//! at full precision here for simplicity — its cost is negligible either
//! way.

use crate::net::SmallCnn;
use tfe_sim::network::{FunctionalNetwork, FunctionalStage, NetworkOutput};
use tfe_sim::output::OutputConfig;
use tfe_sim::SimError;
use tfe_tensor::fixed::Fx16;
use tfe_tensor::tensor::Tensor4;
use tfe_transfer::analysis::ReuseConfig;

/// A [`SmallCnn`] packaged for execution on the TFE simulator.
#[derive(Debug, Clone)]
pub struct DeployedCnn {
    stages: FunctionalNetwork,
    fc_w: Vec<f32>,
    fc_b: Vec<f32>,
    classes: usize,
}

impl DeployedCnn {
    /// Packages a trained network: the conv blocks keep their transferred
    /// (compressed) representation; the TFE expands nothing.
    ///
    /// # Errors
    ///
    /// Propagates stage-chaining errors (impossible for a well-formed
    /// [`SmallCnn`]).
    pub fn from_trained(net: &SmallCnn) -> Result<Self, SimError> {
        let stages = FunctionalNetwork::new(vec![
            FunctionalStage {
                shape: net.conv1().shape.clone(),
                weights: net.conv1().param.to_transferred(),
                bias: net.conv1().bias.clone(),
                output: OutputConfig::RELU_POOL2,
            },
            FunctionalStage {
                shape: net.conv2().shape.clone(),
                weights: net.conv2().param.to_transferred(),
                bias: net.conv2().bias.clone(),
                output: OutputConfig::RELU_POOL2,
            },
        ])?;
        let (w, b) = net.fc_weights();
        Ok(DeployedCnn {
            stages,
            fc_w: w.to_vec(),
            fc_b: b.to_vec(),
            classes: net.classes(),
        })
    }

    /// Stored conv parameters the TFE's weight memory holds.
    #[must_use]
    pub fn stored_conv_params(&self) -> u64 {
        self.stages.stored_params()
    }

    /// Runs one `[1, 1, 16, 16]` image through the datapath and returns
    /// the predicted class plus the datapath counters.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn predict(&self, image: &Tensor4<f32>) -> Result<(usize, NetworkOutput), SimError> {
        let quantized = image.map(Fx16::from_f32);
        let out = self.stages.run(&quantized, ReuseConfig::FULL)?;
        let flat: Vec<f32> = out
            .activations
            .as_slice()
            .iter()
            .map(|v| v.to_f32())
            .collect();
        let mut best = 0;
        let mut best_score = f32::NEG_INFINITY;
        for c in 0..self.classes {
            let mut acc = self.fc_b[c];
            for (i, &v) in flat.iter().enumerate() {
                acc += self.fc_w[c * flat.len() + i] * v;
            }
            if acc > best_score {
                best_score = acc;
                best = c;
            }
        }
        Ok((best, out))
    }
}

/// Accuracy of a deployed network on a dataset, in percent.
///
/// # Errors
///
/// Propagates simulation errors from any sample.
pub fn deployed_accuracy(
    deployed: &DeployedCnn,
    dataset: &crate::dataset::SyntheticDataset,
) -> Result<f64, SimError> {
    let mut correct = 0usize;
    for i in 0..dataset.len() {
        let (pred, _) = deployed.predict(dataset.image(i))?;
        if pred == dataset.label(i) {
            correct += 1;
        }
    }
    Ok(100.0 * correct as f64 / dataset.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDataset;
    use crate::train::{train_and_evaluate_with_model, TrainConfig};
    use tfe_transfer::TransferScheme;

    #[test]
    fn deployed_tied_model_preserves_training_accuracy() {
        // Train a compressed (SCNN-tied) model in f32, deploy it on the
        // Q8.8 TFE datapath, and require the quantized accuracy to stay
        // within a few points of the f32 accuracy.
        let (train, test) = SyntheticDataset::pair(160, 64, 43 << 16);
        let cfg = TrainConfig {
            epochs: 10,
            learning_rate: 0.05,
            seed: 7,
        };
        let (outcome, model) =
            train_and_evaluate_with_model(Some(TransferScheme::Scnn), &train, &test, &cfg);
        let deployed = DeployedCnn::from_trained(&model).unwrap();
        // The deployed weight memory is genuinely compressed.
        assert_eq!(deployed.stored_conv_params(), outcome.conv_params as u64);
        let quantized_acc = deployed_accuracy(&deployed, &test).unwrap();
        assert!(
            (quantized_acc - outcome.test_accuracy_pct).abs() <= 8.0,
            "f32 {} vs deployed {}",
            outcome.test_accuracy_pct,
            quantized_acc
        );
        // And well above the 10-class chance floor.
        assert!(quantized_acc > 40.0, "deployed accuracy {quantized_acc}");
    }

    #[test]
    fn deployed_predictions_mostly_agree_with_f32() {
        let (train, test) = SyntheticDataset::pair(120, 48, 47 << 16);
        let cfg = TrainConfig {
            epochs: 8,
            learning_rate: 0.05,
            seed: 11,
        };
        let (_, model) =
            train_and_evaluate_with_model(Some(TransferScheme::DCNN4), &train, &test, &cfg);
        let deployed = DeployedCnn::from_trained(&model).unwrap();
        let mut agree = 0usize;
        for i in 0..test.len() {
            let f32_pred = model.predict(test.image(i));
            let (tfe_pred, _) = deployed.predict(test.image(i)).unwrap();
            if f32_pred == tfe_pred {
                agree += 1;
            }
        }
        let frac = agree as f64 / test.len() as f64;
        assert!(frac > 0.8, "agreement {frac}");
    }

    #[test]
    fn deployment_counts_reduced_multiplies() {
        let (train, test) = SyntheticDataset::pair(40, 8, 51 << 16);
        let cfg = TrainConfig {
            epochs: 2,
            learning_rate: 0.05,
            seed: 3,
        };
        let (_, model) =
            train_and_evaluate_with_model(Some(TransferScheme::Scnn), &train, &test, &cfg);
        let deployed = DeployedCnn::from_trained(&model).unwrap();
        let (_, out) = deployed.predict(test.image(0)).unwrap();
        assert!(
            out.counters.mac_reduction() > 2.0,
            "{}",
            out.counters.mac_reduction()
        );
    }
}
