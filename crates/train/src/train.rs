//! The SGD training loop and the Table II experiment driver.

use crate::dataset::SyntheticDataset;
use crate::layers::softmax_cross_entropy;
use crate::net::SmallCnn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tfe_transfer::TransferScheme;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 10 % by the last epoch).
    pub learning_rate: f32,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            learning_rate: 0.05,
            seed: 7,
        }
    }
}

/// Result of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOutcome {
    /// Scheme label (`"Original"`, `"DCNN4x4"`, `"SCNN"`).
    pub scheme: String,
    /// Final accuracy on the held-out test set, in percent.
    pub test_accuracy_pct: f64,
    /// Mean training loss of the final epoch.
    pub final_loss: f64,
    /// Free parameters in the convolution layers.
    pub conv_params: usize,
}

/// Trains a [`SmallCnn`] with the given conv parameterization and
/// evaluates it on the test set.
#[must_use]
pub fn train_and_evaluate(
    scheme: Option<TransferScheme>,
    train: &SyntheticDataset,
    test: &SyntheticDataset,
    cfg: &TrainConfig,
) -> TrainOutcome {
    train_and_evaluate_with_model(scheme, train, test, cfg).0
}

/// Like [`train_and_evaluate`], additionally returning the trained model
/// (for deployment onto the TFE simulator — see [`crate::deploy`]).
#[must_use]
pub fn train_and_evaluate_with_model(
    scheme: Option<TransferScheme>,
    train: &SyntheticDataset,
    test: &SyntheticDataset,
    cfg: &TrainConfig,
) -> (TrainOutcome, SmallCnn) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut init = || rng.gen_range(-1.0f32..1.0);
    let mut net = SmallCnn::new(scheme, &mut init);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut shuffle_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5a5a);
    let mut final_loss = 0.0f64;
    for epoch in 0..cfg.epochs {
        // Fisher-Yates shuffle.
        for i in (1..order.len()).rev() {
            order.swap(i, shuffle_rng.gen_range(0..=i));
        }
        let progress = epoch as f32 / cfg.epochs.max(1) as f32;
        let lr = cfg.learning_rate * (1.0 - 0.9 * progress);
        let mut loss_sum = 0.0f64;
        for &i in &order {
            let cache = net.forward(train.image(i));
            let (loss, dlogits) = softmax_cross_entropy(cache.logits(), train.label(i));
            loss_sum += f64::from(loss);
            net.backward(&cache, &dlogits, lr);
        }
        final_loss = loss_sum / train.len() as f64;
    }
    let correct = (0..test.len())
        .filter(|&i| net.predict(test.image(i)) == test.label(i))
        .count();
    let outcome = TrainOutcome {
        scheme: scheme.map_or_else(|| "Original".to_owned(), |s| s.label()),
        test_accuracy_pct: 100.0 * correct as f64 / test.len() as f64,
        final_loss,
        conv_params: net.conv_param_count(),
    };
    (outcome, net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_decreases_over_training() {
        let (train, test) = SyntheticDataset::pair(64, 32, 5 << 16);
        let quick = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let one = train_and_evaluate(None, &train, &test, &quick);
        let longer = TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        };
        let more = train_and_evaluate(None, &train, &test, &longer);
        assert!(
            more.final_loss < one.final_loss,
            "{} vs {}",
            more.final_loss,
            one.final_loss
        );
    }

    #[test]
    fn dense_model_learns_the_synthetic_task() {
        let (train, test) = SyntheticDataset::pair(200, 100, 9 << 16);
        let cfg = TrainConfig {
            epochs: 12,
            ..TrainConfig::default()
        };
        let outcome = train_and_evaluate(None, &train, &test, &cfg);
        assert!(
            outcome.test_accuracy_pct > 45.0,
            "accuracy {}",
            outcome.test_accuracy_pct
        );
    }

    #[test]
    fn tied_models_stay_close_to_dense_accuracy() {
        // The Table II claim in miniature: transferred training costs
        // little accuracy despite 2.25x / 4x fewer conv parameters.
        let (train, test) = SyntheticDataset::pair(200, 100, 11 << 16);
        let cfg = TrainConfig {
            epochs: 12,
            ..TrainConfig::default()
        };
        let dense = train_and_evaluate(None, &train, &test, &cfg);
        let dcnn = train_and_evaluate(Some(TransferScheme::DCNN4), &train, &test, &cfg);
        let scnn = train_and_evaluate(Some(TransferScheme::Scnn), &train, &test, &cfg);
        assert!(dcnn.conv_params < dense.conv_params);
        assert!(scnn.conv_params < dcnn.conv_params);
        for tied in [&dcnn, &scnn] {
            assert!(
                tied.test_accuracy_pct > dense.test_accuracy_pct - 20.0,
                "{}: {} vs dense {}",
                tied.scheme,
                tied.test_accuracy_pct,
                dense.test_accuracy_pct
            );
        }
    }
}
