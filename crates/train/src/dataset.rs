//! Synthetic image-classification dataset.
//!
//! Ten classes, each defined by a fixed procedurally generated 8×8
//! prototype pattern. A sample places its class prototype at a random
//! offset inside a 16×16 canvas and adds pixel noise — so the task
//! rewards exactly what convolution provides (translation-tolerant
//! pattern detection), and transferred filters (translated/rotated copies
//! of each other) are a natural fit, mirroring the observations DCNN and
//! SCNN are built on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tfe_tensor::tensor::Tensor4;

/// Number of classes.
pub const CLASSES: usize = 10;
/// Canvas extent (images are `SIZE × SIZE`, one channel).
pub const SIZE: usize = 16;
const PROTO: usize = 8;

/// A labelled set of synthetic images.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    images: Vec<Tensor4<f32>>,
    labels: Vec<usize>,
}

impl SyntheticDataset {
    /// Generates `samples` images with the given RNG seed. The class
    /// prototypes depend only on the seed's upper bits, so a train and a
    /// test set generated from seeds `s` and `s + 1` share prototypes via
    /// [`SyntheticDataset::pair`].
    #[must_use]
    pub fn generate(samples: usize, seed: u64) -> Self {
        let prototypes = Self::prototypes(seed & !0xffff);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::with_capacity(samples);
        let mut labels = Vec::with_capacity(samples);
        for _ in 0..samples {
            let class = rng.gen_range(0..CLASSES);
            let dy = rng.gen_range(0..=SIZE - PROTO);
            let dx = rng.gen_range(0..=SIZE - PROTO);
            let mut img = Tensor4::zeros([1, 1, SIZE, SIZE]);
            for y in 0..PROTO {
                for x in 0..PROTO {
                    let v = prototypes[class][y * PROTO + x];
                    img.set([0, 0, dy + y, dx + x], v);
                }
            }
            // Additive noise over the whole canvas.
            for y in 0..SIZE {
                for x in 0..SIZE {
                    let noisy = img.get([0, 0, y, x]) + rng.gen_range(-0.15f32..0.15);
                    img.set([0, 0, y, x], noisy);
                }
            }
            images.push(img);
            labels.push(class);
        }
        SyntheticDataset { images, labels }
    }

    /// Generates a train/test pair sharing the same class prototypes.
    #[must_use]
    pub fn pair(train_samples: usize, test_samples: usize, seed: u64) -> (Self, Self) {
        let base = seed & !0xffff;
        (
            Self::generate(train_samples, base | 1),
            Self::generate(test_samples, base | 2),
        )
    }

    fn prototypes(seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        (0..CLASSES)
            .map(|_| {
                // Sparse bar/blob patterns: a few bright strokes.
                let mut proto = vec![0.0f32; PROTO * PROTO];
                for _ in 0..3 {
                    let horizontal: bool = rng.gen();
                    let pos = rng.gen_range(0..PROTO);
                    let start = rng.gen_range(0..PROTO / 2);
                    let len = rng.gen_range(3..=PROTO - start);
                    let level = rng.gen_range(0.6..1.0);
                    for t in start..start + len {
                        let (y, x) = if horizontal { (pos, t) } else { (t, pos) };
                        proto[y * PROTO + x] = level;
                    }
                }
                proto
            })
            .collect()
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// The `i`-th image (`[1, 1, SIZE, SIZE]`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn image(&self, i: usize) -> &Tensor4<f32> {
        &self.images[i]
    }

    /// The `i`-th label.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticDataset::generate(10, 42);
        let b = SyntheticDataset::generate(10, 42);
        for i in 0..10 {
            assert_eq!(a.label(i), b.label(i));
            assert_eq!(a.image(i), b.image(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticDataset::generate(20, 1);
        let b = SyntheticDataset::generate(20, 2);
        let same = (0..20).all(|i| a.image(i) == b.image(i));
        assert!(!same);
    }

    #[test]
    fn labels_cover_classes() {
        let d = SyntheticDataset::generate(500, 7);
        let mut seen = [false; CLASSES];
        for i in 0..d.len() {
            assert!(d.label(i) < CLASSES);
            seen[d.label(i)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all classes present in 500 draws");
    }

    #[test]
    fn train_test_pair_shares_prototypes_but_not_samples() {
        let (train, test) = SyntheticDataset::pair(50, 50, 99 << 16);
        assert_eq!(train.len(), 50);
        assert_eq!(test.len(), 50);
        // Different sample streams.
        assert!(train.image(0) != test.image(0) || train.label(0) != test.label(0));
    }

    #[test]
    fn images_have_expected_shape_and_range() {
        let d = SyntheticDataset::generate(5, 3);
        for i in 0..5 {
            assert_eq!(d.image(i).dims(), [1, 1, SIZE, SIZE]);
            for &v in d.image(i).as_slice() {
                assert!((-0.5..=1.5).contains(&v), "pixel {v}");
            }
        }
    }
}
