//! Minimal CNN training substrate with transferred-filter weight tying —
//! the Table II (accuracy) experiment.
//!
//! The paper trains ImageNet networks in TensorFlow before and after
//! conversion to transferred form and shows the top-1 accuracy stays
//! within 1 %. Neither ImageNet nor a GPU training stack exists in this
//! environment, so this crate substitutes the smallest faithful
//! equivalent: a from-scratch f32 training framework (convolution,
//! pooling, ReLU, linear, softmax cross-entropy — forward *and* backward)
//! whose convolution layers can be parameterized three ways:
//!
//! * dense (the original network),
//! * DCNN-tied — the layer's free parameters are meta filters; gradients
//!   of all transferred filters accumulate into the shared meta weights,
//! * SCNN-tied — the free parameters are the two orbit bases; each
//!   orientation's gradient is rotated/flipped back onto its base.
//!
//! Training the same architecture on the synthetic dataset of
//! [`dataset`] demonstrates the paper's qualitative claim: the tied
//! (compressed) models reach accuracy within ~1 point of the dense model
//! at the paper's compression ratios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod deploy;
pub mod layers;
pub mod net;
pub mod train;

pub use dataset::SyntheticDataset;
pub use deploy::{deployed_accuracy, DeployedCnn};
pub use net::{ConvParam, SmallCnn};
pub use train::{train_and_evaluate, train_and_evaluate_with_model, TrainConfig, TrainOutcome};
