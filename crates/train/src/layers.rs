//! Forward and backward passes of the primitive layers.
//!
//! Everything operates on single-sample `[1, C, H, W]` tensors — the
//! training loop is plain SGD with batch size 1, which keeps the
//! substrate small and is entirely adequate for the synthetic task.

use tfe_tensor::shape::LayerShape;
use tfe_tensor::tensor::Tensor4;

/// Forward 2-D convolution (thin wrapper re-exported for symmetry).
///
/// # Panics
///
/// Panics if the operands disagree with `shape` (the layer constructors
/// guarantee agreement).
#[must_use]
pub fn conv_forward(
    input: &Tensor4<f32>,
    weights: &Tensor4<f32>,
    bias: &[f32],
    shape: &LayerShape,
) -> Tensor4<f32> {
    tfe_tensor::conv::conv2d_f32(input, weights, Some(bias), shape)
        .expect("layer constructors guarantee operand agreement")
}

/// Backward pass of 2-D convolution: given the upstream gradient
/// `dout = ∂L/∂output`, returns `(dinput, dweights, dbias)`.
#[must_use]
pub fn conv_backward(
    input: &Tensor4<f32>,
    weights: &Tensor4<f32>,
    dout: &Tensor4<f32>,
    shape: &LayerShape,
) -> (Tensor4<f32>, Tensor4<f32>, Vec<f32>) {
    debug_assert_eq!(shape.dilation(), 1, "training substrate is unit-dilation");
    let (k, e, f) = (shape.k(), shape.e(), shape.f());
    let (stride, pad) = (shape.stride(), shape.pad());
    let mut dinput = Tensor4::zeros(input.dims());
    let mut dweights = Tensor4::zeros(weights.dims());
    let mut dbias = vec![0.0f32; shape.m()];
    #[allow(clippy::needless_range_loop)]
    for m in 0..shape.m() {
        for oy in 0..e {
            for ox in 0..f {
                let g = dout.get([0, m, oy, ox]);
                if g == 0.0 {
                    continue;
                }
                dbias[m] += g;
                for c in 0..shape.n() {
                    for ky in 0..k {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= shape.h() as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= shape.w() as isize {
                                continue;
                            }
                            let (iy, ix) = (iy as usize, ix as usize);
                            let x = input.get([0, c, iy, ix]);
                            let w = weights.get([m, c, ky, kx]);
                            dweights.set([m, c, ky, kx], dweights.get([m, c, ky, kx]) + g * x);
                            dinput.set([0, c, iy, ix], dinput.get([0, c, iy, ix]) + g * w);
                        }
                    }
                }
            }
        }
    }
    (dinput, dweights, dbias)
}

/// ReLU forward; returns the activated tensor (the mask for the backward
/// pass is recovered from the stored output).
#[must_use]
pub fn relu_forward(input: &Tensor4<f32>) -> Tensor4<f32> {
    input.map(|v| v.max(0.0))
}

/// ReLU backward: zeroes gradients where the forward output was clipped.
#[must_use]
pub fn relu_backward(output: &Tensor4<f32>, dout: &Tensor4<f32>) -> Tensor4<f32> {
    let mut din = dout.clone();
    let out = output.as_slice();
    for (d, &o) in din.as_mut_slice().iter_mut().zip(out) {
        if o <= 0.0 {
            *d = 0.0;
        }
    }
    din
}

/// 2×2 max-pool forward; also returns the argmax index map used by the
/// backward pass.
#[must_use]
pub fn maxpool_forward(input: &Tensor4<f32>) -> (Tensor4<f32>, Vec<usize>) {
    let [n, c, h, w] = input.dims();
    let (oh, ow) = (h / 2, w / 2);
    let mut out = Tensor4::zeros([n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let mut idx = 0;
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_pos = 0;
                    for ky in 0..2 {
                        for kx in 0..2 {
                            let (y, x) = (2 * oy + ky, 2 * ox + kx);
                            let v = input.get([b, ch, y, x]);
                            if v > best {
                                best = v;
                                best_pos = y * w + x;
                            }
                        }
                    }
                    out.set([b, ch, oy, ox], best);
                    argmax[idx] = best_pos;
                    idx += 1;
                }
            }
        }
    }
    (out, argmax)
}

/// 2×2 max-pool backward: routes each gradient to its argmax position.
#[must_use]
pub fn maxpool_backward(
    input_dims: [usize; 4],
    argmax: &[usize],
    dout: &Tensor4<f32>,
) -> Tensor4<f32> {
    let [n, c, _, w] = input_dims;
    let [dn, dc, oh, ow] = dout.dims();
    debug_assert_eq!((n, c), (dn, dc));
    let mut din = Tensor4::zeros(input_dims);
    let mut idx = 0;
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let pos = argmax[idx];
                    idx += 1;
                    let (y, x) = (pos / w, pos % w);
                    din.set(
                        [b, ch, y, x],
                        din.get([b, ch, y, x]) + dout.get([b, ch, oy, ox]),
                    );
                }
            }
        }
    }
    din
}

/// Softmax + cross-entropy: returns `(loss, dlogits)` for a single sample
/// with `logits` of shape `[1, classes, 1, 1]`.
#[must_use]
pub fn softmax_cross_entropy(logits: &Tensor4<f32>, label: usize) -> (f32, Tensor4<f32>) {
    let probs = tfe_tensor::activation::softmax_channels(logits);
    let classes = logits.dims()[1];
    let p_true = probs.get([0, label, 0, 0]).max(1e-12);
    let loss = -p_true.ln();
    let mut dlogits = Tensor4::zeros(logits.dims());
    for c in 0..classes {
        let grad = probs.get([0, c, 0, 0]) - if c == label { 1.0 } else { 0.0 };
        dlogits.set([0, c, 0, 0], grad);
    }
    (loss, dlogits)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical-gradient check of the convolution backward pass.
    #[test]
    fn conv_backward_matches_numerical_gradient() {
        let shape = LayerShape::conv("g", 2, 3, 5, 5, 3, 1, 1).unwrap();
        let mut seed = 3u32;
        let mut det = move || {
            seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
            ((seed >> 16) as f32 / 65536.0) - 0.5
        };
        let input = Tensor4::from_fn([1, 2, 5, 5], |_| det());
        let mut weights = Tensor4::from_fn([3, 2, 3, 3], |_| det());
        let bias = vec![0.1, -0.2, 0.05];
        // Loss = sum of outputs (so dout = ones).
        let dout = Tensor4::filled([1, 3, 5, 5], 1.0f32);
        let (_, dw, db) = conv_backward(&input, &weights, &dout, &shape);
        let eps = 1e-3;
        // Check a few weight coordinates numerically.
        for &idx in &[[0, 0, 0, 0], [1, 1, 2, 2], [2, 0, 1, 1]] {
            let orig = weights.get(idx);
            weights.set(idx, orig + eps);
            let up: f32 = conv_forward(&input, &weights, &bias, &shape)
                .as_slice()
                .iter()
                .sum();
            weights.set(idx, orig - eps);
            let down: f32 = conv_forward(&input, &weights, &bias, &shape)
                .as_slice()
                .iter()
                .sum();
            weights.set(idx, orig);
            let numerical = (up - down) / (2.0 * eps);
            assert!(
                (numerical - dw.get(idx)).abs() < 1e-2,
                "dW{idx:?}: analytic {} vs numerical {numerical}",
                dw.get(idx)
            );
        }
        // Bias gradient with dout = ones is the output count per filter.
        for &b in &db {
            assert!((b - 25.0).abs() < 1e-3);
        }
    }

    #[test]
    fn conv_backward_dinput_matches_numerical_gradient() {
        let shape = LayerShape::conv("g", 1, 2, 4, 4, 3, 1, 1).unwrap();
        let mut input = Tensor4::from_fn([1, 1, 4, 4], |[_, _, y, x]| (y as f32 - x as f32) * 0.3);
        let weights = Tensor4::from_fn([2, 1, 3, 3], |[m, _, y, x]| {
            0.1 * (m as f32 + 1.0) * (y as f32 * 3.0 + x as f32 - 4.0)
        });
        let bias = vec![0.0; 2];
        let dout = Tensor4::filled([1, 2, 4, 4], 1.0f32);
        let (dx, _, _) = conv_backward(&input, &weights, &dout, &shape);
        let eps = 1e-3;
        for &idx in &[[0, 0, 0, 0], [0, 0, 2, 3], [0, 0, 3, 3]] {
            let orig = input.get(idx);
            input.set(idx, orig + eps);
            let up: f32 = conv_forward(&input, &weights, &bias, &shape)
                .as_slice()
                .iter()
                .sum();
            input.set(idx, orig - eps);
            let down: f32 = conv_forward(&input, &weights, &bias, &shape)
                .as_slice()
                .iter()
                .sum();
            input.set(idx, orig);
            let numerical = (up - down) / (2.0 * eps);
            assert!(
                (numerical - dx.get(idx)).abs() < 1e-2,
                "dX{idx:?}: analytic {} vs numerical {numerical}",
                dx.get(idx)
            );
        }
    }

    #[test]
    fn relu_backward_masks_clipped_positions() {
        let input = Tensor4::from_vec([1, 1, 1, 4], vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        let out = relu_forward(&input);
        let dout = Tensor4::filled([1, 1, 1, 4], 1.0f32);
        let din = relu_backward(&out, &dout);
        assert_eq!(din.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_round_trip_routes_gradient_to_argmax() {
        let input = Tensor4::from_vec([1, 1, 2, 2], vec![1.0, 5.0, 2.0, 3.0]).unwrap();
        let (out, argmax) = maxpool_forward(&input);
        assert_eq!(out.get([0, 0, 0, 0]), 5.0);
        let dout = Tensor4::filled([1, 1, 1, 1], 2.0f32);
        let din = maxpool_backward([1, 1, 2, 2], &argmax, &dout);
        assert_eq!(din.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let logits = Tensor4::from_vec([1, 3, 1, 1], vec![2.0, -1.0, 0.5]).unwrap();
        let (loss, d) = softmax_cross_entropy(&logits, 1);
        assert!(loss > 0.0);
        let sum: f32 = d.as_slice().iter().sum();
        assert!(sum.abs() < 1e-6);
        // Gradient at the true class is negative.
        assert!(d.get([0, 1, 0, 0]) < 0.0);
    }

    #[test]
    fn cross_entropy_numerical_gradient() {
        let mut logits = Tensor4::from_vec([1, 3, 1, 1], vec![0.3, -0.7, 1.1]).unwrap();
        let (_, d) = softmax_cross_entropy(&logits, 2);
        let eps = 1e-3;
        for c in 0..3 {
            let orig = logits.get([0, c, 0, 0]);
            logits.set([0, c, 0, 0], orig + eps);
            let (up, _) = softmax_cross_entropy(&logits, 2);
            logits.set([0, c, 0, 0], orig - eps);
            let (down, _) = softmax_cross_entropy(&logits, 2);
            logits.set([0, c, 0, 0], orig);
            let numerical = (up - down) / (2.0 * eps);
            assert!((numerical - d.get([0, c, 0, 0])).abs() < 1e-3);
        }
    }
}
